//! Host package for the opt-in, network-requiring harnesses: the criterion
//! benches in `benches/` and the proptest suite in `tests/`. The crate body
//! is intentionally empty — see the package README.
