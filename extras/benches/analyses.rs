//! Criterion benchmarks for the individual dataflow analyses (the paper's
//! four unidirectional passes) across the workload suite.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use lcm_core::{
    anticipability, availability, lazy_edge_plan, partial_availability, ExprUniverse,
    GlobalAnalyses, LocalPredicates,
};

fn bench_analyses(c: &mut Criterion) {
    for (name, f) in lcm_bench::workloads() {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);

        let mut group = c.benchmark_group(format!("analyses/{name}"));
        group.bench_function("local_predicates", |b| {
            b.iter(|| LocalPredicates::compute(&f, &uni))
        });
        group.bench_function("availability", |b| {
            b.iter(|| availability(&f, &uni, &local))
        });
        group.bench_function("anticipability", |b| {
            b.iter(|| anticipability(&f, &uni, &local))
        });
        group.bench_function("partial_availability", |b| {
            b.iter(|| partial_availability(&f, &uni, &local))
        });
        group.bench_function("later", |b| {
            b.iter_batched(
                || GlobalAnalyses::compute(&f, &uni, &local),
                |ga| lazy_edge_plan(&f, &uni, &local, &ga),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_analyses
}
criterion_main!(benches);
