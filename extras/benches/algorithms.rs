//! Criterion benchmarks for the end-to-end PRE algorithms (analysis +
//! placement + rewriting) on every workload.

use criterion::{criterion_group, criterion_main, Criterion};

use lcm_core::{optimize, PreAlgorithm};

fn bench_algorithms(c: &mut Criterion) {
    for (name, f) in lcm_bench::workloads() {
        let mut group = c.benchmark_group(format!("optimize/{name}"));
        for alg in PreAlgorithm::ALL {
            group.bench_function(alg.name(), |b| b.iter(|| optimize(&f, alg)));
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_algorithms
}
criterion_main!(benches);
