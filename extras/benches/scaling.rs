//! Scaling benchmark (experiment C1's wall-clock side): LCM's
//! unidirectional analysis stack vs Morel–Renvoise's bidirectional system
//! as program size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lcm_bench::{lcm_analysis_cost, mr_analysis_cost, sized_corpus};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    for size in [25usize, 50, 100, 200, 400] {
        let programs = sized_corpus(size, 3);
        let blocks: usize = programs.iter().map(|f| f.num_blocks()).sum();
        group.throughput(Throughput::Elements(blocks as u64));
        group.bench_with_input(BenchmarkId::new("lcm", size), &programs, |b, ps| {
            b.iter(|| {
                ps.iter()
                    .map(lcm_analysis_cost)
                    .fold(0u64, |acc, s| acc + s.word_ops)
            })
        });
        group.bench_with_input(BenchmarkId::new("morel_renvoise", size), &programs, |b, ps| {
            b.iter(|| {
                ps.iter()
                    .map(mr_analysis_cost)
                    .fold(0u64, |acc, s| acc + s.word_ops)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_scaling
}
criterion_main!(benches);
