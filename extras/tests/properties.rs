//! Property-based tests (proptest): the invariants hold not just on the
//! fixed corpora but across the generator's whole configuration space.

use proptest::prelude::*;

use lcm::cfggen::{arbitrary as arb_cfg, random_dag, structured, GenOptions};
use lcm::core::{metrics, optimize, passes, safety, PreAlgorithm};
use lcm::dataflow::BitSet;
use lcm::interp::{observationally_equivalent, Inputs};

fn gen_options() -> impl Strategy<Value = GenOptions> {
    (
        5usize..80,
        2usize..8,
        1usize..8,
        0.2f64..0.95,
        0.05f64..0.5,
        1usize..5,
    )
        .prop_map(|(size, num_vars, menu, menu_bias, obs_prob, max_depth)| GenOptions {
            size,
            num_vars,
            menu,
            menu_bias,
            obs_prob,
            max_depth,
        })
}

fn inputs_strategy() -> impl Strategy<Value = Inputs> {
    proptest::collection::vec(-100i64..100, 8).prop_map(|vals| {
        ["a", "b", "c", "d", "e", "f", "g", "h"]
            .iter()
            .zip(vals)
            .map(|(n, v)| (n.to_string(), v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any structured program, any options, any inputs, any algorithm:
    /// behaviour is preserved and temps are definitely assigned.
    #[test]
    fn pre_preserves_structured_programs(
        seed in any::<u64>(),
        opts in gen_options(),
        inputs in inputs_strategy(),
    ) {
        let f = structured(seed, &opts);
        for alg in PreAlgorithm::ALL {
            let o = optimize(&f, alg);
            lcm::ir::verify(&o.function).unwrap();
            safety::check_definite_assignment(&o.function, &o.transform.temp_vars()).unwrap();
            prop_assert!(observationally_equivalent(&f, &o.function, &inputs, 1_000_000));
        }
    }

    /// Busy and lazy code motion agree on evaluation counts path by path,
    /// on arbitrary DAG shapes (after LCSE canonicalisation).
    #[test]
    fn busy_equals_lazy_on_random_dags(seed in any::<u64>(), size in 3usize..20) {
        let mut f = random_dag(seed, &GenOptions::sized(size));
        passes::lcse(&mut f);
        let exprs = f.expr_universe();
        if let Some(orig) = metrics::path_eval_counts(&f, &exprs, 20_000) {
            let busy = optimize(&f, PreAlgorithm::Busy);
            let lazy = optimize(&f, PreAlgorithm::LazyEdge);
            let b = metrics::path_eval_counts(&busy.function, &exprs, 20_000).unwrap();
            let l = metrics::path_eval_counts(&lazy.function, &exprs, 20_000).unwrap();
            prop_assert_eq!(&b, &l);
            for (o, n) in orig.iter().zip(&l) {
                prop_assert!(n <= o);
            }
        }
    }

    /// The lifetime ordering LCM ≤ BCM holds for every generator setting.
    #[test]
    fn lazy_lifetimes_never_exceed_busy(seed in any::<u64>(), opts in gen_options()) {
        let f = structured(seed, &opts);
        let busy = optimize(&f, PreAlgorithm::Busy);
        let lazy = optimize(&f, PreAlgorithm::LazyEdge);
        let bp = metrics::live_points(&busy.function, &busy.transform.temp_vars());
        let lp = metrics::live_points(&lazy.function, &lazy.transform.temp_vars());
        prop_assert!(lp <= bp, "lazy {} > busy {}", lp, bp);
    }

    /// Arbitrary (possibly irreducible) CFGs never break the transforms.
    #[test]
    fn pre_survives_arbitrary_cfgs(seed in any::<u64>(), size in 2usize..25) {
        let f = arb_cfg(seed, &GenOptions::sized(size));
        for alg in PreAlgorithm::ALL {
            let o = optimize(&f, alg);
            lcm::ir::verify(&o.function).unwrap();
            safety::check_definite_assignment(&o.function, &o.transform.temp_vars()).unwrap();
            prop_assert!(observationally_equivalent(
                &f, &o.function, &Inputs::new().set("a", 1).set("b", 2), 20_000
            ));
        }
    }

    /// LCSE is semantics-preserving and idempotent for every program.
    #[test]
    fn lcse_preserves_and_converges(
        seed in any::<u64>(),
        opts in gen_options(),
        inputs in inputs_strategy(),
    ) {
        let f = structured(seed, &opts);
        let mut g = f.clone();
        passes::lcse(&mut g);
        lcm::ir::verify(&g).unwrap();
        prop_assert!(observationally_equivalent(&f, &g, &inputs, 1_000_000));
        let frozen = g.to_string();
        prop_assert_eq!(passes::lcse(&mut g), 0);
        prop_assert_eq!(g.to_string(), frozen);
    }

    /// DCE, copy propagation and CFG simplification preserve behaviour.
    #[test]
    fn cleanup_passes_preserve(
        seed in any::<u64>(),
        opts in gen_options(),
        inputs in inputs_strategy(),
    ) {
        let f = structured(seed, &opts);
        let mut g = f.clone();
        passes::copy_propagation(&mut g);
        passes::dce(&mut g);
        lcm::ir::simplify_cfg(&mut g);
        lcm::ir::verify(&g).unwrap();
        prop_assert!(observationally_equivalent(&f, &g, &inputs, 1_000_000));
    }

    /// CFG simplification is behaviour-preserving even right after edge
    /// splitting (the combination that produces the most forwarders), and
    /// idempotent.
    #[test]
    fn simplify_after_split_roundtrips(seed in any::<u64>(), size in 2usize..25) {
        let f = lcm::cfggen::arbitrary(seed, &GenOptions::sized(size));
        let mut g = f.clone();
        lcm::ir::graph::split_critical_edges(&mut g);
        lcm::ir::simplify_cfg(&mut g);
        lcm::ir::verify(&g).unwrap();
        prop_assert!(observationally_equivalent(
            &f, &g, &Inputs::new().set("a", 3).set("b", -1), 20_000
        ));
        let frozen = g.to_string();
        let again = lcm::ir::simplify_cfg(&mut g);
        prop_assert_eq!(again.merged + again.forwarded + again.removed, 0);
        prop_assert_eq!(g.to_string(), frozen);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bit-set algebra: the lattice laws the dataflow solvers rely on.
    #[test]
    fn bitset_lattice_laws(
        a in proptest::collection::vec(any::<bool>(), 150),
        b in proptest::collection::vec(any::<bool>(), 150),
        c in proptest::collection::vec(any::<bool>(), 150),
    ) {
        let mk = |v: &Vec<bool>| {
            let mut s = BitSet::new(150);
            for (i, &x) in v.iter().enumerate() {
                if x {
                    s.insert(i);
                }
            }
            s
        };
        let (sa, sb, sc) = (mk(&a), mk(&b), mk(&c));

        // Commutativity.
        let mut ab = sa.clone();
        ab.union_with(&sb);
        let mut ba = sb.clone();
        ba.union_with(&sa);
        prop_assert_eq!(&ab, &ba);

        // Associativity of intersection.
        let mut l = sa.clone();
        l.intersect_with(&sb);
        l.intersect_with(&sc);
        let mut bc = sb.clone();
        bc.intersect_with(&sc);
        let mut r = sa.clone();
        r.intersect_with(&bc);
        prop_assert_eq!(&l, &r);

        // De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b.
        let mut lhs = ab.clone();
        lhs.complement();
        let mut na = sa.clone();
        na.complement();
        let mut nb = sb.clone();
        nb.complement();
        let mut rhs = na.clone();
        rhs.intersect_with(&nb);
        prop_assert_eq!(&lhs, &rhs);

        // Difference is intersection with the complement.
        let mut d1 = sa.clone();
        d1.difference_with(&sb);
        let mut d2 = sa.clone();
        d2.intersect_with(&nb);
        prop_assert_eq!(&d1, &d2);

        // Absorption + superset coherence.
        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert!(u.is_superset(&sa) && u.is_superset(&sb));
        prop_assert_eq!(u.count() + {
            let mut i = sa.clone();
            i.intersect_with(&sb);
            i.count()
        }, sa.count() + sb.count());

        // Iteration round-trips.
        let collected: Vec<usize> = sa.iter().collect();
        prop_assert_eq!(collected.len(), sa.count());
        for bit in &collected {
            prop_assert!(sa.contains(*bit));
        }
    }

    /// The parser never panics on arbitrary input, and accepts-with-print
    /// round-trip whatever it accepts.
    #[test]
    fn parser_total_and_roundtrips(text in "[ -~\n]{0,400}") {
        if let Ok(f) = lcm::ir::parse_function(&text) {
            let printed = f.to_string();
            let again = lcm::ir::parse_function(&printed).unwrap();
            prop_assert_eq!(printed, again.to_string());
        }
    }
}
