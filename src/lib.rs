//! # lcm — Lazy Code Motion
//!
//! A from-scratch, production-quality implementation of **Lazy Code Motion**
//! (Knoop, Rüthing & Steffen, PLDI 1992): partial redundancy elimination
//! that is computationally optimal *and* places computations as late as
//! possible, minimising the live ranges of the temporaries it introduces.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ir`] — the CFG intermediate representation, textual format, graph
//!   algorithms;
//! * [`dataflow`] — the bit-vector dataflow framework;
//! * [`core`] — the LCM/BCM/Morel–Renvoise analyses and transformations;
//! * [`interp`] — a reference interpreter for validation;
//! * [`cfggen`] — seeded random program generators;
//! * [`driver`] — the parallel batch-optimization engine (`lcmopt batch`).
//!
//! # Quickstart
//!
//! ```
//! use lcm::ir::parse_function;
//! use lcm::core::{optimize, PreAlgorithm};
//!
//! // `a + b` is computed on one arm of the diamond and again at the join:
//! // partially redundant. LCM inserts on the other arm and removes the
//! // recomputation at the join.
//! let f = parse_function(
//!     "fn demo {
//!      entry:
//!        br c, left, right
//!      left:
//!        x = a + b
//!        jmp join
//!      right:
//!        jmp join
//!      join:
//!        y = a + b
//!        obs y
//!        ret
//!      }",
//! )?;
//! let optimized = optimize(&f, PreAlgorithm::LazyEdge)?.function;
//! // The join block no longer recomputes a + b.
//! let join = optimized.block_by_name("join").unwrap();
//! assert!(optimized.block(join).exprs().next().is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use lcm_cfggen as cfggen;
pub use lcm_core as core;
pub use lcm_dataflow as dataflow;
pub use lcm_driver as driver;
pub use lcm_interp as interp;
pub use lcm_ir as ir;
