//! `lcmopt` — command-line driver for the lcm optimizer.
//!
//! ```text
//! lcmopt [OPTIONS] [FILE]
//! lcmopt batch [OPTIONS] <PATH|->
//!
//! Reads a function in the textual IR format from FILE (or stdin when FILE
//! is `-` or omitted) and processes it. The `batch` subcommand instead
//! drives a whole module (many `fn`s in one file, a directory of `.lcm`
//! files, or stdin) through the checked pipeline in parallel; see
//! `lcmopt batch --help`.
//!
//! OPTIONS:
//!   -p, --passes LIST    comma-separated pass pipeline (default:
//!                        lcse,lcm-edge,copyprop,dce,simplify). Passes:
//!                        lcse, copyprop, dce, simplify, strength, and the
//!                        PRE algorithms bcm, lcm-edge, lcm-node,
//!                        alcm-node, morel-renvoise, gcse.
//!   -e, --emit KIND      output: text (default), dot, stats, none
//!       --solver S       fixpoint solver for the fused LCM pipeline:
//!                        rr (round-robin), wl (worklist), scc
//!                        (SCC-priority, default). Same fixpoints either
//!                        way; only the cost counters differ.
//!       --validate[=L]   validation tier for PRE passes: off, fast
//!                        (default; static invariant checks) or full
//!                        (adds seeded differential execution)
//!       --run KEY=VAL    interpret before and after with the given inputs
//!                        (repeatable) and print both observation traces
//!       --fuel N         interpreter fuel (default 1000000)
//!       --compare        print a comparison table over all PRE algorithms
//!                        instead of running a pipeline
//!   -h, --help           this help
//!
//! EXIT CODES:
//!   0  success
//!   1  internal error (caught panic)
//!   2  usage error or unreadable input
//!   3  parse error (diagnostic: file:line:col: message)
//!   4  input function fails structural verification
//!   5  a pass failed: invalid output IR, solver divergence, a violated
//!      paper invariant, or differing traces under --run
//! ```

use std::io::Read;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;

use lcm::core::{
    metrics, optimize, optimize_checked, optimize_speculative_checked, passes, report, EdgeWeights,
    PreAlgorithm, SpecStats, ValidationLevel, ValidationReport,
};
use lcm::dataflow::{SolveStrategy, SolverScratch};
use lcm::driver::{
    report as batch_report, BatchEngine, BatchOptions, BatchUnit, LoadError, UnitOutcome,
};
use lcm::interp::{run, Inputs};
use lcm::ir::{dot, parse_function, parse_module, simplify_cfg, verify, Function, Module};

/// Internal error (caught panic).
const EXIT_PANIC: u8 = 1;
/// Usage error or unreadable input.
const EXIT_USAGE: u8 = 2;
/// Parse error.
const EXIT_PARSE: u8 = 3;
/// Input fails structural verification.
const EXIT_VERIFY: u8 = 4;
/// A pass failed (invalid output, divergence, validation, trace mismatch).
const EXIT_PASS: u8 = 5;

struct Options {
    file: Option<String>,
    passes: Vec<String>,
    /// Whether `--passes` was given explicitly (it conflicts with
    /// `--placement`, which rewrites the default pipeline).
    passes_set: bool,
    placement: Option<PreAlgorithm>,
    emit: String,
    solver: SolveStrategy,
    validate: ValidationLevel,
    inputs: Vec<(String, i64)>,
    run: bool,
    fuel: u64,
    compare: bool,
}

/// A diagnostic plus the exit code it maps to.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn new(code: u8, message: impl Into<String>) -> Self {
        Failure {
            code,
            message: message.into(),
        }
    }
}

fn usage() -> &'static str {
    "usage: lcmopt [-p|--passes LIST] [--placement lcm|bcm|spec] \
     [-e|--emit text|dot|stats|none] \
     [--solver rr|wl|scc] [--validate[=off|fast|full]] [--run KEY=VAL]... \
     [--fuel N] [--compare] [FILE|-]\n\
     \x20      lcmopt batch [OPTIONS] <PATH|->   (see `lcmopt batch --help`)\n\
     passes: lcse, copyprop, dce, simplify, strength, bcm, lcm-edge, \
     lcm-node, alcm-node, morel-renvoise, gcse\n\
     --placement swaps the PRE step of the default pipeline (mutually \
     exclusive with --passes); `spec` is profile-guided speculative PRE \
     and reads the input's `profile` section, falling back to lcm when \
     there is none\n\
     exit codes: 0 ok, 1 internal error, 2 usage, 3 parse, 4 verify, \
     5 pass/validation failure"
}

/// `Ok(None)` means help was requested (print usage, exit 0).
fn parse_args() -> Result<Option<Options>, Failure> {
    let mut opts = Options {
        file: None,
        passes: vec![
            "lcse".into(),
            "lcm-edge".into(),
            "copyprop".into(),
            "dce".into(),
            "simplify".into(),
        ],
        passes_set: false,
        placement: None,
        emit: "text".into(),
        solver: SolveStrategy::default(),
        validate: ValidationLevel::Fast,
        inputs: Vec::new(),
        run: false,
        fuel: 1_000_000,
        compare: false,
    };
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", usage()));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "-p" | "--passes" => {
                let list = args
                    .next()
                    .ok_or_else(|| usage_err("--passes needs an argument".into()))?;
                opts.passes = list.split(',').map(|s| s.trim().to_string()).collect();
                opts.passes_set = true;
            }
            "--placement" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--placement needs lcm|bcm|spec".into()))?;
                opts.placement = Some(parse_placement(&v).map_err(usage_err)?);
            }
            "-e" | "--emit" => {
                opts.emit = args
                    .next()
                    .ok_or_else(|| usage_err("--emit needs an argument".into()))?;
                if !["text", "dot", "stats", "none"].contains(&opts.emit.as_str()) {
                    return Err(usage_err(format!("unknown emit kind `{}`", opts.emit)));
                }
            }
            "--solver" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--solver needs rr|wl|scc".into()))?;
                opts.solver = v.parse().map_err(|e: String| usage_err(e))?;
            }
            "--validate" => opts.validate = ValidationLevel::Fast,
            "--run" => {
                let kv = args
                    .next()
                    .ok_or_else(|| usage_err("--run needs KEY=VAL".into()))?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| usage_err("--run needs KEY=VAL".into()))?;
                let v: i64 = v
                    .parse()
                    .map_err(|_| usage_err(format!("bad value in `{kv}`")))?;
                opts.inputs.push((k.to_string(), v));
                opts.run = true;
            }
            "--fuel" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--fuel needs an argument".into()))?;
                opts.fuel = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad fuel `{n}`")))?;
            }
            "--compare" => opts.compare = true,
            other if other.starts_with("--validate=") => {
                let level = &other["--validate=".len()..];
                opts.validate = level.parse().map_err(usage_err)?;
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(usage_err(format!("unknown option `{other}`")));
            }
            file => {
                if opts.file.is_some() {
                    return Err(usage_err("more than one input file".into()));
                }
                opts.file = Some(file.to_string());
            }
        }
    }
    Ok(Some(opts))
}

/// Maps a `--placement` argument to the PRE algorithm it selects.
fn parse_placement(v: &str) -> Result<PreAlgorithm, String> {
    match v {
        "lcm" => Ok(PreAlgorithm::LazyEdge),
        "bcm" => Ok(PreAlgorithm::Busy),
        "spec" => Ok(PreAlgorithm::Speculative),
        other => Err(format!(
            "unknown placement `{other}` (want lcm, bcm or spec)"
        )),
    }
}

/// Options for `lcmopt batch`.
struct BatchCli {
    path: String,
    jobs: usize,
    placement: PreAlgorithm,
    solver: SolveStrategy,
    cache: bool,
    cache_capacity: usize,
    emit: String,
    validate: ValidationLevel,
}

fn batch_usage() -> &'static str {
    "usage: lcmopt batch [-j|--jobs N] [--placement lcm|bcm|spec] \
     [--solver rr|wl|scc] [--cache on|off] \
     [--cache-cap N] [-e|--emit text|dot|stats|json|none] \
     [--validate[=off|fast|full]] <PATH|->\n\
     PATH is a module file (many `fn`s), a directory of .lcm files, or `-` \
     for a module on stdin.\n\
     --placement spec uses each function's `profile` section for \
     profile-guided speculative PRE; functions without one fall back to \
     lcm.\n\
     --jobs 0 (the default) uses all available cores. Output on stdout is \
     byte-identical for every --jobs value; timing goes to stderr.\n\
     exit codes: 0 ok, 1 internal error, 2 usage, 3 parse, 5 any unit failed"
}

/// `Ok(None)` means help was requested (print batch usage, exit 0).
fn parse_batch_args(mut args: impl Iterator<Item = String>) -> Result<Option<BatchCli>, Failure> {
    let mut path: Option<String> = None;
    let mut opts = BatchCli {
        path: String::new(),
        jobs: 0,
        placement: PreAlgorithm::LazyEdge,
        solver: SolveStrategy::default(),
        cache: true,
        cache_capacity: 4096,
        emit: "text".into(),
        validate: ValidationLevel::Fast,
    };
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", batch_usage()));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "-j" | "--jobs" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--jobs needs an argument".into()))?;
                opts.jobs = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad job count `{n}`")))?;
            }
            "--placement" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--placement needs lcm|bcm|spec".into()))?;
                opts.placement = parse_placement(&v).map_err(usage_err)?;
            }
            "--solver" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--solver needs rr|wl|scc".into()))?;
                opts.solver = v.parse().map_err(|e: String| usage_err(e))?;
            }
            "--cache" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--cache needs on|off".into()))?;
                opts.cache = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(usage_err(format!("bad cache mode `{other}`"))),
                };
            }
            "--cache-cap" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--cache-cap needs an argument".into()))?;
                opts.cache_capacity = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad cache capacity `{n}`")))?;
            }
            "-e" | "--emit" => {
                opts.emit = args
                    .next()
                    .ok_or_else(|| usage_err("--emit needs an argument".into()))?;
                if !["text", "dot", "stats", "json", "none"].contains(&opts.emit.as_str()) {
                    return Err(usage_err(format!("unknown emit kind `{}`", opts.emit)));
                }
            }
            "--validate" => opts.validate = ValidationLevel::Fast,
            other if other.starts_with("--validate=") => {
                let level = &other["--validate=".len()..];
                opts.validate = level.parse().map_err(usage_err)?;
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(usage_err(format!("unknown option `{other}`")));
            }
            p => {
                if path.is_some() {
                    return Err(usage_err("more than one input path".into()));
                }
                path = Some(p.to_string());
            }
        }
    }
    opts.path = path.ok_or_else(|| usage_err("batch needs an input PATH".into()))?;
    Ok(Some(opts))
}

fn load_batch_units(path: &str) -> Result<Vec<BatchUnit>, Failure> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| Failure::new(EXIT_USAGE, format!("reading stdin: {e}")))?;
        let module = parse_module(&text).map_err(|e| {
            Failure::new(
                EXIT_PARSE,
                format!("<stdin>:{}:{}: {}", e.line, e.col, e.message),
            )
        })?;
        return Ok(module
            .iter()
            .map(|f| BatchUnit {
                file: None,
                profile: module.profile(&f.name).cloned(),
                function: f.clone(),
            })
            .collect());
    }
    lcm::driver::load_units(Path::new(path)).map_err(|e| match &e {
        LoadError::Parse { path, error } => Failure::new(
            EXIT_PARSE,
            format!("{path}:{}:{}: {}", error.line, error.col, error.message),
        ),
        _ => Failure::new(EXIT_USAGE, e.to_string()),
    })
}

fn run_batch(cli: BatchCli) -> Result<(), Failure> {
    let units = load_batch_units(&cli.path)?;
    let n = units.len();
    let start = std::time::Instant::now();
    let mut engine = BatchEngine::new(BatchOptions {
        jobs: cli.jobs,
        placement: cli.placement,
        validate: cli.validate,
        seed: VALIDATION_SEED,
        use_cache: cli.cache,
        cache_capacity: cli.cache_capacity,
        strategy: cli.solver,
    });
    let result = engine.run(units);
    // Wall-clock is the one nondeterministic quantity — it goes to stderr
    // so stdout stays byte-identical across --jobs values.
    eprintln!(
        "lcmopt: batch: {} functions, {} computed, {} cache hits, {:.3?}",
        n,
        result.totals.computed,
        result.totals.cache.hits,
        start.elapsed()
    );
    match cli.emit.as_str() {
        "text" => print!("{}", batch_report::render_text(&result)),
        "stats" => print!("{}", batch_report::render_stats(&result)),
        "json" => print!("{}", batch_report::render_json(&result)),
        "dot" => {
            // One digraph per successful unit. Names can repeat across a
            // directory batch; suffix repeats so every graph renders.
            let mut m = Module::default();
            for (i, unit) in result.units.iter().enumerate() {
                if let UnitOutcome::Ok(s) = &unit.outcome {
                    let mut f = parse_function(&s.output).expect("driver output round-trips");
                    if m.get(&f.name).is_some() {
                        f.name = format!("{}__{i}", f.name);
                    }
                    m.push(f).expect("suffixed name is unique");
                }
            }
            print!("{}", dot::render_module(&m));
        }
        "none" => {}
        _ => unreachable!("emit kind validated"),
    }
    if result.totals.failed > 0 {
        return Err(Failure::new(
            EXIT_PASS,
            format!("{} of {n} functions failed", result.totals.failed),
        ));
    }
    Ok(())
}

fn read_input(file: &Option<String>) -> Result<String, Failure> {
    match file.as_deref() {
        None | Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| Failure::new(EXIT_USAGE, format!("reading stdin: {e}")))?;
            Ok(text)
        }
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| Failure::new(EXIT_USAGE, format!("reading {path}: {e}"))),
    }
}

/// The name shown in diagnostics for the input stream.
fn input_name(file: &Option<String>) -> &str {
    match file.as_deref() {
        None | Some("-") => "<stdin>",
        Some(path) => path,
    }
}

fn algorithm_by_name(name: &str) -> Option<PreAlgorithm> {
    PreAlgorithm::ALL.into_iter().find(|a| a.name() == name)
}

/// Seed for the full tier's differential input sampling: fixed, so runs
/// are reproducible; validation failures therefore always replay.
const VALIDATION_SEED: u64 = 0x1c3a_57ed;

fn run_pipeline(
    f: &Function,
    pass_names: &[String],
    level: ValidationLevel,
) -> Result<(Function, Vec<(String, ValidationReport)>), Failure> {
    let mut g = f.clone();
    let mut reports = Vec::new();
    for name in pass_names {
        match name.as_str() {
            "lcse" => {
                passes::lcse(&mut g);
            }
            "copyprop" => {
                passes::copy_propagation(&mut g);
            }
            "dce" => {
                passes::dce(&mut g);
            }
            "simplify" => {
                simplify_cfg(&mut g);
            }
            "strength" => {
                g = lcm::core::strength::strength_reduce(&g).function;
            }
            other => match algorithm_by_name(other) {
                Some(alg) => match optimize_checked(&g, alg, level, VALIDATION_SEED) {
                    Ok((opt, rep)) => {
                        reports.push((name.clone(), rep));
                        g = opt.function;
                    }
                    Err(e) => {
                        return Err(Failure::new(
                            EXIT_PASS,
                            format!("pass `{name}` failed: {e}"),
                        ));
                    }
                },
                None => {
                    return Err(Failure::new(
                        EXIT_USAGE,
                        format!("unknown pass `{other}`\n{}", usage()),
                    ));
                }
            },
        }
        verify(&g).map_err(|e| {
            Failure::new(EXIT_PASS, format!("pass `{name}` produced invalid IR: {e}"))
        })?;
    }
    Ok((g, reports))
}

/// The default pass pipeline with the PRE step swapped for `alg`.
fn placement_passes(alg: PreAlgorithm) -> Vec<String> {
    vec![
        "lcse".into(),
        alg.name().into(),
        "copyprop".into(),
        "dce".into(),
        "simplify".into(),
    ]
}

/// The speculative pipeline: LCSE → checked profile-guided PRE → the same
/// cleanup passes as the default pipeline.
fn run_speculative_pipeline(
    f: &Function,
    w: &EdgeWeights,
    level: ValidationLevel,
) -> Result<(Function, ValidationReport, SpecStats), Failure> {
    let mut g = f.clone();
    passes::lcse(&mut g);
    let (opt, rep) = optimize_speculative_checked(&g, w, level, VALIDATION_SEED)
        .map_err(|e| Failure::new(EXIT_PASS, format!("pass `spec` failed: {e}")))?;
    let stats = opt.spec.unwrap_or_default();
    let mut g = opt.function;
    passes::copy_propagation(&mut g);
    passes::dce(&mut g);
    simplify_cfg(&mut g);
    verify(&g)
        .map_err(|e| Failure::new(EXIT_PASS, format!("pass `spec` produced invalid IR: {e}")))?;
    Ok((g, rep, stats))
}

fn compare(f: &Function) -> Result<(), Failure> {
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>12} {:>8}",
        "algorithm", "inserts", "deletes", "temps", "live points", "instrs"
    );
    for alg in PreAlgorithm::ALL {
        let o = optimize(f, alg)
            .map_err(|e| Failure::new(EXIT_PASS, format!("{} failed: {e}", alg.name())))?;
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>12} {:>8}",
            alg.name(),
            o.transform.stats.insertions,
            o.transform.stats.deletions,
            o.transform.stats.temps,
            metrics::live_points(&o.function, &o.transform.temp_vars()),
            o.function.num_instrs(),
        );
    }
    Ok(())
}

/// Marker appended to a printed trace when the run exhausted its fuel.
fn completion_marker(completed: bool) -> &'static str {
    if completed {
        ""
    } else {
        " [incomplete: fuel exhausted]"
    }
}

fn real_main() -> Result<(), Failure> {
    if std::env::args().nth(1).as_deref() == Some("batch") {
        return match parse_batch_args(std::env::args().skip(2))? {
            Some(cli) => run_batch(cli),
            None => {
                println!("{}", batch_usage());
                Ok(())
            }
        };
    }
    let opts = match parse_args()? {
        Some(o) => o,
        None => {
            println!("{}", usage());
            return Ok(());
        }
    };
    if opts.placement.is_some() && opts.passes_set {
        return Err(Failure::new(
            EXIT_USAGE,
            format!(
                "--placement and --passes are mutually exclusive\n{}",
                usage()
            ),
        ));
    }
    let text = read_input(&opts.file)?;
    // Parsed as a (single-function) module so a `profile` section is
    // picked up; parse-time profile validation (structure and flow
    // conservation) reports through the same spanned diagnostic.
    let module = parse_module(&text).map_err(|e| {
        Failure::new(
            EXIT_PARSE,
            format!(
                "{}:{}:{}: {}",
                input_name(&opts.file),
                e.line,
                e.col,
                e.message
            ),
        )
    })?;
    let functions: Vec<&Function> = module.iter().collect();
    let f = match functions.as_slice() {
        [f] => (*f).clone(),
        many => {
            return Err(Failure::new(
                EXIT_USAGE,
                format!(
                    "input has {} functions; use `lcmopt batch` for modules",
                    many.len()
                ),
            ));
        }
    };
    verify(&f).map_err(|e| Failure::new(EXIT_VERIFY, format!("input is not well-formed: {e}")))?;

    if opts.compare {
        return compare(&f);
    }

    let mut spec_stats: Option<SpecStats> = None;
    let mut profile_note: Option<String> = None;
    let (g, reports) = match opts.placement {
        None => run_pipeline(&f, &opts.passes, opts.validate)?,
        Some(PreAlgorithm::Speculative) => {
            match module
                .profile(&f.name)
                .and_then(|p| EdgeWeights::from_profile(&f, p).ok())
            {
                Some(w) => {
                    profile_note = Some(format!(
                        "profile: {} weighted edges, entry count {}",
                        w.edges.len(),
                        w.entry
                    ));
                    let (g, rep, stats) = run_speculative_pipeline(&f, &w, opts.validate)?;
                    spec_stats = Some(stats);
                    (g, vec![("spec".to_string(), rep)])
                }
                None => {
                    profile_note =
                        Some("profile: none — speculative placement fell back to lcm".to_string());
                    run_pipeline(&f, &placement_passes(PreAlgorithm::LazyEdge), opts.validate)?
                }
            }
        }
        Some(alg) => run_pipeline(&f, &placement_passes(alg), opts.validate)?,
    };

    match opts.emit.as_str() {
        "text" => println!("{g}"),
        "dot" => print!("{}", dot::render(&g, |_| None)),
        "stats" => {
            println!("blocks: {} -> {}", f.num_blocks(), g.num_blocks());
            println!("instructions: {} -> {}", f.num_instrs(), g.num_instrs());
            println!(
                "candidate evaluation sites: {} -> {}",
                f.expr_occurrences().count(),
                g.expr_occurrences().count()
            );
            // Solver cost of the fused LCM pipeline on the original input,
            // under the requested solver strategy (fresh scratch, so the
            // numbers are reproducible run to run).
            let p = lcm::core::lcm_with(&f, opts.solver, &mut SolverScratch::new())
                .map_err(|e| Failure::new(EXIT_PASS, format!("stats analysis failed: {e}")))?;
            println!();
            print!("{}", report::stats_table(&p.stats));
            for (pass, rep) in &reports {
                println!();
                println!("validation of pass `{pass}`:");
                print!("{}", report::validation_table(rep));
            }
            if let Some(note) = &profile_note {
                println!();
                println!("{note}");
            }
            if let Some(s) = &spec_stats {
                println!(
                    "speculative: {} candidates, {} speculated, weighted cost {} -> {}",
                    s.candidates, s.speculated, s.lcm_weighted_cost, s.spec_weighted_cost
                );
            }
            if opts.placement.is_some() {
                // Interpreter-measured evaluation counts over the
                // validator's input distribution, so `--placement spec`
                // and `--placement lcm` runs are directly comparable.
                let mut state = VALIDATION_SEED;
                let (mut before, mut after) = (0u64, 0u64);
                for _ in 0..4 {
                    let inputs = lcm::core::validate::sample_inputs(&f, &mut state);
                    before += run(&f, &inputs, opts.fuel).total_evals();
                    after += run(&g, &inputs, opts.fuel).total_evals();
                }
                println!("dynamic evaluations (4 seeded inputs): {before} -> {after}");
            }
        }
        "none" => {}
        _ => unreachable!("emit kind validated"),
    }

    if opts.run {
        let inputs: Inputs = opts.inputs.into_iter().collect();
        let before = run(&f, &inputs, opts.fuel);
        let after = run(&g, &inputs, opts.fuel);
        println!(
            "trace before: {:?}{}",
            before.trace,
            completion_marker(before.completed())
        );
        println!(
            "trace after:  {:?}{}",
            after.trace,
            completion_marker(after.completed())
        );
        println!(
            "evaluations:  {} -> {}",
            before.total_evals(),
            after.total_evals()
        );
        if before.trace != after.trace {
            return Err(Failure::new(EXIT_PASS, "BUG: traces differ!"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // Malformed input must never escape as a panic: route any internal
    // panic through a diagnostic and a distinct exit code instead of an
    // abort with a backtrace.
    panic::set_hook(Box::new(|info| {
        eprintln!("lcmopt: internal error: {info}");
    }));
    match panic::catch_unwind(AssertUnwindSafe(real_main)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(failure)) => {
            eprintln!("lcmopt: {}", failure.message);
            ExitCode::from(failure.code)
        }
        Err(_) => ExitCode::from(EXIT_PANIC),
    }
}
