//! `lcmopt` — command-line driver for the lcm optimizer.
//!
//! ```text
//! lcmopt [OPTIONS] [FILE]
//! lcmopt batch [OPTIONS] <PATH|->
//! lcmopt lift [OPTIONS] <FILE|->
//! lcmopt serve [OPTIONS]
//! lcmopt request [OPTIONS] <PATH|->
//! lcmopt watch [OPTIONS] <FILE>
//!
//! Reads a function in the textual IR format from FILE (or stdin when FILE
//! is `-` or omitted) and processes it. The `batch` subcommand instead
//! drives a whole module (many `fn`s in one file, a directory of `.lcm`
//! files, or stdin) through the checked pipeline in parallel; see
//! `lcmopt batch --help`. The `lift` subcommand translates a flat
//! three-address listing (`goto INDEX` control) into module IR via a
//! leader scan; its output pipes into any other front, e.g.
//! `lcmopt lift prog.l3a | lcmopt batch -`. The `serve` subcommand runs
//! the long-lived optimization daemon (warm solver arenas, durable plan
//! cache, admission control); `request` is its client. See
//! `lcmopt serve --help` and `lcmopt request --help`. The `watch`
//! subcommand re-optimizes a module file whenever it changes on disk,
//! delta-solving each edit against the previous revision's retained
//! fixpoints; see `lcmopt watch --help`.
//!
//! OPTIONS:
//!   -p, --passes LIST    comma-separated pass pipeline (default:
//!                        lcse,lcm-edge,copyprop,dce,simplify). Passes:
//!                        lcse, copyprop, dce, simplify, strength, and the
//!                        PRE algorithms bcm, lcm-edge, lcm-node,
//!                        alcm-node, morel-renvoise, gcse.
//!   -e, --emit KIND      output: text (default), dot, stats, none
//!       --solver S       fixpoint solver for the fused LCM pipeline:
//!                        rr (round-robin), wl (worklist), scc
//!                        (SCC-priority, default). Same fixpoints either
//!                        way; only the cost counters differ.
//!       --validate[=L]   validation tier for PRE passes: off, fast
//!                        (default; static invariant checks) or full
//!                        (adds seeded differential execution)
//!       --run KEY=VAL    interpret before and after with the given inputs
//!                        (repeatable) and print both observation traces
//!       --fuel N         interpreter fuel (default 1000000)
//!       --compare        print a comparison table over all PRE algorithms
//!                        instead of running a pipeline
//!   -h, --help           this help
//!
//! EXIT CODES:
//!   0  success
//!   1  internal error (caught panic)
//!   2  usage error or unreadable input
//!   3  parse error (diagnostic: file:line:col: message)
//!   4  input function fails structural verification
//!   5  a pass failed: invalid output IR, solver divergence, a violated
//!      paper invariant, or differing traces under --run
//!   6  the daemon shed the request (overloaded; retry after the hint)
//! ```

use std::io::Read;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lcm::core::{
    metrics, optimize, optimize_checked, optimize_speculative_checked, passes, report, EdgeWeights,
    PreAlgorithm, SpecStats, ValidationLevel, ValidationReport,
};
use lcm::dataflow::{SolveStrategy, SolverScratch};
use lcm::driver::protocol::{
    failure_code_name, read_response, write_request, Request, Response, ERR_PARSE,
};
use lcm::driver::serve::{Daemon, ServeOptions};
use lcm::driver::{
    report as batch_report, text_from_bytes, BatchEngine, BatchOptions, BatchUnit, IncrementalMode,
    LoadError, LoadStatus, UnitOutcome,
};
use lcm::interp::{run, Inputs};
use lcm::ir::{
    dot, lift_module, parse_function, parse_module, simplify_cfg, verify, Function, Module,
};

/// Internal error (caught panic).
const EXIT_PANIC: u8 = 1;
/// Usage error or unreadable input.
const EXIT_USAGE: u8 = 2;
/// Parse error.
const EXIT_PARSE: u8 = 3;
/// Input fails structural verification.
const EXIT_VERIFY: u8 = 4;
/// A pass failed (invalid output, divergence, validation, trace mismatch).
const EXIT_PASS: u8 = 5;
/// The daemon shed the request under load (retry after the hint).
const EXIT_OVERLOADED: u8 = 6;

struct Options {
    file: Option<String>,
    passes: Vec<String>,
    /// Whether `--passes` was given explicitly (it conflicts with
    /// `--placement`, which rewrites the default pipeline).
    passes_set: bool,
    placement: Option<PreAlgorithm>,
    emit: String,
    solver: SolveStrategy,
    validate: ValidationLevel,
    inputs: Vec<(String, i64)>,
    run: bool,
    fuel: u64,
    compare: bool,
}

/// A diagnostic plus the exit code it maps to.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn new(code: u8, message: impl Into<String>) -> Self {
        Failure {
            code,
            message: message.into(),
        }
    }
}

fn usage() -> &'static str {
    "usage: lcmopt [-p|--passes LIST] [--placement lcm|bcm|spec] \
     [-e|--emit text|dot|stats|none] \
     [--solver rr|wl|scc] [--validate[=off|fast|full]] [--run KEY=VAL]... \
     [--fuel N] [--compare] [FILE|-]\n\
     \x20      lcmopt batch [OPTIONS] <PATH|->   (see `lcmopt batch --help`)\n\
     \x20      lcmopt lift [OPTIONS] <FILE|->    (see `lcmopt lift --help`)\n\
     \x20      lcmopt watch [OPTIONS] <FILE>     (see `lcmopt watch --help`)\n\
     passes: lcse, copyprop, dce, simplify, strength, bcm, lcm-edge, \
     lcm-node, alcm-node, morel-renvoise, gcse\n\
     --placement swaps the PRE step of the default pipeline (mutually \
     exclusive with --passes); `spec` is profile-guided speculative PRE \
     and reads the input's `profile` section, falling back to lcm when \
     there is none\n\
     exit codes: 0 ok, 1 internal error, 2 usage, 3 parse, 4 verify, \
     5 pass/validation failure"
}

/// `Ok(None)` means help was requested (print usage, exit 0).
fn parse_args() -> Result<Option<Options>, Failure> {
    let mut opts = Options {
        file: None,
        passes: vec![
            "lcse".into(),
            "lcm-edge".into(),
            "copyprop".into(),
            "dce".into(),
            "simplify".into(),
        ],
        passes_set: false,
        placement: None,
        emit: "text".into(),
        solver: SolveStrategy::default(),
        validate: ValidationLevel::Fast,
        inputs: Vec::new(),
        run: false,
        fuel: 1_000_000,
        compare: false,
    };
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", usage()));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "-p" | "--passes" => {
                let list = args
                    .next()
                    .ok_or_else(|| usage_err("--passes needs an argument".into()))?;
                opts.passes = list.split(',').map(|s| s.trim().to_string()).collect();
                opts.passes_set = true;
            }
            "--placement" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--placement needs lcm|bcm|spec".into()))?;
                opts.placement = Some(parse_placement(&v).map_err(usage_err)?);
            }
            "-e" | "--emit" => {
                opts.emit = args
                    .next()
                    .ok_or_else(|| usage_err("--emit needs an argument".into()))?;
                if !["text", "dot", "stats", "none"].contains(&opts.emit.as_str()) {
                    return Err(usage_err(format!("unknown emit kind `{}`", opts.emit)));
                }
            }
            "--solver" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--solver needs rr|wl|scc".into()))?;
                opts.solver = v.parse().map_err(|e: String| usage_err(e))?;
            }
            "--validate" => opts.validate = ValidationLevel::Fast,
            "--run" => {
                let kv = args
                    .next()
                    .ok_or_else(|| usage_err("--run needs KEY=VAL".into()))?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| usage_err("--run needs KEY=VAL".into()))?;
                let v: i64 = v
                    .parse()
                    .map_err(|_| usage_err(format!("bad value in `{kv}`")))?;
                opts.inputs.push((k.to_string(), v));
                opts.run = true;
            }
            "--fuel" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--fuel needs an argument".into()))?;
                opts.fuel = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad fuel `{n}`")))?;
            }
            "--compare" => opts.compare = true,
            other if other.starts_with("--validate=") => {
                let level = &other["--validate=".len()..];
                opts.validate = level.parse().map_err(usage_err)?;
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(usage_err(format!("unknown option `{other}`")));
            }
            file => {
                if opts.file.is_some() {
                    return Err(usage_err("more than one input file".into()));
                }
                opts.file = Some(file.to_string());
            }
        }
    }
    Ok(Some(opts))
}

/// Maps a `--placement` argument to the PRE algorithm it selects.
fn parse_placement(v: &str) -> Result<PreAlgorithm, String> {
    match v {
        "lcm" => Ok(PreAlgorithm::LazyEdge),
        "bcm" => Ok(PreAlgorithm::Busy),
        "spec" => Ok(PreAlgorithm::Speculative),
        other => Err(format!(
            "unknown placement `{other}` (want lcm, bcm or spec)"
        )),
    }
}

/// Options for `lcmopt batch`.
struct BatchCli {
    path: String,
    jobs: usize,
    placement: PreAlgorithm,
    solver: SolveStrategy,
    cache: bool,
    cache_capacity: usize,
    cache_file: Option<String>,
    emit: String,
    validate: ValidationLevel,
}

fn batch_usage() -> &'static str {
    "usage: lcmopt batch [-j|--jobs N] [--placement lcm|bcm|spec] \
     [--solver rr|wl|scc] [--cache on|off] \
     [--cache-cap N] [--cache-file PATH] \
     [-e|--emit text|dot|stats|json|none] \
     [--validate[=off|fast|full]] <PATH|->\n\
     PATH is a module file (many `fn`s), a directory of .lcm files, or `-` \
     for a module on stdin.\n\
     --placement spec uses each function's `profile` section for \
     profile-guided speculative PRE; functions without one fall back to \
     lcm.\n\
     --jobs 0 (the default) uses all available cores. Output on stdout is \
     byte-identical for every --jobs value; timing goes to stderr.\n\
     --cache-file persists the plan cache across runs in the lcm-cache-v1 \
     format (corrupt files are quarantined to a .corrupt sidecar and the \
     run proceeds cold).\n\
     exit codes: 0 ok, 1 internal error, 2 usage, 3 parse, 5 any unit failed"
}

/// `Ok(None)` means help was requested (print batch usage, exit 0).
fn parse_batch_args(mut args: impl Iterator<Item = String>) -> Result<Option<BatchCli>, Failure> {
    let mut path: Option<String> = None;
    let mut opts = BatchCli {
        path: String::new(),
        jobs: 0,
        placement: PreAlgorithm::LazyEdge,
        solver: SolveStrategy::default(),
        cache: true,
        cache_capacity: 4096,
        cache_file: None,
        emit: "text".into(),
        validate: ValidationLevel::Fast,
    };
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", batch_usage()));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "-j" | "--jobs" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--jobs needs an argument".into()))?;
                opts.jobs = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad job count `{n}`")))?;
            }
            "--placement" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--placement needs lcm|bcm|spec".into()))?;
                opts.placement = parse_placement(&v).map_err(usage_err)?;
            }
            "--solver" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--solver needs rr|wl|scc".into()))?;
                opts.solver = v.parse().map_err(|e: String| usage_err(e))?;
            }
            "--cache" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--cache needs on|off".into()))?;
                opts.cache = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(usage_err(format!("bad cache mode `{other}`"))),
                };
            }
            "--cache-cap" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--cache-cap needs an argument".into()))?;
                opts.cache_capacity = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad cache capacity `{n}`")))?;
            }
            "--cache-file" => {
                let p = args
                    .next()
                    .ok_or_else(|| usage_err("--cache-file needs a path".into()))?;
                opts.cache_file = Some(p);
            }
            "-e" | "--emit" => {
                opts.emit = args
                    .next()
                    .ok_or_else(|| usage_err("--emit needs an argument".into()))?;
                if !["text", "dot", "stats", "json", "none"].contains(&opts.emit.as_str()) {
                    return Err(usage_err(format!("unknown emit kind `{}`", opts.emit)));
                }
            }
            "--validate" => opts.validate = ValidationLevel::Fast,
            other if other.starts_with("--validate=") => {
                let level = &other["--validate=".len()..];
                opts.validate = level.parse().map_err(usage_err)?;
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(usage_err(format!("unknown option `{other}`")));
            }
            p => {
                if path.is_some() {
                    return Err(usage_err("more than one input path".into()));
                }
                path = Some(p.to_string());
            }
        }
    }
    opts.path = path.ok_or_else(|| usage_err("batch needs an input PATH".into()))?;
    Ok(Some(opts))
}

fn load_batch_units(path: &str) -> Result<Vec<BatchUnit>, Failure> {
    if path == "-" {
        // Read raw bytes so an invalid UTF-8 stream gets the same spanned
        // `<stdin>:line:col` diagnostic (and exit code) as a parse error —
        // not an unlabeled usage error.
        let mut bytes = Vec::new();
        std::io::stdin()
            .read_to_end(&mut bytes)
            .map_err(|e| Failure::new(EXIT_USAGE, format!("reading stdin: {e}")))?;
        let text = text_from_bytes(bytes).map_err(|e| {
            Failure::new(
                EXIT_PARSE,
                format!("<stdin>:{}:{}: {}", e.line, e.col, e.message),
            )
        })?;
        let module = parse_module(&text).map_err(|e| {
            Failure::new(
                EXIT_PARSE,
                format!("<stdin>:{}:{}: {}", e.line, e.col, e.message),
            )
        })?;
        return Ok(module
            .iter()
            .map(|f| BatchUnit {
                file: None,
                profile: module.profile(&f.name).cloned(),
                function: f.clone(),
            })
            .collect());
    }
    lcm::driver::load_units(Path::new(path)).map_err(|e| match &e {
        LoadError::Parse { path, error } => Failure::new(
            EXIT_PARSE,
            format!("{path}:{}:{}: {}", error.line, error.col, error.message),
        ),
        _ => Failure::new(EXIT_USAGE, e.to_string()),
    })
}

fn run_batch(cli: BatchCli) -> Result<(), Failure> {
    let units = load_batch_units(&cli.path)?;
    let n = units.len();
    let start = std::time::Instant::now();
    let opts = BatchOptions {
        jobs: cli.jobs,
        placement: cli.placement,
        validate: cli.validate,
        seed: VALIDATION_SEED,
        use_cache: cli.cache,
        cache_capacity: cli.cache_capacity,
        strategy: cli.solver,
    };
    let mut engine = match &cli.cache_file {
        Some(path) => {
            let engine = BatchEngine::with_cache_file(opts, Path::new(path));
            note_load_status("batch", engine.load_status());
            engine
        }
        None => BatchEngine::new(opts),
    };
    let result = engine.run(units);
    if cli.cache_file.is_some() {
        engine
            .flush_cache_file()
            .map_err(|e| Failure::new(EXIT_USAGE, format!("writing cache file: {e}")))?;
    }
    // Wall-clock is the one nondeterministic quantity — it goes to stderr
    // so stdout stays byte-identical across --jobs values.
    eprintln!(
        "lcmopt: batch: {} functions, {} computed, {} cache hits, {:.3?}",
        n,
        result.totals.computed,
        result.totals.cache.hits,
        start.elapsed()
    );
    match cli.emit.as_str() {
        "text" => print!("{}", batch_report::render_text(&result)),
        "stats" => print!("{}", batch_report::render_stats(&result)),
        "json" => print!("{}", batch_report::render_json(&result)),
        "dot" => {
            // One digraph per successful unit. Names can repeat across a
            // directory batch; suffix repeats so every graph renders.
            let mut m = Module::default();
            for (i, unit) in result.units.iter().enumerate() {
                if let UnitOutcome::Ok(s) = &unit.outcome {
                    let mut f = parse_function(&s.output).expect("driver output round-trips");
                    if m.get(&f.name).is_some() {
                        f.name = format!("{}__{i}", f.name);
                    }
                    m.push(f).expect("suffixed name is unique");
                }
            }
            print!("{}", dot::render_module(&m));
        }
        "none" => {}
        _ => unreachable!("emit kind validated"),
    }
    if result.totals.failed > 0 {
        return Err(Failure::new(
            EXIT_PASS,
            format!("{} of {n} functions failed", result.totals.failed),
        ));
    }
    Ok(())
}

/// Options for `lcmopt lift`.
struct LiftCli {
    path: String,
    emit: String,
    stats: bool,
}

fn lift_usage() -> &'static str {
    "usage: lcmopt lift [-e|--emit text|dot] [--stats] <FILE|->\n\
     Lifts a flat three-address listing — one instruction per line, \
     control via `goto INDEX` / `if VAR goto INDEX` / `ret`, optional \
     `fn NAME` section headers — into block-structured module IR by a \
     leader scan, and prints the module on stdout.\n\
     The output composes with every other front: \
     `lcmopt lift prog.l3a | lcmopt batch -` lifts then optimizes.\n\
     --stats adds one summary line per function on stderr (instruction, \
     block and dropped-unreachable-block counts).\n\
     exit codes: 0 ok, 2 usage, 3 lift error (FILE:LINE: message, with \
     LINE relative to the input file)"
}

/// `Ok(None)` means help was requested (print lift usage, exit 0).
fn parse_lift_args(mut args: impl Iterator<Item = String>) -> Result<Option<LiftCli>, Failure> {
    let mut path: Option<String> = None;
    let mut opts = LiftCli {
        path: String::new(),
        emit: "text".into(),
        stats: false,
    };
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", lift_usage()));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "-e" | "--emit" => {
                opts.emit = args
                    .next()
                    .ok_or_else(|| usage_err("--emit needs an argument".into()))?;
                if !["text", "dot"].contains(&opts.emit.as_str()) {
                    return Err(usage_err(format!("unknown emit kind `{}`", opts.emit)));
                }
            }
            "--stats" => opts.stats = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(usage_err(format!("unknown lift argument `{other}`")));
            }
            p => {
                if path.is_some() {
                    return Err(usage_err("more than one input file".into()));
                }
                path = Some(p.to_string());
            }
        }
    }
    opts.path = path.ok_or_else(|| usage_err("lift needs an input FILE".into()))?;
    Ok(Some(opts))
}

fn run_lift(cli: LiftCli) -> Result<(), Failure> {
    let file = Some(cli.path.clone());
    let text = read_input(&file)?;
    let lifted = lift_module(&text).map_err(|e| {
        Failure::new(
            EXIT_PARSE,
            format!("{}:{}: {}", input_name(&file), e.line, e.message),
        )
    })?;
    if cli.stats {
        for s in &lifted.functions {
            eprintln!(
                "lcmopt lift: fn {}: {} instrs -> {} blocks ({} unreachable dropped)",
                s.name, s.instrs, s.leaders, s.dropped
            );
        }
    }
    match cli.emit.as_str() {
        "text" => println!("{}", lifted.module),
        "dot" => print!("{}", dot::render_module(&lifted.module)),
        _ => unreachable!("emit kind validated"),
    }
    Ok(())
}

/// Options for `lcmopt serve`.
struct ServeCli {
    socket: Option<String>,
    cache_file: Option<String>,
    workers: usize,
    queue_cap: usize,
    retry_after_ms: u32,
    placement: PreAlgorithm,
    solver: SolveStrategy,
    cache: bool,
    cache_capacity: usize,
    validate: ValidationLevel,
}

fn serve_usage() -> &'static str {
    "usage: lcmopt serve [--socket PATH] [--cache-file PATH] [--workers N] \
     [--queue-cap N] [--retry-after-ms N] [--placement lcm|bcm|spec] \
     [--solver rr|wl|scc] [--cache on|off] [--cache-cap N] \
     [--validate[=off|fast|full]]\n\
     Runs the optimization daemon: worker threads keep warm solver arenas \
     across requests and share one plan cache.\n\
     With --socket the daemon serves the framed protocol on a Unix socket \
     until a client sends SHUTDOWN; without it, one connection on \
     stdin/stdout until EOF. Either way it drains in-flight units, flushes \
     the cache durably, and exits 0.\n\
     --cache-file persists the plan cache (lcm-cache-v1; corrupt files are \
     quarantined to a .corrupt sidecar and the daemon starts cold). The \
     file is rewritten atomically after every request.\n\
     --workers 0 (the default) uses all available cores. --queue-cap \
     bounds admitted-but-unfinished units (0 = unbounded); requests beyond \
     it are shed with OVERLOADED and the --retry-after-ms hint."
}

/// `Ok(None)` means help was requested (print serve usage, exit 0).
fn parse_serve_args(mut args: impl Iterator<Item = String>) -> Result<Option<ServeCli>, Failure> {
    let mut opts = ServeCli {
        socket: None,
        cache_file: None,
        workers: 0,
        queue_cap: 1024,
        retry_after_ms: 50,
        placement: PreAlgorithm::LazyEdge,
        solver: SolveStrategy::default(),
        cache: true,
        cache_capacity: 4096,
        validate: ValidationLevel::Fast,
    };
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", serve_usage()));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--socket" => {
                let p = args
                    .next()
                    .ok_or_else(|| usage_err("--socket needs a path".into()))?;
                opts.socket = Some(p);
            }
            "--cache-file" => {
                let p = args
                    .next()
                    .ok_or_else(|| usage_err("--cache-file needs a path".into()))?;
                opts.cache_file = Some(p);
            }
            "--workers" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--workers needs an argument".into()))?;
                opts.workers = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad worker count `{n}`")))?;
            }
            "--queue-cap" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--queue-cap needs an argument".into()))?;
                opts.queue_cap = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad queue capacity `{n}`")))?;
            }
            "--retry-after-ms" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--retry-after-ms needs an argument".into()))?;
                opts.retry_after_ms = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad retry hint `{n}`")))?;
            }
            "--placement" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--placement needs lcm|bcm|spec".into()))?;
                opts.placement = parse_placement(&v).map_err(usage_err)?;
            }
            "--solver" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--solver needs rr|wl|scc".into()))?;
                opts.solver = v.parse().map_err(|e: String| usage_err(e))?;
            }
            "--cache" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--cache needs on|off".into()))?;
                opts.cache = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(usage_err(format!("bad cache mode `{other}`"))),
                };
            }
            "--cache-cap" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--cache-cap needs an argument".into()))?;
                opts.cache_capacity = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad cache capacity `{n}`")))?;
            }
            "--validate" => opts.validate = ValidationLevel::Fast,
            other if other.starts_with("--validate=") => {
                let level = &other["--validate=".len()..];
                opts.validate = level.parse().map_err(usage_err)?;
            }
            other => return Err(usage_err(format!("unknown serve argument `{other}`"))),
        }
    }
    Ok(Some(opts))
}

fn run_serve(cli: ServeCli) -> Result<(), Failure> {
    let opts = ServeOptions {
        batch: BatchOptions {
            jobs: 0,
            placement: cli.placement,
            validate: cli.validate,
            seed: VALIDATION_SEED,
            use_cache: cli.cache,
            cache_capacity: cli.cache_capacity,
            strategy: cli.solver,
        },
        workers: cli.workers,
        queue_capacity: cli.queue_cap,
        retry_after_ms: cli.retry_after_ms,
        cache_file: cli.cache_file.as_deref().map(PathBuf::from),
    };
    let daemon = Daemon::start(opts);
    note_load_status("serve", daemon.load_status().as_ref());
    let result = match &cli.socket {
        #[cfg(unix)]
        Some(path) => {
            eprintln!("lcmopt serve: listening on {path}");
            daemon.serve_unix(Path::new(path))
        }
        #[cfg(not(unix))]
        Some(_) => {
            drop(daemon);
            return Err(Failure::new(
                EXIT_USAGE,
                "--socket requires a Unix platform; use stdio mode",
            ));
        }
        None => daemon.serve_stdio(),
    };
    result.map_err(|e| Failure::new(EXIT_USAGE, format!("serve: {e}")))
}

/// Options for `lcmopt request`.
struct RequestCli {
    socket: String,
    path: Option<String>,
    deadline_ms: u32,
    fuel: u64,
    stats: bool,
    shutdown: bool,
}

fn request_usage() -> &'static str {
    "usage: lcmopt request --socket PATH [--deadline-ms N] [--fuel N] \
     <PATH|->\n\
     \x20      lcmopt request --socket PATH --stats|--shutdown\n\
     Sends one module (a file, or `-` for stdin) to a running \
     `lcmopt serve --socket` daemon and prints the optimized module — \
     byte-identical to `lcmopt batch` output for the same input and \
     configuration.\n\
     --deadline-ms / --fuel bound each unit's work (0 = unlimited); a unit \
     over budget is reported as a `cancelled` failure.\n\
     --stats prints the daemon's counters; --shutdown asks it to drain, \
     flush its cache, and exit.\n\
     exit codes: 0 ok, 2 usage/transport, 3 the module failed to parse, \
     5 any unit failed, 6 the daemon shed the request (overloaded)"
}

/// `Ok(None)` means help was requested (print request usage, exit 0).
fn parse_request_args(
    mut args: impl Iterator<Item = String>,
) -> Result<Option<RequestCli>, Failure> {
    let mut path: Option<String> = None;
    let mut opts = RequestCli {
        socket: String::new(),
        path: None,
        deadline_ms: 0,
        fuel: 0,
        stats: false,
        shutdown: false,
    };
    let mut socket: Option<String> = None;
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", request_usage()));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--socket" => {
                let p = args
                    .next()
                    .ok_or_else(|| usage_err("--socket needs a path".into()))?;
                socket = Some(p);
            }
            "--deadline-ms" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--deadline-ms needs an argument".into()))?;
                opts.deadline_ms = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad deadline `{n}`")))?;
            }
            "--fuel" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--fuel needs an argument".into()))?;
                opts.fuel = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad fuel `{n}`")))?;
            }
            "--stats" => opts.stats = true,
            "--shutdown" => opts.shutdown = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(usage_err(format!("unknown request argument `{other}`")));
            }
            p => {
                if path.is_some() {
                    return Err(usage_err("more than one input path".into()));
                }
                path = Some(p.to_string());
            }
        }
    }
    opts.socket = socket.ok_or_else(|| usage_err("request needs --socket PATH".into()))?;
    opts.path = path;
    match (&opts.path, opts.stats, opts.shutdown) {
        (Some(_), false, false) | (None, true, false) | (None, false, true) => Ok(Some(opts)),
        _ => Err(usage_err(
            "request needs exactly one of: an input PATH, --stats, --shutdown".into(),
        )),
    }
}

#[cfg(unix)]
fn run_request(cli: RequestCli) -> Result<(), Failure> {
    use std::os::unix::net::UnixStream;

    let transport_err =
        |what: &str| Failure::new(EXIT_USAGE, format!("request: connection {what}"));
    let mut stream = UnixStream::connect(&cli.socket)
        .map_err(|e| Failure::new(EXIT_USAGE, format!("connecting {}: {e}", cli.socket)))?;

    if cli.stats || cli.shutdown {
        let req = if cli.stats {
            Request::Stats
        } else {
            Request::Shutdown
        };
        write_request(&mut stream, &req).map_err(|e| transport_err(&format!("failed: {e}")))?;
        return match read_response(&mut stream) {
            Ok(Some(Response::Stats { text })) => {
                print!("{text}");
                Ok(())
            }
            Ok(Some(Response::Bye)) => Ok(()),
            Ok(Some(Response::Error { message, .. })) => {
                Err(Failure::new(EXIT_USAGE, format!("request: {message}")))
            }
            Ok(Some(_)) => Err(transport_err("answered with an unexpected frame")),
            Ok(None) => Err(transport_err("closed before answering")),
            Err(e) => Err(transport_err(&format!("failed: {e}"))),
        };
    }

    // Module mode: load (with the same spanned UTF-8 diagnostics as every
    // other front), send, and stream unit results back.
    let path = cli.path.as_deref().expect("validated by the parser");
    let module = read_input(&Some(path.to_string()))?;
    write_request(
        &mut stream,
        &Request::Optimize {
            deadline_ms: cli.deadline_ms,
            fuel: cli.fuel,
            module,
        },
    )
    .map_err(|e| transport_err(&format!("failed: {e}")))?;

    // Units stream back in completion order, tagged with their input
    // index; reassemble in input order so the printed module is
    // byte-identical to `lcmopt batch` output.
    enum Unit {
        Ok(String),
        Failed {
            code: u8,
            name: String,
            message: String,
        },
    }
    let mut units: Vec<(u32, Unit)> = Vec::new();
    let (ok, failed) = loop {
        match read_response(&mut stream) {
            Ok(Some(Response::UnitOk { index, output })) => units.push((index, Unit::Ok(output))),
            Ok(Some(Response::UnitErr {
                index,
                code,
                name,
                message,
            })) => units.push((
                index,
                Unit::Failed {
                    code,
                    name,
                    message,
                },
            )),
            Ok(Some(Response::Done { ok, failed })) => break (ok, failed),
            Ok(Some(Response::Error { code, message })) => {
                let exit = if code == ERR_PARSE {
                    EXIT_PARSE
                } else {
                    EXIT_USAGE
                };
                return Err(Failure::new(exit, format!("request: {message}")));
            }
            Ok(Some(Response::Overloaded { retry_after_ms })) => {
                return Err(Failure::new(
                    EXIT_OVERLOADED,
                    format!("request: daemon overloaded; retry after {retry_after_ms} ms"),
                ));
            }
            Ok(Some(_)) => return Err(transport_err("answered with an unexpected frame")),
            Ok(None) => return Err(transport_err("closed mid-request")),
            Err(e) => return Err(transport_err(&format!("failed: {e}"))),
        }
    };
    units.sort_by_key(|(index, _)| *index);
    let mut out = String::new();
    for (i, (_, unit)) in units.iter().enumerate() {
        if i > 0 {
            out.push_str("\n\n");
        }
        match unit {
            Unit::Ok(text) => out.push_str(text),
            Unit::Failed {
                code,
                name,
                message,
            } => {
                let one_line: String = message
                    .chars()
                    .map(|c| if c.is_control() { ' ' } else { c })
                    .collect();
                out.push_str(&format!(
                    "# fn {name}: FAILED ({}): {one_line}",
                    failure_code_name(*code)
                ));
            }
        }
    }
    out.push('\n');
    print!("{out}");
    if failed > 0 {
        let n = ok + failed;
        return Err(Failure::new(
            EXIT_PASS,
            format!("{failed} of {n} functions failed"),
        ));
    }
    Ok(())
}

#[cfg(not(unix))]
fn run_request(_cli: RequestCli) -> Result<(), Failure> {
    Err(Failure::new(
        EXIT_USAGE,
        "lcmopt request needs Unix sockets; unavailable on this platform",
    ))
}

/// Options for `lcmopt watch`.
struct WatchCli {
    file: String,
    interval_ms: u64,
    iterations: u64,
    output: Option<String>,
    placement: PreAlgorithm,
    solver: SolveStrategy,
    validate: ValidationLevel,
}

fn watch_usage() -> &'static str {
    "usage: lcmopt watch [--interval-ms N] [--iterations N] [-o|--output \
     PATH] [--placement lcm|bcm|spec] [--solver rr|wl|scc] \
     [--validate[=off|fast|full]] <FILE>\n\
     Optimizes the module in FILE, then polls it and re-optimizes on every \
     change. Each function's AVAIL/ANTIC/LATER fixpoints are retained \
     between revisions, so an edit is answered by an SCC-scoped delta \
     solve that charges only for the blocks it can reach (a CFG-shape or \
     universe change falls back to a full solve). Output is byte-identical \
     to `lcmopt batch` on the same revision.\n\
     The optimized module goes to stdout after every run, or to PATH with \
     --output (rewritten in place). Per-iteration stats — fresh/delta/\
     fallback per function, dirty blocks, block rows re-solved — go to \
     stderr.\n\
     --iterations N exits after N re-optimizations beyond the initial one \
     (0, the default, watches until interrupted); a transiently unreadable \
     or unparseable save is reported and skipped, not fatal.\n\
     exit codes: 0 ok, 1 internal error, 2 usage, 3 the initial module \
     failed to parse, 5 any unit of the last completed run failed"
}

/// `Ok(None)` means help was requested (print watch usage, exit 0).
fn parse_watch_args(mut args: impl Iterator<Item = String>) -> Result<Option<WatchCli>, Failure> {
    let mut file: Option<String> = None;
    let mut opts = WatchCli {
        file: String::new(),
        interval_ms: 50,
        iterations: 0,
        output: None,
        placement: PreAlgorithm::LazyEdge,
        solver: SolveStrategy::default(),
        validate: ValidationLevel::Fast,
    };
    let usage_err = |msg: String| Failure::new(EXIT_USAGE, format!("{msg}\n{}", watch_usage()));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--interval-ms" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--interval-ms needs an argument".into()))?;
                opts.interval_ms = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad interval `{n}`")))?;
            }
            "--iterations" => {
                let n = args
                    .next()
                    .ok_or_else(|| usage_err("--iterations needs an argument".into()))?;
                opts.iterations = n
                    .parse()
                    .map_err(|_| usage_err(format!("bad iteration count `{n}`")))?;
            }
            "-o" | "--output" => {
                let p = args
                    .next()
                    .ok_or_else(|| usage_err("--output needs a path".into()))?;
                opts.output = Some(p);
            }
            "--placement" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--placement needs lcm|bcm|spec".into()))?;
                opts.placement = parse_placement(&v).map_err(usage_err)?;
            }
            "--solver" => {
                let v = args
                    .next()
                    .ok_or_else(|| usage_err("--solver needs rr|wl|scc".into()))?;
                opts.solver = v.parse().map_err(|e: String| usage_err(e))?;
            }
            "--validate" => opts.validate = ValidationLevel::Fast,
            other if other.starts_with("--validate=") => {
                let level = &other["--validate=".len()..];
                opts.validate = level.parse().map_err(usage_err)?;
            }
            other if other.starts_with('-') => {
                return Err(usage_err(format!("unknown watch argument `{other}`")));
            }
            p => {
                if file.is_some() {
                    return Err(usage_err("more than one input file".into()));
                }
                file = Some(p.to_string());
            }
        }
    }
    opts.file = file.ok_or_else(|| usage_err("watch needs an input FILE".into()))?;
    Ok(Some(opts))
}

/// One watched re-optimization: runs the module through the engine's
/// incremental path, emits per-function stats on stderr and the optimized
/// module on stdout (or into `--output`). Returns how many units failed.
fn watch_once(
    engine: &mut BatchEngine,
    module: &Module,
    iteration: u64,
    output: &Option<String>,
) -> Result<usize, Failure> {
    let start = std::time::Instant::now();
    let units = engine.run_module_incremental(module);
    let mut failed = 0usize;
    for u in &units {
        match u.mode {
            IncrementalMode::Delta | IncrementalMode::Fallback => eprintln!(
                "lcmopt watch[{iteration}]: fn {}: {}, {} dirty, {} of {} block rows re-solved",
                u.name,
                u.mode.name(),
                u.stats.dirty_blocks,
                u.stats.delta_blocks_resolved,
                3 * u.blocks,
            ),
            IncrementalMode::ZeroDirty => eprintln!(
                "lcmopt watch[{iteration}]: fn {}: zero-dirty, 0 dirty, output memo replayed",
                u.name,
            ),
            IncrementalMode::Fresh | IncrementalMode::OneShot => {
                eprintln!(
                    "lcmopt watch[{iteration}]: fn {}: {}",
                    u.name,
                    u.mode.name()
                );
            }
        }
        if let Err(e) = &u.outcome {
            failed += 1;
            eprintln!(
                "lcmopt watch[{iteration}]: fn {}: FAILED ({}): {}",
                u.name,
                e.kind.name(),
                e.message
            );
        }
    }
    let (hits, delta_blocks) = engine.incremental_session();
    let phases = engine.incremental_phases();
    eprintln!(
        "lcmopt watch[{iteration}]: {} ok, {failed} failed; session: {hits} incremental hits, \
         {delta_blocks} delta block rows; edits: {}; solve {:.3?} / tail {:.3?}; {:.3?}",
        units.len() - failed,
        engine.edit_classes(),
        std::time::Duration::from_nanos(phases.solve_ns),
        std::time::Duration::from_nanos(phases.tail_ns),
        start.elapsed()
    );
    let text = batch_report::render_incremental_text(&units);
    match output {
        Some(path) => std::fs::write(path, &text)
            .map_err(|e| Failure::new(EXIT_USAGE, format!("writing {path}: {e}")))?,
        None => print!("{text}"),
    }
    Ok(failed)
}

fn run_watch(cli: WatchCli) -> Result<(), Failure> {
    let opts = BatchOptions {
        jobs: 1,
        placement: cli.placement,
        validate: cli.validate,
        seed: VALIDATION_SEED,
        use_cache: true,
        cache_capacity: 4096,
        strategy: cli.solver,
    };
    let mut engine = BatchEngine::new(opts);
    // The initial revision must load: a watch on a missing or broken file
    // is a usage/parse error, not an empty vigil.
    let mut last = std::fs::read(&cli.file)
        .map_err(|e| Failure::new(EXIT_USAGE, format!("reading {}: {e}", cli.file)))?;
    let parse = |bytes: Vec<u8>, file: &str| -> Result<Module, Failure> {
        let text = text_from_bytes(bytes).map_err(|e| {
            Failure::new(
                EXIT_PARSE,
                format!("{file}:{}:{}: {}", e.line, e.col, e.message),
            )
        })?;
        parse_module(&text).map_err(|e| {
            Failure::new(
                EXIT_PARSE,
                format!("{file}:{}:{}: {}", e.line, e.col, e.message),
            )
        })
    };
    let module = parse(last.clone(), &cli.file)?;
    let mut failed = watch_once(&mut engine, &module, 0, &cli.output)?;
    let mut done = 0u64;
    while cli.iterations == 0 || done < cli.iterations {
        std::thread::sleep(std::time::Duration::from_millis(cli.interval_ms));
        // Content comparison, not just mtime: editors and scripted smoke
        // tests can rewrite within the filesystem's mtime granularity.
        let bytes = match std::fs::read(&cli.file) {
            Ok(b) => b,
            Err(e) => {
                // A vanished file is usually an editor's save-by-rename
                // mid-flight; report and keep polling.
                eprintln!("lcmopt watch: reading {}: {e}", cli.file);
                continue;
            }
        };
        if bytes == last {
            continue;
        }
        last = bytes.clone();
        let module = match parse(bytes, &cli.file) {
            Ok(m) => m,
            Err(e) => {
                // Half-saved revisions happen; they cost a diagnostic, not
                // the watch.
                eprintln!("lcmopt watch: {}", e.message);
                continue;
            }
        };
        done += 1;
        failed = watch_once(&mut engine, &module, done, &cli.output)?;
    }
    if failed > 0 {
        return Err(Failure::new(
            EXIT_PASS,
            format!("{failed} functions failed in the last run"),
        ));
    }
    Ok(())
}

fn read_input(file: &Option<String>) -> Result<String, Failure> {
    let bytes = match file.as_deref() {
        None | Some("-") => {
            let mut buf = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buf)
                .map_err(|e| Failure::new(EXIT_USAGE, format!("reading stdin: {e}")))?;
            buf
        }
        Some(path) => std::fs::read(path)
            .map_err(|e| Failure::new(EXIT_USAGE, format!("reading {path}: {e}")))?,
    };
    // Invalid UTF-8 is a malformed input, not an I/O accident: report it
    // with the same spanned diagnostic shape as a parse error.
    text_from_bytes(bytes).map_err(|e| {
        Failure::new(
            EXIT_PARSE,
            format!("{}:{}:{}: {}", input_name(file), e.line, e.col, e.message),
        )
    })
}

/// One stderr line describing how a `--cache-file` loaded (nothing for a
/// cold start).
fn note_load_status(who: &str, status: Option<&LoadStatus>) {
    match status {
        Some(LoadStatus::Loaded { entries }) => {
            eprintln!("lcmopt {who}: cache file loaded, {entries} entries");
        }
        Some(LoadStatus::Quarantined { error, sidecar }) => {
            eprintln!(
                "lcmopt {who}: cache file refused ({error}); quarantined to {}",
                sidecar.display()
            );
        }
        Some(LoadStatus::Fresh) | None => {}
    }
}

/// The name shown in diagnostics for the input stream.
fn input_name(file: &Option<String>) -> &str {
    match file.as_deref() {
        None | Some("-") => "<stdin>",
        Some(path) => path,
    }
}

fn algorithm_by_name(name: &str) -> Option<PreAlgorithm> {
    PreAlgorithm::ALL.into_iter().find(|a| a.name() == name)
}

/// Seed for the full tier's differential input sampling: fixed, so runs
/// are reproducible; validation failures therefore always replay.
const VALIDATION_SEED: u64 = 0x1c3a_57ed;

fn run_pipeline(
    f: &Function,
    pass_names: &[String],
    level: ValidationLevel,
) -> Result<(Function, Vec<(String, ValidationReport)>), Failure> {
    let mut g = f.clone();
    let mut reports = Vec::new();
    for name in pass_names {
        match name.as_str() {
            "lcse" => {
                passes::lcse(&mut g);
            }
            "copyprop" => {
                passes::copy_propagation(&mut g);
            }
            "dce" => {
                passes::dce(&mut g);
            }
            "simplify" => {
                simplify_cfg(&mut g);
            }
            "strength" => {
                g = lcm::core::strength::strength_reduce(&g).function;
            }
            other => match algorithm_by_name(other) {
                Some(alg) => match optimize_checked(&g, alg, level, VALIDATION_SEED) {
                    Ok((opt, rep)) => {
                        reports.push((name.clone(), rep));
                        g = opt.function;
                    }
                    Err(e) => {
                        return Err(Failure::new(
                            EXIT_PASS,
                            format!("pass `{name}` failed: {e}"),
                        ));
                    }
                },
                None => {
                    return Err(Failure::new(
                        EXIT_USAGE,
                        format!("unknown pass `{other}`\n{}", usage()),
                    ));
                }
            },
        }
        verify(&g).map_err(|e| {
            Failure::new(EXIT_PASS, format!("pass `{name}` produced invalid IR: {e}"))
        })?;
    }
    Ok((g, reports))
}

/// The default pass pipeline with the PRE step swapped for `alg`.
fn placement_passes(alg: PreAlgorithm) -> Vec<String> {
    vec![
        "lcse".into(),
        alg.name().into(),
        "copyprop".into(),
        "dce".into(),
        "simplify".into(),
    ]
}

/// The speculative pipeline: LCSE → checked profile-guided PRE → the same
/// cleanup passes as the default pipeline.
fn run_speculative_pipeline(
    f: &Function,
    w: &EdgeWeights,
    level: ValidationLevel,
) -> Result<(Function, ValidationReport, SpecStats), Failure> {
    let mut g = f.clone();
    passes::lcse(&mut g);
    let (opt, rep) = optimize_speculative_checked(&g, w, level, VALIDATION_SEED)
        .map_err(|e| Failure::new(EXIT_PASS, format!("pass `spec` failed: {e}")))?;
    let stats = opt.spec.unwrap_or_default();
    let mut g = opt.function;
    passes::copy_propagation(&mut g);
    passes::dce(&mut g);
    simplify_cfg(&mut g);
    verify(&g)
        .map_err(|e| Failure::new(EXIT_PASS, format!("pass `spec` produced invalid IR: {e}")))?;
    Ok((g, rep, stats))
}

fn compare(f: &Function) -> Result<(), Failure> {
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>12} {:>8}",
        "algorithm", "inserts", "deletes", "temps", "live points", "instrs"
    );
    for alg in PreAlgorithm::ALL {
        let o = optimize(f, alg)
            .map_err(|e| Failure::new(EXIT_PASS, format!("{} failed: {e}", alg.name())))?;
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>12} {:>8}",
            alg.name(),
            o.transform.stats.insertions,
            o.transform.stats.deletions,
            o.transform.stats.temps,
            metrics::live_points(&o.function, &o.transform.temp_vars()),
            o.function.num_instrs(),
        );
    }
    Ok(())
}

/// Marker appended to a printed trace when the run exhausted its fuel.
fn completion_marker(completed: bool) -> &'static str {
    if completed {
        ""
    } else {
        " [incomplete: fuel exhausted]"
    }
}

fn real_main() -> Result<(), Failure> {
    match std::env::args().nth(1).as_deref() {
        Some("batch") => {
            return match parse_batch_args(std::env::args().skip(2))? {
                Some(cli) => run_batch(cli),
                None => {
                    println!("{}", batch_usage());
                    Ok(())
                }
            };
        }
        Some("lift") => {
            return match parse_lift_args(std::env::args().skip(2))? {
                Some(cli) => run_lift(cli),
                None => {
                    println!("{}", lift_usage());
                    Ok(())
                }
            };
        }
        Some("serve") => {
            return match parse_serve_args(std::env::args().skip(2))? {
                Some(cli) => run_serve(cli),
                None => {
                    println!("{}", serve_usage());
                    Ok(())
                }
            };
        }
        Some("request") => {
            return match parse_request_args(std::env::args().skip(2))? {
                Some(cli) => run_request(cli),
                None => {
                    println!("{}", request_usage());
                    Ok(())
                }
            };
        }
        Some("watch") => {
            return match parse_watch_args(std::env::args().skip(2))? {
                Some(cli) => run_watch(cli),
                None => {
                    println!("{}", watch_usage());
                    Ok(())
                }
            };
        }
        _ => {}
    }
    let opts = match parse_args()? {
        Some(o) => o,
        None => {
            println!("{}", usage());
            return Ok(());
        }
    };
    if opts.placement.is_some() && opts.passes_set {
        return Err(Failure::new(
            EXIT_USAGE,
            format!(
                "--placement and --passes are mutually exclusive\n{}",
                usage()
            ),
        ));
    }
    let text = read_input(&opts.file)?;
    // Parsed as a (single-function) module so a `profile` section is
    // picked up; parse-time profile validation (structure and flow
    // conservation) reports through the same spanned diagnostic.
    let module = parse_module(&text).map_err(|e| {
        Failure::new(
            EXIT_PARSE,
            format!(
                "{}:{}:{}: {}",
                input_name(&opts.file),
                e.line,
                e.col,
                e.message
            ),
        )
    })?;
    let functions: Vec<&Function> = module.iter().collect();
    let f = match functions.as_slice() {
        [f] => (*f).clone(),
        many => {
            return Err(Failure::new(
                EXIT_USAGE,
                format!(
                    "input has {} functions; use `lcmopt batch` for modules",
                    many.len()
                ),
            ));
        }
    };
    verify(&f).map_err(|e| Failure::new(EXIT_VERIFY, format!("input is not well-formed: {e}")))?;

    if opts.compare {
        return compare(&f);
    }

    let mut spec_stats: Option<SpecStats> = None;
    let mut profile_note: Option<String> = None;
    let (g, reports) = match opts.placement {
        None => run_pipeline(&f, &opts.passes, opts.validate)?,
        Some(PreAlgorithm::Speculative) => {
            match module
                .profile(&f.name)
                .and_then(|p| EdgeWeights::from_profile(&f, p).ok())
            {
                Some(w) => {
                    profile_note = Some(format!(
                        "profile: {} weighted edges, entry count {}",
                        w.edges.len(),
                        w.entry
                    ));
                    let (g, rep, stats) = run_speculative_pipeline(&f, &w, opts.validate)?;
                    spec_stats = Some(stats);
                    (g, vec![("spec".to_string(), rep)])
                }
                None => {
                    profile_note =
                        Some("profile: none — speculative placement fell back to lcm".to_string());
                    run_pipeline(&f, &placement_passes(PreAlgorithm::LazyEdge), opts.validate)?
                }
            }
        }
        Some(alg) => run_pipeline(&f, &placement_passes(alg), opts.validate)?,
    };

    match opts.emit.as_str() {
        "text" => println!("{g}"),
        "dot" => print!("{}", dot::render(&g, |_| None)),
        "stats" => {
            println!("blocks: {} -> {}", f.num_blocks(), g.num_blocks());
            println!("instructions: {} -> {}", f.num_instrs(), g.num_instrs());
            println!(
                "candidate evaluation sites: {} -> {}",
                f.expr_occurrences().count(),
                g.expr_occurrences().count()
            );
            // Solver cost of the fused LCM pipeline on the original input,
            // under the requested solver strategy (fresh scratch, so the
            // numbers are reproducible run to run).
            let p = lcm::core::lcm_with(&f, opts.solver, &mut SolverScratch::new())
                .map_err(|e| Failure::new(EXIT_PASS, format!("stats analysis failed: {e}")))?;
            println!();
            print!("{}", report::stats_table(&p.stats));
            for (pass, rep) in &reports {
                println!();
                println!("validation of pass `{pass}`:");
                print!("{}", report::validation_table(rep));
            }
            if let Some(note) = &profile_note {
                println!();
                println!("{note}");
            }
            if let Some(s) = &spec_stats {
                println!(
                    "speculative: {} candidates, {} speculated, weighted cost {} -> {}",
                    s.candidates, s.speculated, s.lcm_weighted_cost, s.spec_weighted_cost
                );
            }
            if opts.placement.is_some() {
                // Interpreter-measured evaluation counts over the
                // validator's input distribution, so `--placement spec`
                // and `--placement lcm` runs are directly comparable.
                let mut state = VALIDATION_SEED;
                let (mut before, mut after) = (0u64, 0u64);
                for _ in 0..4 {
                    let inputs = lcm::core::validate::sample_inputs(&f, &mut state);
                    before += run(&f, &inputs, opts.fuel).total_evals();
                    after += run(&g, &inputs, opts.fuel).total_evals();
                }
                println!("dynamic evaluations (4 seeded inputs): {before} -> {after}");
            }
        }
        "none" => {}
        _ => unreachable!("emit kind validated"),
    }

    if opts.run {
        let inputs: Inputs = opts.inputs.into_iter().collect();
        let before = run(&f, &inputs, opts.fuel);
        let after = run(&g, &inputs, opts.fuel);
        println!(
            "trace before: {:?}{}",
            before.trace,
            completion_marker(before.completed())
        );
        println!(
            "trace after:  {:?}{}",
            after.trace,
            completion_marker(after.completed())
        );
        println!(
            "evaluations:  {} -> {}",
            before.total_evals(),
            after.total_evals()
        );
        if before.trace != after.trace {
            return Err(Failure::new(EXIT_PASS, "BUG: traces differ!"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // Malformed input must never escape as a panic: route any internal
    // panic through a diagnostic and a distinct exit code instead of an
    // abort with a backtrace.
    panic::set_hook(Box::new(|info| {
        eprintln!("lcmopt: internal error: {info}");
    }));
    match panic::catch_unwind(AssertUnwindSafe(real_main)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(failure)) => {
            eprintln!("lcmopt: {}", failure.message);
            ExitCode::from(failure.code)
        }
        Err(_) => ExitCode::from(EXIT_PANIC),
    }
}
