//! `lcmopt` — command-line driver for the lcm optimizer.
//!
//! ```text
//! lcmopt [OPTIONS] [FILE]
//!
//! Reads a function in the textual IR format from FILE (or stdin when FILE
//! is `-` or omitted) and processes it.
//!
//! OPTIONS:
//!   -p, --passes LIST    comma-separated pass pipeline (default:
//!                        lcse,lcm-edge,copyprop,dce,simplify). Passes:
//!                        lcse, copyprop, dce, simplify, strength, and the
//!                        PRE algorithms bcm, lcm-edge, lcm-node,
//!                        alcm-node, morel-renvoise, gcse.
//!   -e, --emit KIND      output: text (default), dot, stats, none
//!       --run KEY=VAL    interpret before and after with the given inputs
//!                        (repeatable) and print both observation traces
//!       --fuel N         interpreter fuel (default 1000000)
//!       --compare        print a comparison table over all PRE algorithms
//!                        instead of running a pipeline
//!   -h, --help           this help
//! ```

use std::io::Read;
use std::process::ExitCode;

use lcm::core::{metrics, optimize, passes, report, PreAlgorithm};
use lcm::interp::{run, Inputs};
use lcm::ir::{dot, parse_function, simplify_cfg, verify, Function};

struct Options {
    file: Option<String>,
    passes: Vec<String>,
    emit: String,
    inputs: Vec<(String, i64)>,
    run: bool,
    fuel: u64,
    compare: bool,
}

fn usage() -> &'static str {
    "usage: lcmopt [-p|--passes LIST] [-e|--emit text|dot|stats|none] \
     [--run KEY=VAL]... [--fuel N] [--compare] [FILE|-]\n\
     passes: lcse, copyprop, dce, simplify, strength, bcm, lcm-edge, \
     lcm-node, alcm-node, morel-renvoise, gcse"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        file: None,
        passes: vec![
            "lcse".into(),
            "lcm-edge".into(),
            "copyprop".into(),
            "dce".into(),
            "simplify".into(),
        ],
        emit: "text".into(),
        inputs: Vec::new(),
        run: false,
        fuel: 1_000_000,
        compare: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(usage().to_string()),
            "-p" | "--passes" => {
                let list = args.next().ok_or("--passes needs an argument")?;
                opts.passes = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "-e" | "--emit" => {
                opts.emit = args.next().ok_or("--emit needs an argument")?;
                if !["text", "dot", "stats", "none"].contains(&opts.emit.as_str()) {
                    return Err(format!("unknown emit kind `{}`", opts.emit));
                }
            }
            "--run" => {
                let kv = args.next().ok_or("--run needs KEY=VAL")?;
                let (k, v) = kv.split_once('=').ok_or("--run needs KEY=VAL")?;
                let v: i64 = v.parse().map_err(|_| format!("bad value in `{kv}`"))?;
                opts.inputs.push((k.to_string(), v));
                opts.run = true;
            }
            "--fuel" => {
                let n = args.next().ok_or("--fuel needs an argument")?;
                opts.fuel = n.parse().map_err(|_| format!("bad fuel `{n}`"))?;
            }
            "--compare" => opts.compare = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option `{other}`\n{}", usage()));
            }
            file => {
                if opts.file.is_some() {
                    return Err("more than one input file".to_string());
                }
                opts.file = Some(file.to_string());
            }
        }
    }
    Ok(opts)
}

fn read_input(file: &Option<String>) -> Result<String, String> {
    match file.as_deref() {
        None | Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(text)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}

fn algorithm_by_name(name: &str) -> Option<PreAlgorithm> {
    PreAlgorithm::ALL.into_iter().find(|a| a.name() == name)
}

fn run_pipeline(f: &Function, pass_names: &[String]) -> Result<Function, String> {
    let mut g = f.clone();
    for name in pass_names {
        match name.as_str() {
            "lcse" => {
                passes::lcse(&mut g);
            }
            "copyprop" => {
                passes::copy_propagation(&mut g);
            }
            "dce" => {
                passes::dce(&mut g);
            }
            "simplify" => {
                simplify_cfg(&mut g);
            }
            "strength" => {
                g = lcm::core::strength::strength_reduce(&g).function;
            }
            other => match algorithm_by_name(other) {
                Some(alg) => g = optimize(&g, alg).function,
                None => return Err(format!("unknown pass `{other}`\n{}", usage())),
            },
        }
        verify(&g).map_err(|e| format!("pass `{name}` produced invalid IR: {e}"))?;
    }
    Ok(g)
}

fn compare(f: &Function) {
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>12} {:>8}",
        "algorithm", "inserts", "deletes", "temps", "live points", "instrs"
    );
    for alg in PreAlgorithm::ALL {
        let o = optimize(f, alg);
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>12} {:>8}",
            alg.name(),
            o.transform.stats.insertions,
            o.transform.stats.deletions,
            o.transform.stats.temps,
            metrics::live_points(&o.function, &o.transform.temp_vars()),
            o.function.num_instrs(),
        );
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match read_input(&opts.file) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("lcmopt: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let f = match parse_function(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lcmopt: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = verify(&f) {
        eprintln!("lcmopt: input is not well-formed: {e}");
        return ExitCode::FAILURE;
    }

    if opts.compare {
        compare(&f);
        return ExitCode::SUCCESS;
    }

    let g = match run_pipeline(&f, &opts.passes) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("lcmopt: {msg}");
            return ExitCode::FAILURE;
        }
    };

    match opts.emit.as_str() {
        "text" => println!("{g}"),
        "dot" => print!("{}", dot::render(&g, |_| None)),
        "stats" => {
            println!("blocks: {} -> {}", f.num_blocks(), g.num_blocks());
            println!("instructions: {} -> {}", f.num_instrs(), g.num_instrs());
            println!(
                "candidate evaluation sites: {} -> {}",
                f.expr_occurrences().count(),
                g.expr_occurrences().count()
            );
            // Solver cost of the fused LCM pipeline on the original input.
            let p = lcm::core::lcm(&f);
            println!();
            print!("{}", report::stats_table(&p.stats));
        }
        "none" => {}
        _ => unreachable!("emit kind validated"),
    }

    if opts.run {
        let inputs: Inputs = opts.inputs.into_iter().collect();
        let before = run(&f, &inputs, opts.fuel);
        let after = run(&g, &inputs, opts.fuel);
        println!("trace before: {:?}", before.trace);
        println!("trace after:  {:?}", after.trace);
        println!(
            "evaluations:  {} -> {}",
            before.total_evals(),
            after.total_evals()
        );
        if before.trace != after.trace {
            eprintln!("lcmopt: BUG: traces differ!");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
