//! Property and CLI tests for the `profile` section of the module format.

use std::io::Write;
use std::process::{Command, Stdio};

use lcm::cfggen::{corpus, synthetic_profile, GenOptions};
use lcm::ir::{parse_module, Module};

/// Runs `lcmopt` with `stdin`, returning (exit code, stdout, stderr).
fn lcmopt(args: &[&str], stdin: &str) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lcmopt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lcmopt");
    // A usage error exits before stdin is read; the resulting BrokenPipe
    // is expected on those paths.
    if let Err(e) = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
    {
        assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "{e}");
    }
    let out = child.wait_with_output().expect("wait for lcmopt");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn profiles_round_trip_through_print_and_parse() {
    // Property over a seeded corpus: a module with synthetic profiles
    // prints to text that parses back to the identical module.
    let mut m = Module::default();
    for (i, mut f) in corpus(0xF10E, 60, &GenOptions::default())
        .into_iter()
        .enumerate()
    {
        f.name = format!("rt{i}");
        let p = synthetic_profile(&f, 0xF10E ^ i as u64);
        m.push(f).expect("unique names");
        m.push_profile(p).expect("one profile per function");
    }
    let text = m.to_string();
    let back = parse_module(&text).expect("printed module parses");
    assert_eq!(text, back.to_string(), "print→parse→print is not stable");
    for i in 0..60 {
        let name = format!("rt{i}");
        let (a, b) = (m.profile(&name).unwrap(), back.profile(&name).unwrap());
        assert_eq!(a.entries.len(), b.entries.len(), "{name}");
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!((&x.from, &x.to, x.weight), (&y.from, &y.to, y.weight));
        }
    }
}

const GUARDED_NO_PROFILE: &str = "fn guarded {
entry:
  jmp head
head:
  br p, body, done
body:
  br q, compute, skip
compute:
  x = a + b
  obs x
  jmp latch
skip:
  jmp latch
latch:
  p = p / 2
  jmp head
done:
  ret
}
";

#[test]
fn inconsistent_profiles_are_rejected_with_a_spanned_parse_error() {
    // head receives 1 (entry) + 5 (latch) but leaves 9 + 1: not conserving.
    let input = format!(
        "{GUARDED_NO_PROFILE}\nprofile guarded {{
  entry -> head : 1
  head -> body : 9
  head -> done : 1
  body -> compute : 6
  body -> skip : 3
  compute -> latch : 6
  skip -> latch : 3
  latch -> head : 5
}}\n"
    );
    let (code, _, stderr) = lcmopt(&["--placement", "spec", "--emit", "none"], &input);
    assert_eq!(
        code, 3,
        "conservation violations are parse errors: {stderr}"
    );
    assert!(stderr.contains("<stdin>:"), "not spanned: {stderr}");
    assert!(stderr.contains("flow not conserved"), "{stderr}");
}

#[test]
fn missing_profile_falls_back_to_lcm_with_a_note() {
    let (code, stats, stderr) = lcmopt(
        &["--placement", "spec", "--emit", "stats"],
        GUARDED_NO_PROFILE,
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(
        stats.contains("profile: none — speculative placement fell back to lcm"),
        "no fallback note:\n{stats}"
    );
    // The fallback must be *exactly* LCM, not a unit-weight speculation.
    let (_, spec_text, _) = lcmopt(&["--placement", "spec"], GUARDED_NO_PROFILE);
    let (_, lcm_text, _) = lcmopt(&["--placement", "lcm"], GUARDED_NO_PROFILE);
    assert_eq!(spec_text, lcm_text);
}

#[test]
fn the_golden_example_speculates_and_wins_dynamically() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/guarded_loop.lcm");
    let input = std::fs::read_to_string(path).expect("committed golden example");
    let (code, stats, stderr) = lcmopt(
        &["--placement", "spec", "--emit", "stats", "--validate=full"],
        &input,
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(
        stats.contains("speculative: 1 candidates, 1 speculated, weighted cost 6 -> 1"),
        "{stats}"
    );
    // `a + b` moves into the entry block, above the guard.
    let (_, text, _) = lcmopt(&["--placement", "spec"], &input);
    let entry_block = text
        .split("entry:")
        .nth(1)
        .and_then(|rest| rest.split("head:").next())
        .expect("entry block printed");
    assert!(entry_block.contains("a + b"), "not hoisted:\n{text}");

    // Strictly fewer dynamic evaluations than LCM on the same inputs.
    let evals = |out: &str| -> (u64, u64) {
        let line = out
            .lines()
            .find(|l| l.starts_with("dynamic evaluations"))
            .expect("dynamic evaluation line");
        let (before, after) = line
            .split_once(':')
            .map(|(_, v)| v.trim().split_once(" -> ").expect("arrow"))
            .expect("colon");
        (before.parse().unwrap(), after.parse().unwrap())
    };
    let (_, lcm_stats, _) = lcmopt(&["--placement", "lcm", "--emit", "stats"], &input);
    let (spec_before, spec_after) = evals(&stats);
    let (lcm_before, lcm_after) = evals(&lcm_stats);
    assert_eq!(spec_before, lcm_before, "same input, same baseline");
    assert!(
        spec_after < lcm_after,
        "speculation must win on the golden example: {spec_after} vs {lcm_after}"
    );
}

#[test]
fn placement_and_passes_are_mutually_exclusive() {
    let (code, _, stderr) = lcmopt(
        &["--placement", "spec", "--passes", "lcse"],
        GUARDED_NO_PROFILE,
    );
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    let (code, _, stderr) = lcmopt(&["--placement", "alien"], GUARDED_NO_PROFILE);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown placement"), "{stderr}");
}
