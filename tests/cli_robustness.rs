//! Graceful-degradation tests for the `lcmopt` driver: whatever bytes it
//! is fed, it must exit with one of the documented codes and a diagnostic
//! on stderr — never a panic (exit code 1 is reserved for the caught-panic
//! backstop, and reaching it is itself a bug).

use std::io::Write;
use std::process::{Command, Stdio};

const EXIT_PANIC: i32 = 1;
const DOCUMENTED: [i32; 5] = [0, 2, 3, 4, 5];

fn run_lcmopt(args: &[&str], stdin: &[u8]) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lcmopt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lcmopt");
    let write_result = child.stdin.as_mut().expect("stdin piped").write_all(stdin);
    if let Err(e) = write_result {
        assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe);
    }
    let out = child.wait_with_output().expect("wait for lcmopt");
    (
        out.status.code().expect("no exit code (signal?)"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Deterministic byte-garbling: truncations and single-byte substitutions
/// of well-formed corpus programs.
fn garblings(text: &str) -> Vec<Vec<u8>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    // Truncations at a spread of offsets.
    for i in 1..8 {
        let cut = bytes.len() * i / 8;
        out.push(bytes[..cut].to_vec());
    }
    // Byte substitutions sprinkled through the program.
    for (i, &junk) in [b'{', b'}', b':', b'=', b'@', 0xFF].iter().enumerate() {
        let mut g = bytes.to_vec();
        let pos = (i * 37 + 11) % g.len();
        g[pos] = junk;
        out.push(g);
    }
    out
}

#[test]
fn never_panics_on_garbled_corpus_inputs() {
    let functions = lcm::cfggen::corpus(0xBAD5EED, 6, &lcm::cfggen::GenOptions::sized(8));
    for f in &functions {
        let text = f.to_string();
        // The pristine program must be accepted.
        let (code, _, stderr) = run_lcmopt(&["--validate=full"], text.as_bytes());
        assert_eq!(code, 0, "pristine program rejected: {stderr}");

        for garbled in garblings(&text) {
            let (code, _, stderr) = run_lcmopt(&[], &garbled);
            assert_ne!(code, EXIT_PANIC, "lcmopt panicked; stderr: {stderr}");
            assert!(
                DOCUMENTED.contains(&code),
                "undocumented exit code {code}; stderr: {stderr}"
            );
            if code != 0 {
                assert!(
                    stderr.starts_with("lcmopt: "),
                    "failure without diagnostic (code {code}): {stderr:?}"
                );
            }
        }
    }
}

#[test]
fn exit_codes_are_distinct_per_failure_class() {
    // Usage error: 2.
    let ok_program: &[u8] = b"fn ok {\nentry:\n  x = a + b\n  obs x\n  ret\n}";
    let (code, _, stderr) = run_lcmopt(&["--passes", "nonsense"], ok_program);
    assert_eq!(code, 2, "{stderr}");
    // Unreadable file: 2.
    let (code, _, _) = run_lcmopt(&["/nonexistent/input.lcm"], b"");
    assert_eq!(code, 2);
    // Parse error: 3, with file:line:col.
    let (code, _, stderr) = run_lcmopt(&[], b"fn broken {\nentry:\n  x = +\n  ret\n}");
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("<stdin>:3:"), "{stderr}");
    // Verify error: 4.
    let (code, _, stderr) = run_lcmopt(&[], b"fn v {\nentry:\n  ret\norphan:\n  jmp entry\n}");
    assert_eq!(code, 4, "{stderr}");
    assert!(stderr.contains("not well-formed"), "{stderr}");
    // Bad validation level is a usage error.
    let (code, _, stderr) = run_lcmopt(&["--validate=medium"], b"");
    assert_eq!(code, 2, "{stderr}");
}

#[test]
fn validate_flag_levels_are_accepted() {
    let program = b"fn ok {\nentry:\n  x = a + b\n  obs x\n  ret\n}";
    for arg in [
        "--validate",
        "--validate=off",
        "--validate=fast",
        "--validate=full",
    ] {
        let (code, _, stderr) = run_lcmopt(&[arg], program);
        assert_eq!(code, 0, "{arg}: {stderr}");
    }
}
