//! Theorems T2 (computational optimality) and T3 (lifetime optimality),
//! validated empirically.
//!
//! * T2, exhaustively on DAGs: per entry→exit path, lazy code motion never
//!   evaluates a candidate expression more often than the original program,
//!   matches busy code motion exactly, and is never beaten by
//!   Morel–Renvoise.
//! * T2, statistically on cyclic programs: dynamic evaluation counts via
//!   the interpreter obey the same ordering on every tested input.
//! * T3: the temporaries' static live ranges and dynamic occupancy satisfy
//!   LCM ≤ BCM (and the edge form never loses to the node form on its own
//!   graph shape).

use lcm::cfggen::{corpus, random_dag, GenOptions};
use lcm::core::{metrics, optimize, passes, PreAlgorithm};
use lcm::interp::{dynamic_occupancy, run, Inputs};
use lcm::ir::{Expr, Function};

const MAX_PATHS: usize = 50_000;

/// The paper states its optimality theorems for programs on which local
/// common-subexpression elimination has already run (so a block holds at
/// most one upward- and one downward-exposed occurrence per expression).
/// Normalise generated programs accordingly before comparing algorithms.
fn normalized(f: &Function) -> Function {
    let mut g = f.clone();
    passes::lcse(&mut g);
    g
}

/// Per-path evaluation counts of the original universe, sorted by path
/// order (the same enumeration order for all variants of the function,
/// because insertions never change branch structure… except edge splits,
/// which splice a block into the middle of a path without reordering the
/// enumeration).
fn path_counts(f: &Function, exprs: &[Expr]) -> Option<Vec<u64>> {
    metrics::path_eval_counts(f, exprs, MAX_PATHS)
}

#[test]
fn t2_pathwise_on_dags() {
    let opts = GenOptions::sized(13);
    let mut checked = 0;
    for seed in 0..60 {
        let f = normalized(&random_dag(seed, &opts));
        let exprs = f.expr_universe();
        let Some(original) = path_counts(&f, &exprs) else {
            continue;
        };
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let mr = optimize(&f, PreAlgorithm::MorelRenvoise).unwrap();
        let busy_counts = path_counts(&busy.function, &exprs).expect("still acyclic");
        let lazy_counts = path_counts(&lazy.function, &exprs).expect("still acyclic");
        let mr_counts = path_counts(&mr.function, &exprs).expect("still acyclic");
        assert_eq!(original.len(), lazy_counts.len(), "seed {seed}");
        for (i, (&orig, &lzy)) in original.iter().zip(&lazy_counts).enumerate() {
            assert!(
                lzy <= orig,
                "seed {seed} path {i}: lazy {lzy} > original {orig}"
            );
        }
        // Busy and lazy are both computationally optimal: identical counts.
        assert_eq!(busy_counts, lazy_counts, "seed {seed}: busy != lazy");
        // Morel–Renvoise is admissible, hence never better than optimal.
        for (i, (&m, &l)) in mr_counts.iter().zip(&lazy_counts).enumerate() {
            assert!(m >= l, "seed {seed} path {i}: MR {m} beat optimal {l}");
            assert!(
                m <= original[i],
                "seed {seed} path {i}: MR worse than original"
            );
        }
        checked += 1;
    }
    assert!(checked >= 40, "too few DAGs were checkable: {checked}");
}

#[test]
fn t2_node_and_edge_formulations_agree_pathwise() {
    let opts = GenOptions::sized(12);
    for seed in 100..140 {
        let f = normalized(&random_dag(seed, &opts));
        let exprs = f.expr_universe();
        let edge = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let node = optimize(&f, PreAlgorithm::LazyNode).unwrap();
        let (Some(ec), Some(nc)) = (
            path_counts(&edge.function, &exprs),
            path_counts(&node.function, &exprs),
        ) else {
            continue;
        };
        assert_eq!(ec, nc, "seed {seed}: node and edge LCM count differently");
    }
}

#[test]
fn t2_dynamic_counts_on_cyclic_programs() {
    let opts = GenOptions::default();
    let inputs = [
        Inputs::new(),
        Inputs::new()
            .set("a", 5)
            .set("b", 2)
            .set("c", 1)
            .set("d", -3),
        Inputs::new()
            .set("a", -9)
            .set("b", 4)
            .set("e", 7)
            .set("f", 11),
    ];
    for f in corpus(0x7E57, 50, &opts) {
        let f = normalized(&f);
        let exprs = f.expr_universe();
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let node = optimize(&f, PreAlgorithm::LazyNode).unwrap();
        let alcm = optimize(&f, PreAlgorithm::AlmostLazyNode).unwrap();
        let mr = optimize(&f, PreAlgorithm::MorelRenvoise).unwrap();
        let gcse = optimize(&f, PreAlgorithm::Gcse).unwrap();
        for ins in &inputs {
            let fuel = 2_000_000;
            let orig = run(&f, ins, fuel);
            assert!(orig.completed());
            let count = |g: &Function| -> u64 { run(g, ins, fuel).total_evals_of(&exprs) };
            let o = orig.total_evals_of(&exprs);
            let b = count(&busy.function);
            let l = count(&lazy.function);
            let n = count(&node.function);
            let a = count(&alcm.function);
            let m = count(&mr.function);
            assert!(l <= o, "{}: lazy {l} > original {o}", f.name);
            assert_eq!(b, l, "{}: busy {b} != lazy {l}", f.name);
            assert_eq!(n, l, "{}: node {n} != edge {l}", f.name);
            assert_eq!(a, l, "{}: alcm {a} != lcm {l}", f.name);
            assert!(m >= l, "{}: MR {m} beat optimal {l}", f.name);
            assert!(m <= o, "{}: MR {m} worse than original {o}", f.name);
            // GCSE (full redundancies only) sits between original and LCM.
            let g = count(&gcse.function);
            assert!(g >= l, "{}: GCSE {g} beat optimal {l}", f.name);
            assert!(g <= o, "{}: GCSE {g} worse than original {o}", f.name);
        }
    }
}

#[test]
fn weighted_sites_capture_loop_hoisting() {
    // The invariant sits three loops deep (static weight 10^3); LCM hoists
    // it to the preheader (weight 1). The weighted-site estimate must
    // collapse accordingly.
    let f = lcm::cfggen::shapes::loop_invariant(3, 4);
    let inv = f
        .expr_universe()
        .into_iter()
        .find(|e| f.display_expr(*e) == "a * b")
        .unwrap();
    let before = metrics::weighted_eval_sites(&f, &[inv]);
    assert_eq!(before, 1000);
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    let after = metrics::weighted_eval_sites(&lazy.function, &[inv]);
    assert_eq!(after, 1);
    // And the depths themselves are sane.
    let depths = metrics::loop_depths(&f);
    assert_eq!(depths.iter().copied().max(), Some(3));
}

#[test]
fn gcse_handles_only_full_redundancy() {
    // Partial redundancy (the diamond): GCSE must not touch it; LCM must.
    let f = lcm::cfggen::shapes::diamond_chain(1);
    let gcse = optimize(&f, PreAlgorithm::Gcse).unwrap();
    assert_eq!(gcse.transform.stats.deletions, 0);
    assert_eq!(gcse.transform.stats.insertions, 0);
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    assert_eq!(lazy.transform.stats.deletions, 1);

    // Full redundancy: both handle it, GCSE without insertions.
    let g = lcm::ir::parse_function(
        "fn full {
         entry:
           x = a + b
           jmp next
         next:
           y = a + b
           obs y
           ret
         }",
    )
    .unwrap();
    let gcse = optimize(&g, PreAlgorithm::Gcse).unwrap();
    assert_eq!(gcse.transform.stats.deletions, 1);
    assert_eq!(gcse.transform.stats.insertions, 0);
}

#[test]
fn t3_static_live_ranges_lazy_beats_busy() {
    let opts = GenOptions::default();
    let mut strict = 0;
    for f in corpus(0x11FE, 60, &opts) {
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let bp = metrics::live_points(&busy.function, &busy.transform.temp_vars());
        let lp = metrics::live_points(&lazy.function, &lazy.transform.temp_vars());
        assert!(
            lp <= bp,
            "{}: lazy live range {lp} exceeds busy {bp}",
            f.name
        );
        if lp < bp {
            strict += 1;
        }
    }
    assert!(
        strict >= 10,
        "lifetime optimality should bite on a fair share of programs ({strict})"
    );
}

#[test]
fn t3_dynamic_occupancy_lazy_beats_busy() {
    let opts = GenOptions::default();
    let inputs = Inputs::new().set("a", 2).set("b", 3).set("c", 1);
    for f in corpus(0x0CC, 40, &opts) {
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let bo = dynamic_occupancy(
            &busy.function,
            &inputs,
            2_000_000,
            &busy.transform.temp_vars(),
        );
        let lo = dynamic_occupancy(
            &lazy.function,
            &inputs,
            2_000_000,
            &lazy.transform.temp_vars(),
        );
        assert!(
            lo <= bo,
            "{}: lazy occupancy {lo} exceeds busy {bo}",
            f.name
        );
    }
}

#[test]
fn lcm_strictly_improves_where_redundancy_exists() {
    // On the canonical shapes the gain must be real, not just non-negative.
    let f = lcm::cfggen::shapes::diamond_chain(5);
    let exprs = f.expr_universe();
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    let inputs = Inputs::new().set("a", 1).set("b", 2).set("c", 1);
    let before = run(&f, &inputs, 100_000).total_evals_of(&exprs);
    let after = run(&lazy.function, &inputs, 100_000).total_evals_of(&exprs);
    assert!(
        after < before,
        "no dynamic improvement on diamond chain: {after} vs {before}"
    );
    // Static sites shrink too.
    assert!(
        metrics::static_eval_sites(&lazy.function, &exprs) < metrics::static_eval_sites(&f, &exprs)
    );
}
