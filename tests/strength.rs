//! Integration tests for the lazy-strength-reduction extension: semantic
//! preservation and multiplication-count monotonicity on random corpora
//! (the generated programs contain injuries `v = v ± d` and `v * c`
//! candidates by construction).

use lcm::cfggen::{corpus, GenOptions};
use lcm::core::strength::{candidate_mults, strength_reduce};
use lcm::core::{passes, safety};
use lcm::interp::{observationally_equivalent, run, Inputs};

fn input_sets() -> Vec<Inputs> {
    vec![
        Inputs::new(),
        Inputs::new()
            .set("a", 7)
            .set("b", -2)
            .set("c", 1)
            .set("d", 100),
        Inputs::new()
            .set("a", i64::MAX / 3)
            .set("b", 11)
            .set("c", 0),
    ]
}

#[test]
fn strength_reduction_preserves_behaviour() {
    let opts = GenOptions::default();
    for f in corpus(0x57E6, 80, &opts) {
        let res = strength_reduce(&f);
        lcm::ir::verify(&res.function).unwrap();
        safety::check_definite_assignment(&res.function, &res.temp_vars())
            .unwrap_or_else(|e| panic!("{}: {e}", f.name));
        for inputs in input_sets() {
            assert!(
                observationally_equivalent(&f, &res.function, &inputs, 1_000_000),
                "{} diverged on {:?}",
                f.name,
                inputs
            );
        }
    }
}

#[test]
fn strength_reduction_never_adds_multiplications() {
    let opts = GenOptions::default();
    let mut reduced_on = 0usize;
    let mut total_before = 0u64;
    let mut total_after = 0u64;
    for f in corpus(0x57E7, 80, &opts) {
        let res = strength_reduce(&f);
        for inputs in input_sets() {
            let before = run(&f, &inputs, 1_000_000);
            let after = run(&res.function, &inputs, 1_000_000);
            assert!(before.completed() && after.completed());
            let mb = candidate_mults(&before, &res.candidates);
            let ma = candidate_mults(&after, &res.candidates);
            assert!(
                ma <= mb,
                "{}: multiplications increased {mb} -> {ma}",
                f.name
            );
            total_before += mb;
            total_after += ma;
            if ma < mb {
                reduced_on += 1;
            }
        }
    }
    assert!(
        reduced_on > 20,
        "strength reduction should bite on a fair share of runs ({reduced_on})"
    );
    assert!(total_after < total_before);
}

#[test]
fn strength_reduction_composes_with_cleanup() {
    let opts = GenOptions::default();
    for f in corpus(0x57E8, 30, &opts) {
        let mut g = strength_reduce(&f).function;
        passes::copy_propagation(&mut g);
        passes::dce(&mut g);
        lcm::ir::simplify_cfg(&mut g);
        lcm::ir::verify(&g).unwrap();
        for inputs in input_sets() {
            assert!(
                observationally_equivalent(&f, &g, &inputs, 1_000_000),
                "{} diverged after cleanup",
                f.name
            );
        }
    }
}

#[test]
fn strength_reduction_is_idempotent_on_counts() {
    // A second application finds nothing new to reduce dynamically.
    let opts = GenOptions::default();
    let inputs = Inputs::new().set("a", 5).set("b", 3);
    for f in corpus(0x57E9, 30, &opts) {
        let once = strength_reduce(&f);
        let twice = strength_reduce(&once.function);
        let r1 = run(&once.function, &inputs, 1_000_000);
        let r2 = run(&twice.function, &inputs, 1_000_000);
        assert_eq!(
            candidate_mults(&r1, &once.candidates),
            candidate_mults(&r2, &once.candidates),
            "{}",
            f.name
        );
        assert!(observationally_equivalent(
            &once.function,
            &twice.function,
            &inputs,
            1_000_000
        ));
    }
}
