//! The `lcmopt watch` engine: [`BatchEngine::run_module_incremental`]
//! answers every revision of a module byte-identically to a one-shot
//! batch on the same revision, while its mode accounting tracks what
//! actually changed — fresh on first sight, an SCC-scoped delta on a
//! content edit (re-solving strictly fewer block rows than a full solve),
//! a *mapped* delta on a recognized one-block shape edit, and a zero-dirty
//! memo replay for functions the revision didn't touch at all.

use lcm::driver::{report, BatchEngine, BatchOptions, EditClassCounters, IncrementalMode};
use lcm::ir::parse_module;

/// Revision 0: the classic diamond, plus a straight-line function that
/// never changes (its delta solves should be free).
const REV0: &str = "fn d {
entry:
  br c, l, r
l:
  x = a + b
  jmp join
r:
  jmp join
join:
  y = a + b
  obs y
  ret
}

fn straight {
entry:
  x = p * q
  obs x
  ret
}
";

/// A content edit in `join`: `a = 1` kills `a + b` downstream without
/// changing the CFG shape or the expression universe.
fn rev1() -> String {
    REV0.replace("y = a + b", "y = a + b\n  a = 1")
}

/// A shape edit: `r` now reaches `join` through a fresh straight-line
/// block — the inserted-block pattern the shape mapper recognizes, so the
/// delta path survives with permuted rows instead of falling back.
fn rev2() -> String {
    rev1().replace("r:\n  jmp join", "r:\n  jmp detour\ndetour:\n  jmp join")
}

#[test]
fn watched_revisions_match_one_shot_batches_byte_for_byte() {
    let mut watch = BatchEngine::new(BatchOptions::default());
    for (i, text) in [REV0.to_string(), rev1(), rev2()].iter().enumerate() {
        let m = parse_module(text).expect("revision parses");
        let units = watch.run_module_incremental(&m);
        // The reference engine is cold and cache-less every revision: the
        // purest one-shot answer there is.
        let mut fresh = BatchEngine::new(BatchOptions {
            use_cache: false,
            ..BatchOptions::default()
        });
        let want = report::render_text(&fresh.run_module(&m));
        assert_eq!(
            report::render_incremental_text(&units),
            want,
            "revision {i} diverged from the one-shot answer"
        );
    }
}

#[test]
fn modes_and_delta_accounting_track_what_changed() {
    let mut watch = BatchEngine::new(BatchOptions::default());

    let m0 = parse_module(REV0).unwrap();
    let units = watch.run_module_incremental(&m0);
    assert!(
        units.iter().all(|u| u.mode == IncrementalMode::Fresh),
        "first sight must solve fresh"
    );
    assert_eq!(watch.incremental_session(), (0, 0));
    assert_eq!(watch.edit_classes(), EditClassCounters::default());

    // Content edit: `d` delta-solves strictly fewer rows than a full
    // solve would pay; byte-identical `straight` never reaches the solver
    // at all — its memoized output is replayed.
    let m1 = parse_module(&rev1()).unwrap();
    let units = watch.run_module_incremental(&m1);
    let d = &units[0];
    assert_eq!(d.mode, IncrementalMode::Delta);
    assert!(d.stats.dirty_blocks >= 1);
    assert!(
        d.stats.delta_blocks_resolved < 3 * d.blocks,
        "delta paid {} rows, a full solve pays {}",
        d.stats.delta_blocks_resolved,
        3 * d.blocks
    );
    let s = &units[1];
    assert_eq!(s.mode, IncrementalMode::ZeroDirty);
    assert_eq!(s.stats.dirty_blocks, 0);
    assert_eq!(s.stats.delta_blocks_resolved, 0);
    let (hits, _) = watch.incremental_session();
    assert_eq!(hits, 1, "a memo replay is not a delta solve");
    assert_eq!(watch.edit_classes().content, 1);
    assert_eq!(watch.edit_classes().zero_dirty, 1);

    // Shape edit: the inserted `detour` block is one of the two mapped
    // patterns, so the delta path survives (no fallback) and the edit
    // ledger records it; `straight` replays its memo again.
    let m2 = parse_module(&rev2()).unwrap();
    let units = watch.run_module_incremental(&m2);
    assert_eq!(units[0].mode, IncrementalMode::Delta);
    assert!(units[0].stats.shape_mapped);
    assert!(!units[0].stats.full_fallback);
    assert_eq!(units[1].mode, IncrementalMode::ZeroDirty);
    let (hits, _) = watch.incremental_session();
    assert_eq!(hits, 2, "the mapped shape edit is a delta hit");
    assert_eq!(watch.edit_classes().shape_mapped, 1);
    assert_eq!(watch.edit_classes().zero_dirty, 2);
    assert_eq!(watch.edit_classes().fallback, 0);
}
