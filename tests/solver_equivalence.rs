//! Solver equivalence: the round-robin solver, the worklist solver, and
//! the fused pipeline (shared `CfgView` + worklist) reach bit-identical
//! fixpoints for every analysis, on every function of the generator
//! corpus — and therefore identical insert/delete placements.
//!
//! This is the safety net under the fused `lcm()` path: the worklist
//! strategy and the shared orderings are pure cost optimisations, never
//! allowed to change an answer.

use lcm::cfggen::{arbitrary, corpus, random_dag, shapes, GenOptions};
use lcm::core::{
    anticipability_problem, availability_problem, later_problem, lazy_edge_plan, lcm, ExprUniverse,
    GlobalAnalyses, LocalPredicates,
};
use lcm::dataflow::CfgView;
use lcm::ir::Function;

/// Structured programs, arbitrary (possibly irreducible) CFGs, DAGs and
/// loop-nest shapes — every generator family in one corpus.
fn test_corpus() -> Vec<Function> {
    let mut fns = corpus(0x50EB, 40, &GenOptions::default());
    fns.extend(corpus(0x50EC, 6, &GenOptions::sized(200)));
    fns.extend((0..20).map(|s| arbitrary(s, &GenOptions::sized(18))));
    fns.extend((0..20).map(|s| random_dag(s, &GenOptions::sized(14))));
    fns.push(shapes::loop_invariant(4, 8));
    fns.push(shapes::diamond_chain(32));
    fns.push(shapes::pressure_chain(16));
    fns.push(shapes::ladder(32));
    fns.push(shapes::one_armed_chain(16));
    fns
}

#[test]
fn all_solvers_reach_the_same_fixpoint_for_every_analysis() {
    for f in test_corpus() {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let view = CfgView::new(&f);
        for (name, p) in [
            ("availability", availability_problem(&f, &uni, &local)),
            ("anticipability", anticipability_problem(&f, &uni, &local)),
            ("later", later_problem(&f, &uni, &local, &ga)),
        ] {
            let rr = p.solve();
            let wl = p.solve_worklist();
            let fused = p.solve_worklist_in(&view);
            assert_eq!(rr.ins, wl.ins, "{name} ins differ on {}", f.name);
            assert_eq!(rr.outs, wl.outs, "{name} outs differ on {}", f.name);
            assert_eq!(rr.ins, fused.ins, "{name} fused ins differ on {}", f.name);
            assert_eq!(
                rr.outs, fused.outs,
                "{name} fused outs differ on {}",
                f.name
            );
        }
    }
}

#[test]
fn fused_pipeline_placement_is_bit_identical_to_the_seed_path() {
    for f in test_corpus() {
        // Seed path: independent round-robin solves.
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        // Fused path: shared view, worklist solver.
        let p = lcm(&f).unwrap();
        assert_eq!(p.analyses.avail.ins, ga.avail.ins, "{}", f.name);
        assert_eq!(p.analyses.avail.outs, ga.avail.outs, "{}", f.name);
        assert_eq!(p.analyses.antic.ins, ga.antic.ins, "{}", f.name);
        assert_eq!(p.analyses.antic.outs, ga.antic.outs, "{}", f.name);
        assert_eq!(p.analyses.earliest, ga.earliest, "{}", f.name);
        assert_eq!(p.analyses.earliest_entry, ga.earliest_entry, "{}", f.name);
        assert_eq!(p.lazy.laterin, lazy.laterin, "{}", f.name);
        assert_eq!(p.lazy.later, lazy.later, "{}", f.name);
        assert_eq!(
            p.lazy.plan.edge_inserts, lazy.plan.edge_inserts,
            "insert sets differ on {}",
            f.name
        );
        assert_eq!(
            p.lazy.plan.entry_insert, lazy.plan.entry_insert,
            "entry inserts differ on {}",
            f.name
        );
        assert_eq!(
            p.lazy.delete, lazy.delete,
            "delete sets differ on {}",
            f.name
        );
    }
}

#[test]
fn a_shared_view_matches_the_functions_graph() {
    for f in test_corpus().into_iter().take(20) {
        let view = CfgView::new(&f);
        assert_eq!(view.num_blocks(), f.num_blocks());
        assert_eq!(view.rpo().len(), view.postorder().len());
        let preds = f.preds();
        for b in f.block_ids() {
            assert_eq!(view.preds(b), preds[b.index()].as_slice());
            assert_eq!(
                view.succs(b),
                f.succs(b).collect::<Vec<_>>().as_slice(),
                "{}",
                f.name
            );
        }
    }
}
