//! Theorem T1 (admissibility/correctness): every PRE algorithm preserves
//! observational behaviour on every input, never leaves a temporary
//! possibly-unassigned before a use, and only inserts at safe points.

use lcm::cfggen::{arbitrary, corpus, random_dag, GenOptions};
use lcm::core::{
    optimize, optimize_pipeline, safety, ExprUniverse, GlobalAnalyses, LocalPredicates,
    PreAlgorithm,
};
use lcm::interp::{observationally_equivalent, Inputs};
use lcm::ir::Function;

fn input_sets() -> Vec<Inputs> {
    vec![
        Inputs::new(),
        Inputs::new().set("a", 3).set("b", -7).set("c", 1),
        Inputs::new()
            .set("a", -1)
            .set("b", 100)
            .set("c", 0)
            .set("d", 5)
            .set("e", 2)
            .set("f", 13),
        Inputs::new()
            .set("a", i64::MAX)
            .set("b", i64::MIN)
            .set("c", 2),
    ]
}

fn check_all_algorithms(f: &Function, fuel: u64) {
    for alg in PreAlgorithm::ALL {
        let o = optimize(f, alg).unwrap();
        lcm::ir::verify(&o.function)
            .unwrap_or_else(|e| panic!("{} produced invalid IR on {}: {e}", alg.name(), f.name));
        // Temps are definitely assigned before every use.
        safety::check_definite_assignment(&o.function, &o.transform.temp_vars())
            .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), f.name));
        // Observationally equivalent to the input of the plan (for the node
        // algorithms that is the split function, itself trivially
        // equivalent to f) — and to the original.
        for inputs in input_sets() {
            assert!(
                observationally_equivalent(f, &o.function, &inputs, fuel),
                "{} changed behaviour of {} on {:?}",
                alg.name(),
                f.name,
                inputs
            );
        }
    }
}

#[test]
fn structured_corpus_is_preserved() {
    let opts = GenOptions::default();
    for f in corpus(0xC0FFEE, 60, &opts) {
        check_all_algorithms(&f, 500_000);
    }
}

#[test]
fn larger_structured_programs_are_preserved() {
    let opts = GenOptions::sized(150);
    for f in corpus(0xBEEF, 12, &opts) {
        check_all_algorithms(&f, 2_000_000);
    }
}

#[test]
fn dag_corpus_is_preserved() {
    let opts = GenOptions::sized(14);
    for seed in 0..40 {
        let f = random_dag(seed, &opts);
        check_all_algorithms(&f, 100_000);
    }
}

#[test]
fn arbitrary_cfgs_including_irreducible_are_preserved() {
    // These may diverge; the oracle compares observation prefixes under
    // fuel, which is still a strong check because both programs follow the
    // same branch decisions.
    let opts = GenOptions::sized(16);
    for seed in 0..40 {
        let f = arbitrary(seed, &opts);
        check_all_algorithms(&f, 30_000);
    }
}

#[test]
fn full_pipeline_preserves_behaviour() {
    let opts = GenOptions::default();
    for f in corpus(0xFEED, 40, &opts) {
        for alg in PreAlgorithm::ALL {
            let g = optimize_pipeline(&f, alg).unwrap();
            lcm::ir::verify(&g).unwrap();
            for inputs in input_sets() {
                assert!(
                    observationally_equivalent(&f, &g, &inputs, 500_000),
                    "pipeline({}) changed behaviour of {}",
                    alg.name(),
                    f.name
                );
            }
        }
    }
}

#[test]
fn planned_insertions_are_safe_points() {
    let opts = GenOptions::default();
    for f in corpus(0xAB1E, 40, &opts) {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();

        let busy = lcm::core::busy_plan(&f, &uni, &local, &ga);
        safety::check_plan_safety(&f, &uni, &local, &ga, &busy).unwrap();

        let lazy = lcm::core::lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        safety::check_plan_safety(&f, &uni, &local, &ga, &lazy.plan).unwrap();

        let mr = lcm::core::morel_renvoise_plan(&f, &uni, &local).unwrap();
        safety::check_plan_safety(&f, &uni, &local, &ga, &mr.plan).unwrap();

        // Node plans are for the split function.
        let node = lcm::core::lazy_node_plan(&f, true).unwrap();
        let nga = GlobalAnalyses::compute(&node.function, &node.universe, &node.local).unwrap();
        safety::check_plan_safety(
            &node.function,
            &node.universe,
            &node.local,
            &nga,
            &node.plan,
        )
        .unwrap();
    }
}

#[test]
fn optimizing_twice_is_idempotent() {
    // Re-running LCM on its own output finds nothing left to do.
    let opts = GenOptions::default();
    for f in corpus(0x1D, 30, &opts) {
        let once = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let twice = optimize(&once.function, PreAlgorithm::LazyEdge).unwrap();
        assert_eq!(
            twice.transform.stats.insertions, 0,
            "second LCM run inserted on {}",
            f.name
        );
        assert_eq!(
            twice.transform.stats.deletions, 0,
            "second LCM run deleted on {}",
            f.name
        );
    }
}
