//! Solver-divergence bounds on pathological CFGs.
//!
//! Every fixpoint loop in the workspace now carries a derived sweep bound
//! and reports [`SolverDiverged`] instead of spinning. These tests pin
//! both directions: well-formed inputs — including the ladder CFGs whose
//! retreating edges maximise round-robin sweep counts — always converge
//! inside their bounds, and an artificially strangled bound actually
//! produces the typed error rather than a hang or a panic.

use lcm::cfggen::shapes;
use lcm::core::{
    availability_problem, lcm, morel_renvoise_plan, optimize, ExprUniverse, LocalPredicates,
    PreAlgorithm,
};
use lcm::dataflow::SolverDiverged;

#[test]
fn ladders_converge_within_bounds_for_every_algorithm() {
    for n in [1, 2, 5, 13, 34] {
        let f = shapes::ladder(n);
        for alg in PreAlgorithm::ALL {
            optimize(&f, alg)
                .unwrap_or_else(|e| panic!("{} diverged on ladder({n}): {e}", alg.name()));
        }
        lcm(&f).unwrap_or_else(|e| panic!("fused pipeline diverged on ladder({n}): {e}"));
    }
}

#[test]
fn morel_renvoise_sweeps_stay_linear_on_ladders() {
    // The derived bound is 2·n·|universe| + 2; actual bidirectional
    // sweeps on ladders are far below it (a small constant in practice).
    for n in [5, 13, 34] {
        let f = shapes::ladder(n);
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let mr = morel_renvoise_plan(&f, &uni, &local).unwrap();
        let bound = 2 * f.num_blocks() * uni.len() + 2;
        assert!(
            (mr.stats.iterations as usize) < bound,
            "ladder({n}): {} sweeps at bound {bound}",
            mr.stats.iterations
        );
    }
}

#[test]
fn strangled_sweep_bound_reports_divergence() {
    let f = shapes::ladder(8);
    let uni = ExprUniverse::of(&f);
    let local = LocalPredicates::compute(&f, &uni);
    // One sweep cannot reach the availability fixpoint on a ladder this
    // deep, so a bound of 1 must trip the divergence check.
    let err = availability_problem(&f, &uni, &local)
        .with_sweep_bound(1)
        .try_solve()
        .unwrap_err();
    let SolverDiverged { analysis, sweeps } = err;
    assert_eq!(sweeps, 1);
    assert!(!analysis.is_empty());
    assert!(err.to_string().contains("did not converge"), "{err}");
}
