//! The incremental re-optimization proof: across a seeded edit corpus
//! (content edits and shape edits, hundreds of mutate steps), the delta
//! path of `optimize_incremental` produces **bit-identical** output to a
//! from-scratch solve — including universe growth/shrink (column
//! widening/remapping), mapped one-block shape edits (row permutation),
//! and the full-solve fallback on everything more complex — and every
//! result carries a fast-tier validation report.
//!
//! The corpus is the centerpiece evidence for the delta solver's
//! correctness argument: monotone gen/kill systems have a unique fixpoint,
//! so components outside the directional closure of an edit provably keep
//! their values — and fixpoints are equivariant under block/column
//! relabeling, so remapped seeds inherit the same argument; these tests
//! pin that theorem empirically, the way `tests/strategy_corpus.rs` pins
//! strategy equivalence.

use lcm::cfggen::{mutate_function, seeded, structured, GenOptions, MutationKind};
use lcm::core::{
    optimize, optimize_incremental, IncrementalOutcome, IncrementalState, Optimized, PreAlgorithm,
    ValidationLevel,
};
use lcm::ir::{parse_function, Function};

fn assert_bit_identical(out: &IncrementalOutcome, fresh: &Optimized, tag: &str) {
    assert_eq!(
        out.optimized.function.to_string(),
        fresh.function.to_string(),
        "output text diverged: {tag}"
    );
    assert_eq!(
        out.optimized.plan.num_insertions(),
        fresh.plan.num_insertions(),
        "insertion count diverged: {tag}"
    );
    assert_eq!(
        out.optimized.transform.stats, fresh.transform.stats,
        "transform stats diverged: {tag}"
    );
    assert!(
        out.report.level != ValidationLevel::Off,
        "missing fast validation: {tag}"
    );
}

/// ≥200 seeded mutate steps over evolving functions: every step's
/// incremental result is bit-identical to a fresh solve, content edits
/// (including the ones that grow or shrink the expression universe)
/// *never* fall back, mapped shape edits stay on the delta path, and
/// non-fallback delta solves never visit more nodes than fresh ones
/// (strictly fewer on most).
#[test]
fn edit_corpus_is_bit_identical_to_fresh_solves() {
    let mut steps = 0usize;
    let mut content_steps = 0usize;
    let mut shape_steps = 0usize;
    let mut shape_mapped_steps = 0usize;
    let mut fallback_steps = 0usize;
    let mut universe_grow_steps = 0usize;
    let mut universe_shrink_steps = 0usize;
    let mut delta_steps = 0usize;
    let mut strictly_fewer = 0usize;

    for seed in 0..10u64 {
        let mut f = structured(seed, &GenOptions::default());
        let (_, mut state) = IncrementalState::fresh(&f).unwrap();
        let mut rng = seeded(seed ^ 0xED17_C0DE);
        for step in 0..24 {
            let mut next = f.clone();
            let kind = mutate_function(&mut next, &mut rng, 0.2);
            let tag = format!("seed {seed} step {step} ({kind:?})");

            let out = optimize_incremental(&state, &next, 42).unwrap();
            let fresh = optimize(&next, PreAlgorithm::LazyEdge).unwrap();
            assert_bit_identical(&out, &fresh, &tag);

            match kind {
                MutationKind::Shape => {
                    shape_steps += 1;
                    if out.stats.full_fallback {
                        fallback_steps += 1;
                    } else {
                        assert!(
                            out.stats.shape_mapped,
                            "unmapped shape edit on the delta path: {tag}"
                        );
                        shape_mapped_steps += 1;
                    }
                }
                MutationKind::Content => {
                    // The whole point of the universe delta: a content
                    // edit can never force a full solve anymore.
                    assert!(!out.stats.full_fallback, "content edit fell back: {tag}");
                    content_steps += 1;
                    if out.stats.universe_grew {
                        universe_grow_steps += 1;
                    }
                    if out.stats.universe_shrunk {
                        universe_shrink_steps += 1;
                    }
                }
            }
            if !out.stats.full_fallback {
                delta_steps += 1;
                let delta = out.optimized.pipeline_stats.unwrap().total().node_visits;
                let full = fresh.pipeline_stats.unwrap().total().node_visits;
                assert!(delta <= full, "delta visited more than fresh: {tag}");
                if delta < full {
                    strictly_fewer += 1;
                }
            }

            state = out.state;
            f = next;
            steps += 1;
        }
    }

    assert!(steps >= 200, "corpus shrank to {steps} steps");
    assert!(shape_steps >= 10, "only {shape_steps} shape edits");
    assert!(
        shape_mapped_steps >= 5,
        "only {shape_mapped_steps} mapped shape edits"
    );
    assert!(content_steps >= 100, "only {content_steps} content edits");
    assert!(
        universe_grow_steps >= 3,
        "only {universe_grow_steps} universe-growing edits"
    );
    assert!(
        universe_shrink_steps >= 1,
        "only {universe_shrink_steps} universe-shrinking edits"
    );
    assert!(
        fallback_steps < shape_steps,
        "every shape edit fell back ({fallback_steps}/{shape_steps})"
    );
    assert!(delta_steps >= 50, "only {delta_steps} delta-path steps");
    assert!(
        strictly_fewer * 2 >= delta_steps,
        "delta solves rarely cheaper: {strictly_fewer}/{delta_steps}"
    );
}

fn run_pair(t1: &str, t2: &str) -> (IncrementalOutcome, Optimized, Function) {
    let f1 = parse_function(t1).unwrap();
    let f2 = parse_function(t2).unwrap();
    let (_, state) = IncrementalState::fresh(&f1).unwrap();
    let out = optimize_incremental(&state, &f2, 7).unwrap();
    let fresh = optimize(&f2, PreAlgorithm::LazyEdge).unwrap();
    (out, fresh, f2)
}

const BASE: &str = "fn g {
    entry:
      x = a + b
      br c, mid, side
    mid:
      t = c + d
      jmp join
    side:
      u = c + d
      jmp join
    join:
      y = a + b
      z = c + d
      obs y
      obs z
      ret
    }";

/// An edit that only changes a block's kill set (no occurrence added or
/// removed): appending `a = 1` to `mid` kills `a + b` through that arm.
#[test]
fn kill_set_only_edit_stays_on_the_delta_path() {
    let edited = BASE.replace("t = c + d", "t = c + d\n      a = 1");
    let (out, fresh, _) = run_pair(BASE, &edited);
    assert!(!out.stats.full_fallback);
    assert_eq!(out.stats.dirty_blocks, 1);
    assert_bit_identical(&out, &fresh, "kill-set-only edit");
}

/// An edit that empties a block entirely. The expressions it computed
/// still occur elsewhere, so the universe (and the delta path) survive.
#[test]
fn emptied_block_stays_on_the_delta_path() {
    let edited = BASE.replace("t = c + d\n      jmp join", "jmp join");
    let (out, fresh, _) = run_pair(BASE, &edited);
    assert!(!out.stats.full_fallback);
    assert_bit_identical(&out, &fresh, "emptied block");
}

/// An edit touching the entry block — the boundary row of the forward
/// problems and the virtual-entry EARLIEST both sit there. (`a = 1` kills
/// `a + b` out of the entry without disturbing variable interning.)
#[test]
fn entry_block_edit_stays_on_the_delta_path() {
    let edited = BASE.replace("x = a + b\n      br", "x = a + b\n      a = 1\n      br");
    let (out, fresh, _) = run_pair(BASE, &edited);
    assert!(!out.stats.full_fallback);
    assert_bit_identical(&out, &fresh, "entry-block edit");
}

/// A content edit introducing a brand-new expression: the universe grows
/// by one column, retained rows widen in place (new bits ⊥), and only the
/// edited block goes dirty. New variables intern *after* all existing
/// ones, so the rest of the function stays index-identical.
#[test]
fn universe_growing_edit_widens_in_place() {
    let edited = BASE.replace("obs y", "w = c + e\n      obs y");
    let (out, fresh, _) = run_pair(BASE, &edited);
    assert!(!out.stats.full_fallback, "universe growth fell back");
    assert!(out.stats.universe_grew && !out.stats.universe_shrunk);
    assert!(!out.stats.shape_mapped);
    assert_eq!(out.stats.dirty_blocks, 1);
    assert_bit_identical(&out, &fresh, "universe-growing edit");
}

/// The reverse edit: the only occurrence of an expression disappears, the
/// universe shrinks, and the retained columns are remapped (a prefix
/// here) instead of forcing a full solve.
#[test]
fn universe_shrinking_edit_remaps_columns() {
    let grown = BASE.replace("obs y", "w = c + e\n      obs y");
    let (out, fresh, _) = run_pair(&grown, BASE);
    assert!(!out.stats.full_fallback, "universe shrink fell back");
    assert!(out.stats.universe_shrunk && !out.stats.universe_grew);
    assert_bit_identical(&out, &fresh, "universe-shrinking edit");
}

/// A single block split — `mid`'s tail moves into a new block carrying
/// its old terminator — is recognized by the shape mapper: rows permute
/// through the old→new block map, no fallback.
#[test]
fn block_split_is_mapped_onto_the_delta_path() {
    let two_instr = BASE.replace("t = c + d", "t = c + d\n      v = a + b");
    let split = two_instr.replace(
        "v = a + b\n      jmp join",
        "jmp cont\n    cont:\n      v = a + b\n      jmp join",
    );
    let (out, fresh, _) = run_pair(&two_instr, &split);
    assert!(!out.stats.full_fallback, "block split fell back");
    assert!(out.stats.shape_mapped);
    assert_bit_identical(&out, &fresh, "block split");
}

/// A straight-line block inserted on one edge is the other recognized
/// shape edit: the anchor redirects a single successor into the new
/// block, which jumps straight on.
#[test]
fn inserted_block_is_mapped_and_still_matches() {
    let edited = BASE.replace(
        "side:\n      u = c + d",
        "side:\n      u = c + d\n      jmp hop\n    hop:",
    );
    let (out, fresh, _) = run_pair(BASE, &edited);
    assert!(!out.stats.full_fallback, "inserted block fell back");
    assert!(out.stats.shape_mapped);
    assert_bit_identical(&out, &fresh, "inserted block");
}

/// An edge retarget (same block count, different successor) is *not* one
/// of the mapped shapes: the strict fallback contract still applies — and
/// still matches a fresh solve bit for bit.
#[test]
fn edge_retarget_takes_the_fallback_and_still_matches() {
    let edited = BASE.replace("u = c + d\n      jmp join", "u = c + d\n      jmp mid");
    let (out, fresh, _) = run_pair(BASE, &edited);
    assert!(out.stats.full_fallback);
    assert_eq!(out.stats.delta_blocks_resolved, 0);
    assert!(!out.stats.shape_mapped);
    assert_bit_identical(&out, &fresh, "edge retarget");
}
