//! Property-style tests, hermetic edition: the invariants hold across the
//! generator's whole configuration space, driven by the in-tree seeded
//! PRNG instead of proptest — `cargo test` needs no network and no
//! external crates. (The proptest originals live on in
//! `extras/tests/properties.rs` for machines with a registry mirror.)
//!
//! Every case derives its program, options and inputs from one master
//! [`Rng`] stream, so a failure reproduces exactly from the seed printed
//! in the assertion message.

use lcm::cfggen::{arbitrary as arb_cfg, random_dag, seeded, structured, GenOptions, Rng};
use lcm::core::{metrics, optimize, passes, safety, PreAlgorithm};
use lcm::dataflow::BitSet;
use lcm::interp::{observationally_equivalent, Inputs};

fn random_opts(rng: &mut Rng) -> GenOptions {
    GenOptions {
        size: rng.gen_range(5..80usize),
        num_vars: rng.gen_range(2..8usize),
        menu: rng.gen_range(1..8usize),
        menu_bias: 0.2 + 0.75 * rng.gen_f64(),
        obs_prob: 0.05 + 0.45 * rng.gen_f64(),
        max_depth: rng.gen_range(1..5usize),
        // Keep this suite on the pure-arithmetic corpus; memory ops have
        // their own property suite (tests/memory_ops.rs). Zero also draws
        // nothing from the RNG, so the historical streams are unchanged.
        mem_prob: 0.0,
    }
}

fn random_inputs(rng: &mut Rng) -> Inputs {
    ["a", "b", "c", "d", "e", "f", "g", "h"]
        .iter()
        .map(|n| (n.to_string(), rng.gen_range(-100..100i64)))
        .collect()
}

/// Any structured program, any options, any inputs, any algorithm:
/// behaviour is preserved and temps are definitely assigned.
#[test]
fn pre_preserves_structured_programs() {
    let mut rng = seeded(0x11E5_0001);
    for case in 0..32 {
        let seed = rng.next_u64();
        let opts = random_opts(&mut rng);
        let inputs = random_inputs(&mut rng);
        let f = structured(seed, &opts);
        for alg in PreAlgorithm::ALL {
            let o = optimize(&f, alg).unwrap();
            lcm::ir::verify(&o.function).unwrap();
            safety::check_definite_assignment(&o.function, &o.transform.temp_vars()).unwrap();
            assert!(
                observationally_equivalent(&f, &o.function, &inputs, 1_000_000),
                "case {case} (seed {seed:#x}): {} changed behaviour",
                alg.name()
            );
        }
    }
}

/// Busy and lazy code motion agree on evaluation counts path by path, on
/// arbitrary DAG shapes (after LCSE canonicalisation).
#[test]
fn busy_equals_lazy_on_random_dags() {
    let mut rng = seeded(0x11E5_0002);
    for case in 0..64 {
        let seed = rng.next_u64();
        let size = rng.gen_range(3..20usize);
        let mut f = random_dag(seed, &GenOptions::sized(size));
        passes::lcse(&mut f);
        let exprs = f.expr_universe();
        let Some(orig) = metrics::path_eval_counts(&f, &exprs, 20_000) else {
            continue;
        };
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let b = metrics::path_eval_counts(&busy.function, &exprs, 20_000).unwrap();
        let l = metrics::path_eval_counts(&lazy.function, &exprs, 20_000).unwrap();
        assert_eq!(b, l, "case {case} (seed {seed:#x})");
        for (o, n) in orig.iter().zip(&l) {
            assert!(n <= o, "case {case} (seed {seed:#x}): {n} > {o}");
        }
    }
}

/// The lifetime ordering LCM ≤ BCM holds for every generator setting.
#[test]
fn lazy_lifetimes_never_exceed_busy() {
    let mut rng = seeded(0x11E5_0003);
    for case in 0..64 {
        let seed = rng.next_u64();
        let opts = random_opts(&mut rng);
        let f = structured(seed, &opts);
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let bp = metrics::live_points(&busy.function, &busy.transform.temp_vars());
        let lp = metrics::live_points(&lazy.function, &lazy.transform.temp_vars());
        assert!(
            lp <= bp,
            "case {case} (seed {seed:#x}): lazy {lp} > busy {bp}"
        );
    }
}

/// Arbitrary (possibly irreducible) CFGs never break the transforms.
#[test]
fn pre_survives_arbitrary_cfgs() {
    let mut rng = seeded(0x11E5_0004);
    for case in 0..64 {
        let seed = rng.next_u64();
        let size = rng.gen_range(2..25usize);
        let f = arb_cfg(seed, &GenOptions::sized(size));
        for alg in PreAlgorithm::ALL {
            let o = optimize(&f, alg).unwrap();
            lcm::ir::verify(&o.function).unwrap();
            safety::check_definite_assignment(&o.function, &o.transform.temp_vars()).unwrap();
            assert!(
                observationally_equivalent(
                    &f,
                    &o.function,
                    &Inputs::new().set("a", 1).set("b", 2),
                    20_000
                ),
                "case {case} (seed {seed:#x}): {}",
                alg.name()
            );
        }
    }
}

/// LCSE is semantics-preserving and idempotent for every program.
#[test]
fn lcse_preserves_and_converges() {
    let mut rng = seeded(0x11E5_0005);
    for case in 0..48 {
        let seed = rng.next_u64();
        let opts = random_opts(&mut rng);
        let inputs = random_inputs(&mut rng);
        let f = structured(seed, &opts);
        let mut g = f.clone();
        passes::lcse(&mut g);
        lcm::ir::verify(&g).unwrap();
        assert!(
            observationally_equivalent(&f, &g, &inputs, 1_000_000),
            "case {case} (seed {seed:#x})"
        );
        let frozen = g.to_string();
        assert_eq!(passes::lcse(&mut g), 0, "case {case} (seed {seed:#x})");
        assert_eq!(g.to_string(), frozen, "case {case} (seed {seed:#x})");
    }
}

/// DCE, copy propagation and CFG simplification preserve behaviour.
#[test]
fn cleanup_passes_preserve() {
    let mut rng = seeded(0x11E5_0006);
    for case in 0..48 {
        let seed = rng.next_u64();
        let opts = random_opts(&mut rng);
        let inputs = random_inputs(&mut rng);
        let f = structured(seed, &opts);
        let mut g = f.clone();
        passes::copy_propagation(&mut g);
        passes::dce(&mut g);
        lcm::ir::simplify_cfg(&mut g);
        lcm::ir::verify(&g).unwrap();
        assert!(
            observationally_equivalent(&f, &g, &inputs, 1_000_000),
            "case {case} (seed {seed:#x})"
        );
    }
}

/// CFG simplification is behaviour-preserving even right after edge
/// splitting (the combination that produces the most forwarders), and
/// idempotent.
#[test]
fn simplify_after_split_roundtrips() {
    let mut rng = seeded(0x11E5_0007);
    for case in 0..64 {
        let seed = rng.next_u64();
        let size = rng.gen_range(2..25usize);
        let f = arb_cfg(seed, &GenOptions::sized(size));
        let mut g = f.clone();
        lcm::ir::graph::split_critical_edges(&mut g);
        lcm::ir::simplify_cfg(&mut g);
        lcm::ir::verify(&g).unwrap();
        assert!(
            observationally_equivalent(&f, &g, &Inputs::new().set("a", 3).set("b", -1), 20_000),
            "case {case} (seed {seed:#x})"
        );
        let frozen = g.to_string();
        let again = lcm::ir::simplify_cfg(&mut g);
        assert_eq!(
            again.merged + again.forwarded + again.removed,
            0,
            "case {case} (seed {seed:#x})"
        );
        assert_eq!(g.to_string(), frozen, "case {case} (seed {seed:#x})");
    }
}

fn random_set(rng: &mut Rng, nbits: usize) -> BitSet {
    let mut s = BitSet::new(nbits);
    for i in 0..nbits {
        if rng.gen_bool(0.5) {
            s.insert(i);
        }
    }
    s
}

/// Bit-set algebra: the lattice laws the dataflow solvers rely on.
#[test]
fn bitset_lattice_laws() {
    let mut rng = seeded(0x11E5_0008);
    for case in 0..256 {
        let sa = random_set(&mut rng, 150);
        let sb = random_set(&mut rng, 150);
        let sc = random_set(&mut rng, 150);

        // Commutativity.
        let mut ab = sa.clone();
        ab.union_with(&sb);
        let mut ba = sb.clone();
        ba.union_with(&sa);
        assert_eq!(ab, ba, "case {case}");

        // Associativity of intersection.
        let mut l = sa.clone();
        l.intersect_with(&sb);
        l.intersect_with(&sc);
        let mut bc = sb.clone();
        bc.intersect_with(&sc);
        let mut r = sa.clone();
        r.intersect_with(&bc);
        assert_eq!(l, r, "case {case}");

        // De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b.
        let mut lhs = ab.clone();
        lhs.complement();
        let mut na = sa.clone();
        na.complement();
        let mut nb = sb.clone();
        nb.complement();
        let mut rhs = na.clone();
        rhs.intersect_with(&nb);
        assert_eq!(lhs, rhs, "case {case}");

        // Difference is intersection with the complement.
        let mut d1 = sa.clone();
        d1.difference_with(&sb);
        let mut d2 = sa.clone();
        d2.intersect_with(&nb);
        assert_eq!(d1, d2, "case {case}");

        // Absorption + inclusion-exclusion.
        let mut u = sa.clone();
        u.union_with(&sb);
        assert!(u.is_superset(&sa) && u.is_superset(&sb), "case {case}");
        let mut i = sa.clone();
        i.intersect_with(&sb);
        assert_eq!(
            u.count() + i.count(),
            sa.count() + sb.count(),
            "case {case}"
        );

        // Iteration round-trips.
        let collected: Vec<usize> = sa.iter().collect();
        assert_eq!(collected.len(), sa.count(), "case {case}");
        for bit in &collected {
            assert!(sa.contains(*bit), "case {case}");
        }
    }
}

/// The parser never panics on arbitrary input, and accepts-with-print
/// round-trips whatever it accepts.
#[test]
fn parser_total_and_roundtrips() {
    let mut rng = seeded(0x11E5_0009);
    // Biased toward IR-ish tokens so some strings get past the header.
    let fragments = [
        "fn f {",
        "}",
        "entry:",
        "b1:",
        "ret",
        "jmp entry",
        "br c, entry, b1",
        "x = a + b",
        "obs x",
        "a",
        "=",
        "+",
        "\n",
        " ",
        ":",
        ",",
        "0",
        "-",
        "{",
        "q9",
    ];
    for case in 0..256 {
        let mut text = String::new();
        // Half the cases: random printable bytes. Half: token soup.
        if case % 2 == 0 {
            for _ in 0..rng.gen_range(0..400usize) {
                let c = rng.gen_range(0..96usize);
                text.push(if c == 95 {
                    '\n'
                } else {
                    (b' ' + c as u8) as char
                });
            }
        } else {
            for _ in 0..rng.gen_range(0..60usize) {
                text.push_str(fragments[rng.gen_range(0..fragments.len())]);
                text.push(if rng.gen_bool(0.7) { '\n' } else { ' ' });
            }
        }
        if let Ok(f) = lcm::ir::parse_function(&text) {
            let printed = f.to_string();
            let again = lcm::ir::parse_function(&printed).unwrap();
            assert_eq!(printed, again.to_string(), "case {case}");
        }
    }
}
