//! Determinism and robustness-pillar tests for the `lcmopt serve` daemon:
//! daemon answers are byte-identical to `lcmopt batch` answers — cold,
//! warm from a persisted cache, and after a quarantine — and the watchdog
//! and admission-control pillars produce their typed responses without
//! costing the connection.

use std::path::PathBuf;

use lcm::driver::protocol::{read_response, write_request, Request, Response};
use lcm::driver::serve::{ConnectionEnd, Daemon, ServeOptions};
use lcm::driver::{report, BatchEngine, BatchOptions, LoadStatus};
use lcm::ir::parse_module;

const MODULE: &str = "fn d {
entry:
  br c, l, r
l:
  x = a + b
  jmp join
r:
  jmp join
join:
  y = a + b
  obs y
  ret
}

fn straight {
entry:
  x = a * b
  y = a * b
  obs y
  ret
}

fn third {
entry:
  z = p + q
  obs z
  ret
}
";

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("lcm-serve-det-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn roundtrip(daemon: &Daemon, input: &[u8]) -> (Vec<Response>, ConnectionEnd) {
    let mut reader = input;
    let mut out: Vec<u8> = Vec::new();
    let end = daemon.handle_connection(&mut reader, &mut out);
    let mut slice = &out[..];
    let mut responses = Vec::new();
    while let Ok(Some(r)) = read_response(&mut slice) {
        responses.push(r);
    }
    (responses, end)
}

fn optimize_request(module: &str, deadline_ms: u32, fuel: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_request(
        &mut buf,
        &Request::Optimize {
            deadline_ms,
            fuel,
            module: module.to_string(),
        },
    )
    .expect("encode request");
    buf
}

/// Reassembles streamed unit frames into the printed module, exactly as
/// `lcmopt request` does: sort by unit index, join with blank lines.
fn assemble(responses: &[Response]) -> String {
    let mut units: Vec<(u32, String)> = responses
        .iter()
        .filter_map(|r| match r {
            Response::UnitOk { index, output } => Some((*index, output.clone())),
            _ => None,
        })
        .collect();
    units.sort_by_key(|(i, _)| *i);
    let mut out = units
        .iter()
        .map(|(_, text)| text.as_str())
        .collect::<Vec<_>>()
        .join("\n\n");
    out.push('\n');
    out
}

/// The batch reference answer for [`MODULE`] under the same options.
fn batch_answer() -> String {
    let m = parse_module(MODULE).expect("module parses");
    let mut engine = BatchEngine::new(BatchOptions::default());
    report::render_text(&engine.run_module(&m))
}

#[test]
fn daemon_answers_match_batch_at_any_worker_count() {
    let want = batch_answer();
    for workers in [1, 4] {
        let d = Daemon::start(ServeOptions {
            workers,
            ..ServeOptions::default()
        });
        let (responses, _) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
        assert_eq!(
            responses.last(),
            Some(&Response::Done { ok: 3, failed: 0 }),
            "workers={workers}: {responses:?}"
        );
        assert_eq!(assemble(&responses), want, "workers={workers}");
        // Same connection, second request: the cache now answers, and the
        // bytes must not change.
        let (responses, _) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
        assert_eq!(assemble(&responses), want, "workers={workers} (cached)");
        assert_eq!(d.panics_contained(), 0);
        d.shutdown().unwrap();
    }
}

#[test]
fn warm_persisted_cache_preserves_answers_across_restart() {
    let dir = TempDir::new("warm");
    let cache_file = dir.0.join("plans.cache");
    let want = batch_answer();

    // First daemon lifetime: cold cache, compute, drain (flushes).
    let d = Daemon::start(ServeOptions {
        workers: 2,
        cache_file: Some(cache_file.clone()),
        ..ServeOptions::default()
    });
    assert!(matches!(d.load_status(), Some(LoadStatus::Fresh)));
    let (responses, _) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
    assert_eq!(assemble(&responses), want);
    d.shutdown().unwrap();
    assert!(cache_file.exists(), "drain must leave the cache file");

    // Second lifetime: the persisted entries are revalidated and served,
    // and the answer is still byte-identical to the batch answer.
    let d = Daemon::start(ServeOptions {
        workers: 2,
        cache_file: Some(cache_file.clone()),
        ..ServeOptions::default()
    });
    assert!(
        matches!(d.load_status(), Some(LoadStatus::Loaded { entries: 3 })),
        "{:?}",
        d.load_status()
    );
    let (responses, _) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
    assert_eq!(assemble(&responses), want);

    // The stats surface carries the lifetime totals: the first lifetime's
    // misses survived the restart, this lifetime added hits.
    let mut stats_req = Vec::new();
    write_request(&mut stats_req, &Request::Stats).unwrap();
    let (responses, _) = roundtrip(&d, &stats_req);
    let Some(Response::Stats { text }) = responses.first() else {
        panic!("{responses:?}");
    };
    let lifetime = text
        .lines()
        .find(|l| l.starts_with("lifetime: "))
        .unwrap_or_else(|| panic!("no lifetime line in:\n{text}"));
    assert!(lifetime.contains("3 hits"), "{lifetime}");
    assert!(lifetime.contains("3 misses"), "{lifetime}");
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn corrupt_cache_file_is_quarantined_and_answers_are_unchanged() {
    let dir = TempDir::new("quarantine");
    let cache_file = dir.0.join("plans.cache");
    std::fs::write(&cache_file, b"definitely not an lcm-cache-v1 file").unwrap();
    let d = Daemon::start(ServeOptions {
        workers: 2,
        cache_file: Some(cache_file.clone()),
        ..ServeOptions::default()
    });
    assert!(
        matches!(d.load_status(), Some(LoadStatus::Quarantined { .. })),
        "{:?}",
        d.load_status()
    );
    let (responses, _) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
    assert_eq!(assemble(&responses), batch_answer());
    d.shutdown().unwrap();
    // The recomputed cache replaced the quarantined file.
    assert!(cache_file.exists());
}

#[test]
fn fuel_watchdog_cancels_units_but_the_connection_lives() {
    let d = Daemon::start(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    // fuel=1: every unit's solve exceeds one node visit, so each is
    // cancelled deterministically with the distinct `cancelled` code.
    let (responses, end) = roundtrip(&d, &optimize_request(MODULE, 0, 1));
    assert_eq!(end, ConnectionEnd::Closed);
    assert_eq!(responses.last(), Some(&Response::Done { ok: 0, failed: 3 }));
    for r in &responses[..responses.len() - 1] {
        match r {
            Response::UnitErr { code, message, .. } => {
                assert_eq!(*code, 6, "want the cancelled code: {r:?}");
                assert!(message.contains("fuel exhausted"), "{message}");
            }
            other => panic!("expected only cancelled units, got {other:?}"),
        }
    }
    // The watchdog must not have cost the daemon anything: the same
    // module with an unlimited budget now succeeds.
    let (responses, _) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
    assert_eq!(assemble(&responses), batch_answer());
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn cancelled_units_never_poison_the_cache() {
    // A fuel-cancelled unit must not leave a half-baked plan behind: the
    // follow-up unlimited request recomputes and the answer matches batch.
    let d = Daemon::start(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let (_, _) = roundtrip(&d, &optimize_request(MODULE, 0, 1));
    let (responses, _) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
    assert_eq!(responses.last(), Some(&Response::Done { ok: 3, failed: 0 }));
    assert_eq!(assemble(&responses), batch_answer());
    d.shutdown().unwrap();
}

#[test]
fn overload_is_shed_whole_and_recovers() {
    let d = Daemon::start(ServeOptions {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 25,
        ..ServeOptions::default()
    });
    // Three units against a one-unit bound: shed all-or-nothing, with the
    // configured retry hint.
    let (responses, end) = roundtrip(&d, &optimize_request(MODULE, 0, 0));
    assert_eq!(end, ConnectionEnd::Closed);
    assert_eq!(responses, vec![Response::Overloaded { retry_after_ms: 25 }]);
    // A request that fits is admitted on the next connection.
    let one = "fn tiny {\nentry:\n  x = a + b\n  obs x\n  ret\n}\n";
    let (responses, _) = roundtrip(&d, &optimize_request(one, 0, 0));
    assert_eq!(responses.last(), Some(&Response::Done { ok: 1, failed: 0 }));
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}
