//! The differential harness pinning profile-guided speculative PRE.
//!
//! Three guarantees over a 300-function seeded weighted corpus:
//!
//! 1. every speculative placement passes the **full** validation tier
//!    (observational equivalence plus the relaxed speculative safety rule);
//! 2. on a profile *measured* from an actual interpreter run, the
//!    speculative output never evaluates more candidate expressions than
//!    LCM's on that same run — the min-cut objective is the dynamic
//!    evaluation count, so this is the cost model meeting reality;
//! 3. with a degenerate all-zero profile no speculation is profitable and
//!    the output is bit-identical to plain LCM (the oracle that `spec`
//!    degrades to `lcm`, never past it).
//!
//! A fourth test pins batch determinism: a weighted module optimized under
//! `--placement spec` renders byte-identically at every thread count.

use lcm::cfggen::{corpus, synthetic_profile, GenOptions};
use lcm::core::validate::{sample_inputs, validate_optimized};
use lcm::core::{optimize, optimize_speculative, EdgeWeights, PreAlgorithm, ValidationLevel};
use lcm::driver::{report, BatchEngine, BatchOptions, BatchUnit};
use lcm::interp::run;
use lcm::ir::{Module, Profile};

const CORPUS_SEED: u64 = 0x5EC_0001;
const CORPUS_SIZE: usize = 300;
const VALIDATION_SEED: u64 = 0x1c3a_57ed;
const FUEL: u64 = 200_000;

#[test]
fn speculative_placements_validate_at_the_full_tier() {
    let fns = corpus(CORPUS_SEED, CORPUS_SIZE, &GenOptions::default());
    let (mut candidates, mut speculated) = (0usize, 0usize);
    for (i, f) in fns.iter().enumerate() {
        let profile = synthetic_profile(f, CORPUS_SEED ^ i as u64);
        let w = EdgeWeights::from_profile(f, &profile)
            .expect("synthetic profiles are flow-conserving by construction");
        let opt = optimize_speculative(f, &w).expect("speculative pipeline");
        let stats = opt.spec.expect("speculative runs record SpecStats");
        candidates += stats.candidates;
        speculated += stats.speculated;
        validate_optimized(f, &opt, ValidationLevel::Full, VALIDATION_SEED)
            .unwrap_or_else(|e| panic!("function #{i} failed full validation: {e}"));
    }
    // The corpus must actually exercise speculation, not vacuously pass.
    assert!(candidates > 0, "no speculation candidates in the corpus");
    assert!(speculated > 0, "no function speculated in the corpus");
}

#[test]
fn measured_profiles_never_increase_dynamic_evaluations() {
    let fns = corpus(CORPUS_SEED, CORPUS_SIZE, &GenOptions::default());
    let mut state = CORPUS_SEED;
    let mut measured = 0usize;
    let mut strict_wins = 0usize;
    for (i, f) in fns.iter().enumerate() {
        let inputs = sample_inputs(f, &mut state);
        let base = run(f, &inputs, FUEL);
        if !base.completed() {
            continue;
        }
        // A completed run's edge counts conserve flow, so they feed back
        // as an exact profile of this very input.
        let profile = Profile::from_weights(f, &base.edge_visits);
        let w = EdgeWeights::from_profile(f, &profile)
            .unwrap_or_else(|e| panic!("measured profile of #{i} must resolve: {e}"));
        let spec = optimize_speculative(f, &w).expect("speculative pipeline");
        let lcm = optimize(f, PreAlgorithm::LazyEdge).expect("lcm pipeline");
        let spec_run = run(&spec.function, &inputs, FUEL);
        let lcm_run = run(&lcm.function, &inputs, FUEL);
        assert!(spec_run.completed() && lcm_run.completed(), "function #{i}");
        assert_eq!(
            base.trace, spec_run.trace,
            "function #{i} changed behaviour"
        );
        assert_eq!(base.trace, lcm_run.trace, "function #{i} changed behaviour");
        // The min-cut objective *is* the dynamic evaluation count on the
        // profiled input, and keeping LCM's placement is always a feasible
        // cut — so speculation can only tie or win here.
        assert!(
            spec_run.total_evals() <= lcm_run.total_evals(),
            "function #{i}: spec evaluated {} > lcm {}",
            spec_run.total_evals(),
            lcm_run.total_evals()
        );
        if spec_run.total_evals() < lcm_run.total_evals() {
            strict_wins += 1;
        }
        measured += 1;
    }
    // Fuel exhaustion may skip a few corpus functions; the suite is only
    // meaningful if the overwhelming majority participates and some of
    // them genuinely improve.
    assert!(measured >= 250, "only {measured} of {CORPUS_SIZE} measured");
    assert!(
        strict_wins > 0,
        "no function improved under its own profile"
    );
}

#[test]
fn a_degenerate_profile_reproduces_lcm_bit_for_bit() {
    let fns = corpus(CORPUS_SEED, CORPUS_SIZE, &GenOptions::default());
    for (i, f) in fns.iter().enumerate() {
        let zero = Profile::from_weights(f, &vec![0; lcm::ir::EdgeList::new(f).len()]);
        let w = EdgeWeights::from_profile(f, &zero).expect("all-zero weights conserve flow");
        let spec = optimize_speculative(f, &w).expect("speculative pipeline");
        let lcm = optimize(f, PreAlgorithm::LazyEdge).expect("lcm pipeline");
        assert_eq!(
            spec.function.to_string(),
            lcm.function.to_string(),
            "function #{i}: zero profile must not change the placement"
        );
        assert_eq!(spec.spec.expect("stats").speculated, 0);
    }
}

/// A weighted module: every function carries a synthetic profile.
fn weighted_module(count: usize) -> Module {
    let mut m = Module::default();
    for (i, mut f) in corpus(CORPUS_SEED, count, &GenOptions::default())
        .into_iter()
        .enumerate()
    {
        f.name = format!("w{i}");
        let p = synthetic_profile(&f, CORPUS_SEED ^ i as u64);
        let p = Profile {
            function: f.name.clone(),
            entries: p.entries,
        };
        m.push(f).expect("unique names");
        m.push_profile(p).expect("one profile per function");
    }
    m
}

#[test]
fn weighted_batches_are_deterministic_across_thread_counts() {
    let m = weighted_module(48);
    let run_at = |jobs: usize| {
        let mut engine = BatchEngine::new(BatchOptions {
            jobs,
            placement: PreAlgorithm::Speculative,
            ..BatchOptions::default()
        });
        let result = engine.run_module(&m);
        (
            report::render_text(&result),
            report::render_stats(&result),
            result.totals,
        )
    };
    let (text1, stats1, totals1) = run_at(1);
    let (text4, stats4, totals4) = run_at(4);
    assert_eq!(text1, text4, "text report differs across --jobs");
    assert_eq!(stats1, stats4, "stats report differs across --jobs");
    assert_eq!(totals1, totals4);
    assert_eq!(totals1.failed, 0);
    assert!(totals1.spec.speculated > 0, "batch never speculated");
}

#[test]
fn profiles_split_cache_entries_and_their_absence_does_not() {
    let f = corpus(CORPUS_SEED, 1, &GenOptions::default()).remove(0);
    let profiled = BatchUnit {
        file: None,
        profile: Some(synthetic_profile(&f, 7)),
        function: f.clone(),
    };
    let bare = BatchUnit {
        file: None,
        profile: None,
        function: f.clone(),
    };
    let mut engine = BatchEngine::new(BatchOptions {
        placement: PreAlgorithm::Speculative,
        ..BatchOptions::default()
    });
    // Same body, one with weights and one without: two distinct cache
    // entries (different placements), so both compute.
    let first = engine.run(vec![profiled.clone(), bare.clone()]);
    assert_eq!(first.totals.computed, 2, "contexts must not collide");
    // Replaying the same units hits both entries.
    let second = engine.run(vec![profiled, bare]);
    assert_eq!(second.totals.computed, 0);
    assert_eq!(second.totals.ok, 2);
}
