//! End-to-end tests of the `lcmopt batch` subcommand: determinism across
//! thread counts, the file / directory / stdin input paths, and the batch
//! exit-code contract.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

const MODULE: &str = "fn first {
entry:
  br c, l, r
l:
  x = a + b
  jmp join
r:
  jmp join
join:
  y = a + b
  obs y
  ret
}

fn second {
entry:
  z = a * b
  obs z
  ret
}

fn third {
entry:
  x = a + b
  obs x
  ret
}
";

/// Runs `lcmopt batch` and returns `(exit_code, stdout, stderr)`.
fn batch(args: &[&str], stdin: &str) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lcmopt"))
        .arg("batch")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lcmopt batch");
    let write_result = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    if let Err(e) = write_result {
        assert_eq!(
            e.kind(),
            std::io::ErrorKind::BrokenPipe,
            "unexpected stdin failure: {e}"
        );
    }
    let out = child.wait_with_output().expect("wait for lcmopt");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A scratch directory unique to this test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("lcmopt_batch_{}_{test}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn file(&self, name: &str, contents: &str) -> String {
        let path = self.0.join(name);
        std::fs::write(&path, contents).expect("write scratch file");
        path.display().to_string()
    }

    fn path(&self) -> String {
        self.0.display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn stdout_is_byte_identical_across_thread_counts() {
    let scratch = Scratch::new("determinism");
    let path = scratch.file("m.lcm", MODULE);
    for emit in ["text", "stats", "json"] {
        let mut baseline: Option<String> = None;
        for jobs in ["1", "4", "8"] {
            let (code, stdout, stderr) = batch(&[&path, "--jobs", jobs, "--emit", emit], "");
            assert_eq!(code, 0, "emit={emit} jobs={jobs}: {stderr}");
            match &baseline {
                None => baseline = Some(stdout),
                Some(b) => assert_eq!(b, &stdout, "emit={emit} differs at jobs={jobs}"),
            }
        }
    }
}

#[test]
fn cache_does_not_change_the_text() {
    let scratch = Scratch::new("cache_text");
    let path = scratch.file("m.lcm", MODULE);
    let (code_on, on, _) = batch(&[&path, "--cache", "on"], "");
    let (code_off, off, _) = batch(&[&path, "--cache", "off"], "");
    assert_eq!((code_on, code_off), (0, 0));
    assert_eq!(on, off);
    // Every function keeps its own name in the output.
    for name in ["first", "second", "third"] {
        assert!(on.contains(&format!("fn {name} {{")), "{on}");
    }
}

#[test]
fn stdin_module_is_accepted() {
    let (code, stdout, stderr) = batch(&["-"], MODULE);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("fn first {"));
    assert!(stdout.contains("fn third {"));
    // The join of `first` no longer recomputes `a + b`.
    let first = stdout.split("fn second").next().unwrap();
    let join = first.split("join:").nth(1).expect("join printed");
    assert!(!join.contains("a + b"), "{stdout}");
}

#[test]
fn directory_input_loads_every_lcm_file() {
    let scratch = Scratch::new("directory");
    scratch.file(
        "a.lcm",
        "fn from_a {\nentry:\n  x = a + b\n  obs x\n  ret\n}\n",
    );
    scratch.file(
        "b.lcm",
        "fn from_b {\nentry:\n  y = a * b\n  obs y\n  ret\n}\n",
    );
    scratch.file("ignored.txt", "not a module");
    let (code, stdout, stderr) = batch(&[&scratch.path(), "--emit", "stats"], "");
    assert_eq!(code, 0, "{stderr}");
    assert!(
        stdout.contains("batch: 2 functions (2 ok, 0 failed)"),
        "{stdout}"
    );
}

#[test]
fn parse_error_exits_3_with_position() {
    let scratch = Scratch::new("parse_error");
    let path = scratch.file("bad.lcm", "fn x {\nentry:\n  x = a +\n  ret\n}\n");
    let (code, stdout, stderr) = batch(&[&path], "");
    assert_eq!(code, 3, "{stderr}");
    assert!(stdout.is_empty());
    assert!(stderr.contains("bad.lcm:3:10"), "{stderr}");
}

#[test]
fn a_failing_function_reports_and_exits_5_after_printing() {
    // `island` is unreachable: parses, fails verification — its unit
    // fails with exit 5 while the healthy neighbours are still printed.
    let module = format!("{MODULE}\nfn bad {{\nentry:\n  ret\nisland:\n  jmp island\n}}\n");
    let (code, stdout, stderr) = batch(&["-"], &module);
    assert_eq!(code, 5, "{stderr}");
    assert!(
        stdout.contains("# fn bad: FAILED (invalid-input)"),
        "{stdout}"
    );
    assert!(stdout.contains("fn first {"), "{stdout}");
    assert!(stderr.contains("1 of 4 functions failed"), "{stderr}");
}

#[test]
fn emit_dot_renders_one_digraph_per_function() {
    let (code, stdout, stderr) = batch(&["-", "--emit", "dot"], MODULE);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(stdout.matches("digraph ").count(), 3, "{stdout}");
}

#[test]
fn unknown_flag_exits_2() {
    let (code, _, stderr) = batch(&["--no-such-flag"], "");
    assert_eq!(code, 2, "{stderr}");
}

#[test]
fn missing_path_exits_2() {
    let scratch = Scratch::new("missing");
    let path = scratch.0.join("absent.lcm").display().to_string();
    let (code, _, stderr) = batch(&[&path], "");
    assert_eq!(code, 2, "{stderr}");
}

/// Like [`batch`] but with raw bytes on stdin, for inputs that are not
/// valid UTF-8.
fn batch_bytes(args: &[&str], stdin: &[u8]) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lcmopt"))
        .arg("batch")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lcmopt batch");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin)
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait for lcmopt");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn invalid_utf8_on_stdin_exits_3_with_span() {
    // A stray 0xFF two clean lines in: the diagnostic must carry the
    // spanned `<stdin>:line:col` shape and the parse exit code — the same
    // contract as a file input — not an unlabeled usage error.
    let (code, stdout, stderr) = batch_bytes(&["-"], b"fn a {\nentry:\n  \xff ret\n}\n");
    assert_eq!(code, 3, "{stderr}");
    assert!(stdout.is_empty());
    assert!(stderr.contains("<stdin>:3:3"), "{stderr}");
    assert!(stderr.contains("not valid UTF-8"), "{stderr}");
}

#[test]
fn invalid_utf8_file_exits_3_with_span() {
    let scratch = Scratch::new("utf8_file");
    let path = scratch.0.join("binary.lcm");
    std::fs::write(&path, b"fn a {\nentry:\n  \xff ret\n}\n").expect("write binary file");
    let (code, stdout, stderr) = batch(&[&path.display().to_string()], "");
    assert_eq!(code, 3, "{stderr}");
    assert!(stdout.is_empty());
    assert!(stderr.contains("binary.lcm:3:3"), "{stderr}");
    assert!(stderr.contains("not valid UTF-8"), "{stderr}");
}

#[test]
fn cache_file_persists_and_stats_show_lifetime_totals() {
    let scratch = Scratch::new("cache_file");
    let module = scratch.file("m.lcm", MODULE);
    let cache = scratch.0.join("plans.cache").display().to_string();

    // Cold run: all units computed, cache file written.
    let (code, cold, stderr) = batch(&[&module, "--cache-file", &cache], "");
    assert_eq!(code, 0, "{stderr}");

    // Warm restart: same bytes on stdout, and `--emit stats` carries the
    // lifetime line with the *accumulated* counters — the first run's
    // misses survive the restart in the cache footer.
    let (code, warm, stderr) = batch(&[&module, "--cache-file", &cache], "");
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(cold, warm, "warm cache changed the answer");

    let (code, stats, stderr) = batch(&[&module, "--cache-file", &cache, "--emit", "stats"], "");
    assert_eq!(code, 0, "{stderr}");
    let lifetime = stats
        .lines()
        .find(|l| l.starts_with("lifetime: "))
        .unwrap_or_else(|| panic!("no lifetime line in:\n{stats}"));
    // Three runs over 3 functions: 3 misses from the cold run, then hits.
    assert!(lifetime.contains("6 hits"), "{lifetime}");
    assert!(lifetime.contains("3 misses"), "{lifetime}");
    assert!(lifetime.contains("0 quarantines"), "{lifetime}");

    // Without --cache-file there is no lifetime line.
    let (_, stats, _) = batch(&[&module, "--emit", "stats"], "");
    assert!(!stats.contains("lifetime:"), "{stats}");
}
