//! Invariants of the solver cost counters ([`SolveStats`]): the worklist
//! solver never visits more nodes than the round-robin solver, the fused
//! pipeline's counters are non-trivial, and the report's total row is the
//! exact sum of the per-analysis rows.

use lcm::cfggen::{arbitrary, corpus, GenOptions};
use lcm::core::{
    anticipability_problem, availability_problem, later_problem, lcm, report, ExprUniverse,
    GlobalAnalyses, LocalPredicates,
};
use lcm::ir::Function;

fn test_corpus() -> Vec<Function> {
    let mut fns = corpus(0x57A7, 40, &GenOptions::default());
    fns.extend(corpus(0x57A8, 5, &GenOptions::sized(250)));
    fns.extend((0..15).map(|s| arbitrary(s, &GenOptions::sized(20))));
    fns
}

#[test]
fn worklist_never_visits_more_nodes_than_round_robin() {
    for f in test_corpus() {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        for (name, p) in [
            ("availability", availability_problem(&f, &uni, &local)),
            ("anticipability", anticipability_problem(&f, &uni, &local)),
            ("later", later_problem(&f, &uni, &local, &ga)),
        ] {
            let rr = p.solve();
            let wl = p.solve_worklist();
            assert!(
                wl.stats.node_visits <= rr.stats.node_visits,
                "{name} on {}: worklist {} visits > round-robin {}",
                f.name,
                wl.stats.node_visits,
                rr.stats.node_visits
            );
            // Round-robin always needs a final no-change sweep; the
            // worklist strategy reports pops instead of sweeps.
            assert!(rr.stats.iterations >= 1, "{name} on {}", f.name);
            assert_eq!(wl.stats.iterations, 0, "{name} on {}", f.name);
            // Both visit at least every reachable block once.
            assert!(
                wl.stats.node_visits >= f.num_blocks(),
                "{name} on {}",
                f.name
            );
        }
    }
}

#[test]
fn pipeline_totals_are_the_sum_of_the_analyses() {
    for f in test_corpus().into_iter().take(20) {
        let p = lcm(&f).unwrap();
        let total = p.stats.total();
        assert_eq!(
            total.node_visits,
            p.stats.avail.node_visits + p.stats.antic.node_visits + p.stats.later.node_visits,
            "{}",
            f.name
        );
        assert_eq!(
            total.word_ops,
            p.stats.avail.word_ops + p.stats.antic.word_ops + p.stats.later.word_ops,
            "{}",
            f.name
        );
        assert_eq!(
            total.iterations,
            p.stats.avail.iterations + p.stats.antic.iterations + p.stats.later.iterations,
            "{}",
            f.name
        );
        assert_eq!(
            total.node_revisits,
            p.stats.avail.node_revisits + p.stats.antic.node_revisits + p.stats.later.node_revisits,
            "{}",
            f.name
        );
        assert_eq!(
            total.allocations,
            p.stats.avail.allocations + p.stats.antic.allocations + p.stats.later.allocations,
            "{}",
            f.name
        );
        // The rendered table carries the same totals.
        let table = report::stats_table(&p.stats);
        let total_row = table
            .lines()
            .find(|l| l.starts_with("total"))
            .unwrap_or_else(|| panic!("no total row in:\n{table}"));
        let cells: Vec<&str> = total_row.split('|').map(str::trim).collect();
        assert_eq!(cells[1], total.iterations.to_string(), "{table}");
        assert_eq!(cells[2], total.node_visits.to_string(), "{table}");
        assert_eq!(cells[3], total.node_revisits.to_string(), "{table}");
        assert_eq!(cells[4], total.word_ops.to_string(), "{table}");
        assert_eq!(cells[5], total.allocations.to_string(), "{table}");
    }
}

#[test]
fn fused_pipeline_is_cheaper_than_the_seed_path_in_aggregate() {
    // Per-function the worklist can tie the round-robin cost on tiny
    // graphs, but over a corpus the change-driven strategy must win on
    // both counters.
    let mut rr_visits = 0usize;
    let mut fused_visits = 0usize;
    let mut rr_words = 0u64;
    let mut fused_words = 0u64;
    for f in test_corpus() {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let lazy = lcm::core::lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        rr_visits += ga.stats.node_visits + lazy.stats.node_visits;
        rr_words += ga.stats.word_ops + lazy.stats.word_ops;
        let p = lcm(&f).unwrap();
        fused_visits += p.stats.total().node_visits;
        fused_words += p.stats.total().word_ops;
    }
    assert!(
        fused_visits < rr_visits,
        "fused {fused_visits} visits vs round-robin {rr_visits}"
    );
    assert!(
        fused_words < rr_words,
        "fused {fused_words} word ops vs round-robin {rr_words}"
    );
}
