//! Memory-aware PRE: the golden hoist/no-hoist pair, alias conservatism
//! over seeded corpora, and full-tier differential validation of the
//! memory-op corpus under every placement algorithm.

use lcm::cfggen::{corpus, GenOptions};
use lcm::core::{
    check_memory_kills, optimize_checked, optimize_pipeline, ExprUniverse, LocalPredicates,
    PreAlgorithm, ValidationLevel,
};
use lcm::ir::{parse_function, Expr, Instr};

const MEMORY_LOOP: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/testdata/memory_loop.lcm"
));
const MEMORY_ALIAS: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/testdata/memory_alias.lcm"
));

/// Block text of `name` in the printed function (up to the next label).
fn block_text(printed: &str, name: &str) -> String {
    let after = printed
        .split(&format!("{name}:"))
        .nth(1)
        .unwrap_or_else(|| panic!("block `{name}` not printed:\n{printed}"));
    // A following label line ends the block; fall back to end-of-function.
    let end = after
        .lines()
        .scan(0usize, |pos, l| {
            let here = *pos;
            *pos += l.len() + 1;
            Some((here, l))
        })
        .find(|(_, l)| l.ends_with(':') && !l.starts_with(' '))
        .map(|(pos, _)| pos)
        .unwrap_or(after.len());
    after[..end].to_string()
}

/// The golden positive: a loop-invariant `load p` in a loop with no
/// intervening store is hoisted to the preheader.
#[test]
fn golden_loop_invariant_load_is_hoisted() {
    let f = parse_function(MEMORY_LOOP).unwrap();
    let g = optimize_pipeline(&f, PreAlgorithm::LazyEdge).unwrap();
    let printed = g.to_string();
    assert!(
        block_text(&printed, "entry").contains("load p"),
        "load not hoisted to entry:\n{printed}"
    );
    assert!(
        !block_text(&printed, "head").contains("load p"),
        "load still recomputed in the loop:\n{printed}"
    );
}

/// The golden negative: the same loop with a may-alias `store q` in the
/// body must NOT hoist the load — the store kills every `Mem` expression
/// under the base-insensitive model, so the pipeline is an exact no-op.
#[test]
fn golden_may_alias_store_blocks_the_hoist() {
    let f = parse_function(MEMORY_ALIAS).unwrap();
    let g = optimize_pipeline(&f, PreAlgorithm::LazyEdge).unwrap();
    assert_eq!(
        g.to_string(),
        f.to_string(),
        "may-alias store should make the pipeline a no-op"
    );
    let printed = g.to_string();
    assert!(
        block_text(&printed, "head").contains("load p"),
        "load must stay in the loop:\n{printed}"
    );
    assert!(
        !block_text(&printed, "entry").contains("load"),
        "no load may appear before the loop:\n{printed}"
    );
}

/// Alias conservatism as a structural property over the seeded memory
/// corpus: in every optimized function, a block that writes memory is
/// never recorded transparent for a load — checked by the validator's
/// independent re-derivation, and cross-checked against the honest local
/// predicates directly.
#[test]
fn corpus_predicates_never_drop_a_memory_kill() {
    let opts = GenOptions::with_memory(0.2);
    for f in corpus(0x4D454D, 60, &opts) {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        check_memory_kills(&f, &uni, &local)
            .unwrap_or_else(|e| panic!("memory kill dropped in {}: {e}", f.name));
    }
}

/// No load is ever materially hoisted across a may-alias store: after
/// optimization, every `Mem` computation (original or inserted temp
/// definition) sits in a block where no *earlier* instruction of that
/// block writes memory only if the predicates said so — enforced by
/// running the full validator, which re-derives TRANSP with the kill rule
/// and checks the plan against it, then differentially executes original
/// vs optimized on the flat heap.
#[test]
fn memory_corpus_validates_full_tier_under_all_placements() {
    let opts = GenOptions::with_memory(0.15);
    let fns = corpus(0x4D454D02, 300, &opts);
    assert!(fns.len() >= 300, "corpus shrank: {}", fns.len());
    let mut loads = 0usize;
    let mut writers = 0usize;
    for f in &fns {
        loads += f
            .block_ids()
            .flat_map(|b| f.block(b).instrs.iter())
            .filter(|i| {
                matches!(i, Instr::Assign { rv, .. }
                    if matches!(rv.as_expr(), Some(Expr::Mem(_))))
            })
            .count();
        writers += f
            .block_ids()
            .flat_map(|b| f.block(b).instrs.iter())
            .filter(|i| i.kills_memory())
            .count();
        for alg in [
            PreAlgorithm::Busy,
            PreAlgorithm::LazyEdge,
            PreAlgorithm::Speculative,
        ] {
            optimize_checked(f, alg, ValidationLevel::Full, 0x1c3a_57ed).unwrap_or_else(|e| {
                panic!(
                    "{} failed full-tier validation on {}: {e}",
                    alg.name(),
                    f.name
                )
            });
        }
    }
    // The corpus must actually exercise the memory model, not vacuously
    // pass on arithmetic-only functions.
    assert!(loads > 100, "corpus too load-poor: {loads}");
    assert!(writers > 100, "corpus too store-poor: {writers}");
}

/// The golden pair also survives every algorithm under full validation —
/// the differential interpreter agrees on the heap-observing programs.
#[test]
fn golden_pair_validates_under_every_algorithm() {
    for text in [MEMORY_LOOP, MEMORY_ALIAS] {
        let f = parse_function(text).unwrap();
        for alg in PreAlgorithm::ALL {
            optimize_checked(&f, alg, ValidationLevel::Full, 0x1c3a_57ed).unwrap_or_else(|e| {
                panic!("{} failed full validation on {}: {e}", alg.name(), f.name)
            });
        }
    }
}
