//! Strategy-equivalence property suite: the round-robin, plain-worklist
//! and SCC-priority solvers reach **bit-identical** `Solution`s for every
//! analysis — and therefore identical insert/delete placements — across a
//! seeded corpus of 500+ random control-flow graphs: structured reducible
//! programs (loopy and loop-free), free-form possibly-irreducible CFGs,
//! and DAGs.
//!
//! The LCM dataflow framework is monotone over a finite lattice, so each
//! problem has one fixpoint; scheduling is a pure cost decision. This suite
//! is the empirical pin for that theorem across solver strategies, the way
//! `tests/solver_equivalence.rs` pins the fused pipeline against the seed
//! path.

use lcm::cfggen::{arbitrary, corpus, random_dag, GenOptions};
use lcm::core::{
    anticipability_problem, availability_problem, later_problem, lcm_with, ExprUniverse,
    GlobalAnalyses, LocalPredicates,
};
use lcm::dataflow::{CfgView, SolveStrategy, SolverScratch};
use lcm::ir::Function;

/// 500+ functions: reducible structured programs (small and mid-sized,
/// which the generator gives plenty of loops), irreducible-capable
/// arbitrary CFGs, and acyclic DAGs.
fn big_corpus() -> Vec<Function> {
    let mut fns = corpus(0x5717_A7E6, 260, &GenOptions::default());
    fns.extend(corpus(0x5717_A7E7, 40, &GenOptions::sized(80)));
    fns.extend((0..120).map(|s| arbitrary(s ^ 0xABCD, &GenOptions::sized(16))));
    fns.extend((0..80).map(|s| random_dag(s ^ 0xD146, &GenOptions::sized(12))));
    assert!(fns.len() >= 500, "corpus shrank to {}", fns.len());
    fns
}

#[test]
fn all_three_strategies_produce_bit_identical_solutions() {
    let mut scratch = SolverScratch::new();
    for f in big_corpus() {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let view = CfgView::new(&f);
        for (name, p) in [
            ("availability", availability_problem(&f, &uni, &local)),
            ("anticipability", anticipability_problem(&f, &uni, &local)),
            ("later", later_problem(&f, &uni, &local, &ga)),
        ] {
            let baseline = p.solve_with(SolveStrategy::RoundRobin, &view, &mut scratch);
            for strategy in [SolveStrategy::Worklist, SolveStrategy::SccPriority] {
                let other = p.solve_with(strategy, &view, &mut scratch);
                assert_eq!(
                    baseline.ins,
                    other.ins,
                    "{name} ins: {} vs rr on {}",
                    strategy.name(),
                    f.name
                );
                assert_eq!(
                    baseline.outs,
                    other.outs,
                    "{name} outs: {} vs rr on {}",
                    strategy.name(),
                    f.name
                );
            }
        }
    }
}

#[test]
fn all_three_strategies_produce_identical_placements() {
    let mut scratch = SolverScratch::new();
    for f in big_corpus().into_iter().step_by(3) {
        let baseline = lcm_with(&f, SolveStrategy::RoundRobin, &mut scratch).unwrap();
        for strategy in [SolveStrategy::Worklist, SolveStrategy::SccPriority] {
            let other = lcm_with(&f, strategy, &mut scratch).unwrap();
            assert_eq!(
                baseline.lazy.laterin,
                other.lazy.laterin,
                "laterin: {} on {}",
                strategy.name(),
                f.name
            );
            assert_eq!(
                baseline.lazy.plan.edge_inserts,
                other.lazy.plan.edge_inserts,
                "edge inserts: {} on {}",
                strategy.name(),
                f.name
            );
            assert_eq!(
                baseline.lazy.plan.entry_insert,
                other.lazy.plan.entry_insert,
                "entry insert: {} on {}",
                strategy.name(),
                f.name
            );
            assert_eq!(
                baseline.lazy.delete,
                other.lazy.delete,
                "delete: {} on {}",
                strategy.name(),
                f.name
            );
        }
    }
}

#[test]
fn scc_priority_beats_plain_worklist_revisits_on_the_loopy_corpus() {
    // Loop-free graphs tie (both strategies visit each block ~once); on the
    // loopy part of the corpus the SCC drain must reduce scheduling waste
    // in aggregate, and never lose.
    let mut scratch = SolverScratch::new();
    let mut wl_revisits = 0usize;
    let mut scc_revisits = 0usize;
    for f in big_corpus() {
        let view = CfgView::new(&f);
        if view.retreating_edges() == 0 {
            continue;
        }
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let p = availability_problem(&f, &uni, &local);
        wl_revisits += p
            .solve_with(SolveStrategy::Worklist, &view, &mut scratch)
            .stats
            .node_revisits;
        scc_revisits += p
            .solve_with(SolveStrategy::SccPriority, &view, &mut scratch)
            .stats
            .node_revisits;
    }
    assert!(
        scc_revisits < wl_revisits,
        "SCC-priority revisits {scc_revisits} not below worklist {wl_revisits}"
    );
}
