//! Deliberate corner cases, each end-to-end through the optimizers.

use lcm::core::{optimize, optimize_pipeline, PreAlgorithm};
use lcm::interp::{observationally_equivalent, run, Inputs};
use lcm::ir::parse_function;

fn preserved_by_all(text: &str, inputs: &[Inputs]) {
    let f = parse_function(text).unwrap();
    for alg in PreAlgorithm::ALL {
        let o = optimize(&f, alg).unwrap();
        lcm::ir::verify(&o.function).unwrap();
        for i in inputs {
            assert!(
                observationally_equivalent(&f, &o.function, i, 1_000_000),
                "{} broke {} on {:?}",
                alg.name(),
                f.name,
                i
            );
        }
        let p = optimize_pipeline(&f, alg).unwrap();
        for i in inputs {
            assert!(observationally_equivalent(&f, &p, i, 1_000_000));
        }
    }
}

#[test]
fn no_candidates_at_all() {
    // Copies, constants and observations only: every algorithm is a no-op
    // up to representation.
    let text = "fn nocand {
        entry:
          x = 5
          y = x
          obs y
          ret
        }";
    preserved_by_all(text, &[Inputs::new()]);
    let f = parse_function(text).unwrap();
    for alg in PreAlgorithm::ALL {
        let o = optimize(&f, alg).unwrap();
        assert_eq!(o.transform.stats.insertions, 0, "{}", alg.name());
        assert_eq!(o.transform.stats.temps, 0, "{}", alg.name());
    }
}

#[test]
fn minimal_two_block_function() {
    preserved_by_all(
        "fn tiny {
         entry:
           ret
         }",
        &[Inputs::new()],
    );
}

#[test]
fn constant_only_expression_is_hoistable() {
    // `3 + 4` has no operands to kill: transparent everywhere, anticipated
    // wherever it is used downstream on all paths.
    let text = "fn consts {
        entry:
          br c, l, r
        l:
          x = 3 + 4
          obs x
          jmp j
        r:
          jmp j
        j:
          y = 3 + 4
          obs y
          ret
        }";
    preserved_by_all(text, &[Inputs::new(), Inputs::new().set("c", 1)]);
    let f = parse_function(text).unwrap();
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    assert_eq!(lazy.transform.stats.deletions, 1); // the join occurrence
}

#[test]
fn constant_branch_conditions() {
    preserved_by_all(
        "fn constbr {
         entry:
           x = a + b
           br 1, t, e
         t:
           y = a + b
           obs y
           jmp done
         e:
           obs x
           jmp done
         done:
           ret
         }",
        &[Inputs::new().set("a", 2).set("b", 9)],
    );
}

#[test]
fn parallel_branch_edges() {
    // Both targets identical: two parallel CFG edges into the same block.
    preserved_by_all(
        "fn par {
         entry:
           x = a + b
           br c, j, j
         j:
           y = a + b
           obs y
           ret
         }",
        &[Inputs::new().set("a", 1), Inputs::new().set("c", 5)],
    );
    let f = parse_function(
        "fn par {
         entry:
           x = a + b
           br c, j, j
         j:
           y = a + b
           obs y
           ret
         }",
    )
    .unwrap();
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    // Fully redundant across the parallel edges: deletable, no insertion.
    assert_eq!(lazy.transform.stats.deletions, 1);
    assert_eq!(lazy.transform.stats.insertions, 0);
}

#[test]
fn self_loop_with_redundancy() {
    preserved_by_all(
        "fn selfloop {
         entry:
           i = 5
           jmp spin
         spin:
           x = a + b
           obs x
           i = i - 1
           br i, spin, out
         out:
           ret
         }",
        &[Inputs::new().set("a", 3).set("b", 4)],
    );
    let f = parse_function(
        "fn selfloop {
         entry:
           i = 5
           jmp spin
         spin:
           x = a + b
           obs x
           i = i - 1
           br i, spin, out
         out:
           ret
         }",
    )
    .unwrap();
    // The loop-carried redundancy is removed: one evaluation total.
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    let out = run(
        &lazy.function,
        &Inputs::new().set("a", 1).set("b", 1),
        10_000,
    );
    let ab = f.expr_universe()[0];
    assert_eq!(out.eval_count(ab), 1);
}

#[test]
fn wide_universe_crosses_word_boundaries() {
    // 130 expressions: three 64-bit words of bit-vector state.
    let f = lcm::cfggen::shapes::wide_expression_soup(130);
    let inputs = Inputs::new().set("s0", 3).set("s64", -5).set("s129", 11);
    for alg in [
        PreAlgorithm::LazyEdge,
        PreAlgorithm::Busy,
        PreAlgorithm::Gcse,
    ] {
        let o = optimize(&f, alg).unwrap();
        assert!(observationally_equivalent(
            &f,
            &o.function,
            &inputs,
            100_000
        ));
        // All 130 second-block recomputations are fully redundant; busy
        // code motion additionally hoists (and therefore deletes) the
        // first block's occurrences too.
        let expected = if alg == PreAlgorithm::Busy { 260 } else { 130 };
        assert_eq!(o.transform.stats.deletions, expected, "{}", alg.name());
    }
}

#[test]
fn temp_names_do_not_collide_with_user_variables() {
    // The program already uses t0/t1 as ordinary variables.
    let f = parse_function(
        "fn clash {
         entry:
           t0 = a + b
           jmp next
         next:
           t1 = a + b
           obs t0
           obs t1
           ret
         }",
    )
    .unwrap();
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    lcm::ir::verify(&lazy.function).unwrap();
    assert_eq!(lazy.transform.stats.deletions, 1);
    let fresh = lazy.transform.temp_vars()[0];
    let name = lazy.function.var_name(fresh);
    assert!(name != "t0" && name != "t1", "collision: {name}");
    assert!(observationally_equivalent(
        &f,
        &lazy.function,
        &Inputs::new().set("a", 2).set("b", 2),
        1_000
    ));
}

#[test]
fn unary_candidates_move_like_binary_ones() {
    let f = parse_function(
        "fn un {
         entry:
           br c, l, r
         l:
           x = -a
           obs x
           jmp j
         r:
           jmp j
         j:
           y = -a
           z = ~a
           obs y
           obs z
           ret
         }",
    )
    .unwrap();
    let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    lcm::ir::verify(&lazy.function).unwrap();
    // -a is partially redundant (deleted at the join); ~a is isolated.
    assert_eq!(lazy.transform.stats.deletions, 1);
    for a in [-7, 0, i64::MIN] {
        assert!(observationally_equivalent(
            &f,
            &lazy.function,
            &Inputs::new().set("a", a).set("c", 1),
            1_000
        ));
    }
}

#[test]
fn division_hoisting_is_safe_with_total_semantics() {
    // The division is anticipated at the branch (both arms compute it), so
    // LCM may hoist it above the branch — sound here because division is
    // total (x/0 = 0 by definition in this IR).
    let text = "fn div {
        entry:
          br c, l, r
        l:
          x = a / b
          obs x
          jmp j
        r:
          y = a / b
          obs y
          jmp j
        j:
          ret
        }";
    preserved_by_all(
        text,
        &[
            Inputs::new().set("a", 10).set("b", 0), // division by zero
            Inputs::new().set("a", 10).set("b", 3).set("c", 1),
            Inputs::new().set("a", i64::MIN).set("b", -1), // overflow case
        ],
    );
}

#[test]
fn extreme_values_survive_every_algorithm() {
    preserved_by_all(
        "fn extreme {
         entry:
           x = a + b
           y = a * b
           z = a << b
           br c, l, r
         l:
           p = a + b
           obs p
           jmp j
         r:
           jmp j
         j:
           q = a * b
           obs q
           obs x
           obs y
           obs z
           ret
         }",
        &[
            Inputs::new()
                .set("a", i64::MAX)
                .set("b", i64::MAX)
                .set("c", 1),
            Inputs::new().set("a", i64::MIN).set("b", -1),
            Inputs::new().set("a", -1).set("b", 127),
        ],
    );
}

#[test]
fn chains_of_kills_and_recomputations() {
    preserved_by_all(
        "fn churn {
         entry:
           x = a + b
           a = x
           y = a + b
           b = y
           z = a + b
           obs z
           br c, again, done
         again:
           a = a + 1
           w = a + b
           obs w
           jmp done
         done:
           v = a + b
           obs v
           ret
         }",
        &[
            Inputs::new().set("a", 3).set("b", 5).set("c", 1),
            Inputs::new(),
        ],
    );
}
