//! End-to-end tests of `lcmopt lift` and of batch determinism on
//! memory-op modules.

use std::io::Write;
use std::process::{Command, Stdio};

const FLAT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/memory_flat.l3a");
const LIFTED: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/testdata/memory_flat.lcm"
));

fn lcmopt(args: &[&str], stdin: &str) -> (Option<i32>, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lcmopt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lcmopt");
    let write_result = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    if let Err(e) = write_result {
        assert_eq!(
            e.kind(),
            std::io::ErrorKind::BrokenPipe,
            "unexpected stdin failure: {e}"
        );
    }
    let out = child.wait_with_output().expect("wait for lcmopt");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The committed flat listing lifts to exactly the committed module —
/// byte for byte, the contract the ci.sh smoke stage also pins.
#[test]
fn lift_output_is_byte_identical_to_the_pinned_module() {
    let (code, stdout, stderr) = lcmopt(&["lift", FLAT], "");
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert_eq!(
        stdout, LIFTED,
        "lifter output drifted from the pinned module"
    );
}

/// `lift --emit dot` produces a digraph per function.
#[test]
fn lift_emits_dot() {
    let (code, stdout, stderr) = lcmopt(&["lift", FLAT, "--emit", "dot"], "");
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("digraph"), "{stdout}");
    assert!(stdout.contains("memory_flat"), "{stdout}");
}

/// Lift composes with the optimizer: the lifted loop-invariant load is
/// hoisted out of the loop when the module is piped into `batch`.
#[test]
fn lift_composes_with_batch_and_hoists_the_load() {
    let (code, lifted, stderr) = lcmopt(&["lift", FLAT], "");
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let (code, optimized, stderr) = lcmopt(&["batch", "-", "--validate=full"], &lifted);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    // The load must move to the preheader (`L0`) and disappear from the
    // loop body (`L1`).
    let l0 = optimized.split("L0:").nth(1).expect("L0 printed");
    let (l0, rest) = l0.split_once("L1:").expect("L1 printed");
    let l1 = rest.split("L6:").next().expect("L6 printed");
    assert!(l0.contains("load p"), "not hoisted:\n{optimized}");
    assert!(!l1.contains("load p"), "still in loop:\n{optimized}");
}

/// Malformed listings exit 3 with a `FILE:LINE: message` diagnostic.
#[test]
fn lift_reports_source_line_on_error() {
    let dir = std::env::temp_dir().join("lcm_lift_err_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.l3a");
    std::fs::write(&path, "fn bad\nx = 1\ngoto 99\nret\n").unwrap();
    let (code, _, stderr) = lcmopt(&["lift", path.to_str().unwrap()], "");
    assert_eq!(code, Some(3), "stderr: {stderr}");
    assert!(
        stderr.contains("bad.l3a:3:"),
        "diagnostic should carry file and line: {stderr}"
    );
}

/// Usage errors (unknown --emit kind, missing file operand) exit 2.
#[test]
fn lift_usage_errors_exit_2() {
    let (code, _, stderr) = lcmopt(&["lift", FLAT, "--emit", "png"], "");
    assert_eq!(code, Some(2), "stderr: {stderr}");
    let (code, _, stderr) = lcmopt(&["lift"], "");
    assert_eq!(code, Some(2), "stderr: {stderr}");
}

/// Batch output on a memory-op module is byte-identical across worker
/// counts: ordering is by input position, never by completion time.
#[test]
fn batch_memory_module_is_deterministic_across_jobs() {
    let module = format!(
        "{}\n{}",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/testdata/memory_loop.lcm"
        )),
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/testdata/memory_alias.lcm"
        ))
    );
    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let (code, stdout, stderr) =
            lcmopt(&["batch", "-", "--jobs", jobs, "--validate=full"], &module);
        assert_eq!(code, Some(0), "jobs={jobs} stderr: {stderr}");
        outputs.push(stdout);
    }
    assert_eq!(outputs[0], outputs[1], "batch output varies with --jobs");
}
