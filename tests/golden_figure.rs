//! Golden regression test for the paper's running-example figure
//! (`lcm_core::figures::running_example`): the local predicates, the
//! safety analyses, EARLIEST, the node-formulation LATEST, and the final
//! INSERT/DELETE placement are pinned block by block.
//!
//! Any change to the analyses that alters one of these sets — however
//! plausible — must update this file consciously.

use lcm::core::figures::running_example;
use lcm::core::{
    lazy_edge_plan, lazy_node_plan, lcm, ExprUniverse, GlobalAnalyses, LocalPredicates,
};
use lcm::dataflow::BitSet;
use lcm::ir::Function;

// Universe positions, in first-occurrence order.
const AB: usize = 0; // a + b
const DEC: usize = 1; // i - 1
const INC: usize = 2; // a + 1
const OR: usize = 3; // c | d
const FULL: &[usize] = &[AB, DEC, INC, OR];

fn set(uni: &ExprUniverse, bits: &[usize]) -> BitSet {
    let mut s = uni.empty_set();
    for &b in bits {
        s.insert(b);
    }
    s
}

fn block(f: &Function, name: &str) -> usize {
    f.block_by_name(name)
        .unwrap_or_else(|| panic!("no block {name}"))
        .index()
}

#[test]
fn safety_analyses_match_the_figure() {
    let f = running_example();
    let uni = ExprUniverse::of(&f);
    assert_eq!(uni.len(), 4);
    assert_eq!(f.display_expr(uni.expr(AB)), "a + b");
    assert_eq!(f.display_expr(uni.expr(DEC)), "i - 1");
    assert_eq!(f.display_expr(uni.expr(INC)), "a + 1");
    assert_eq!(f.display_expr(uni.expr(OR)), "c | d");
    let local = LocalPredicates::compute(&f, &uni);
    let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();

    // One row per block: ANTLOC, COMP, TRANSP, AVIN, AVOUT, ANTIN, ANTOUT.
    #[rustfmt::skip]
    let golden: &[(&str, &[usize], &[usize], &[usize], &[usize], &[usize], &[usize], &[usize])] = &[
        ("entry",   &[],         &[],        FULL,            &[],       &[],        FULL,       FULL),
        ("exit",    &[],         &[],        FULL,            &[AB, OR], &[AB, OR],  &[],        &[]),
        ("cond",    &[],         &[],        FULL,            &[],       &[],        FULL,       FULL),
        ("compute", &[AB],       &[AB],      FULL,            &[],       &[AB],      FULL,       FULL),
        ("skip",    &[],         &[],        FULL,            &[],       &[],        FULL,       FULL),
        ("preloop", &[],         &[],        FULL,            &[],       &[],        FULL,       FULL),
        ("loop",    &[AB, DEC],  &[AB],      &[AB, INC, OR],  &[],       &[AB],      FULL,       &[INC, OR]),
        ("tail",    &[INC, OR],  &[AB, OR],  &[DEC, OR],      &[AB],     &[AB, OR],  &[INC, OR], &[]),
    ];
    for &(name, antloc, comp, transp, avin, avout, antin, antout) in golden {
        let i = block(&f, name);
        assert_eq!(local.antloc[i], set(&uni, antloc), "ANTLOC[{name}]");
        assert_eq!(local.comp[i], set(&uni, comp), "COMP[{name}]");
        assert_eq!(local.transp[i], set(&uni, transp), "TRANSP[{name}]");
        assert_eq!(ga.avail.ins.row_set(i), set(&uni, avin), "AVIN[{name}]");
        assert_eq!(ga.avail.outs.row_set(i), set(&uni, avout), "AVOUT[{name}]");
        assert_eq!(ga.antic.ins.row_set(i), set(&uni, antin), "ANTIN[{name}]");
        assert_eq!(
            ga.antic.outs.row_set(i),
            set(&uni, antout),
            "ANTOUT[{name}]"
        );
    }
}

#[test]
fn earliest_matches_the_figure() {
    let f = running_example();
    let uni = ExprUniverse::of(&f);
    let local = LocalPredicates::compute(&f, &uni);
    let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();

    // Everything is earliest on the virtual entry edge; the only other
    // non-empty set is the loop's self-killed decrement on the back edge.
    assert_eq!(ga.earliest_entry, set(&uni, FULL));
    let lop = f.block_by_name("loop").unwrap();
    for (eid, edge) in ga.edges.iter() {
        let expected = if edge.from == lop && edge.to == lop {
            set(&uni, &[DEC])
        } else {
            uni.empty_set()
        };
        assert_eq!(
            ga.earliest[eid.index()],
            expected,
            "EARLIEST({} -> {})",
            f.block(edge.from).name,
            f.block(edge.to).name
        );
    }
}

#[test]
fn node_latest_matches_the_figure() {
    let f = running_example();
    let res = lazy_node_plan(&f, true).unwrap();
    let g = &res.function;
    let uni = &res.universe;

    // N-LATEST: the use sites that delay cannot pass. X-LATEST: only the
    // skip arm's exit (the lazy insertion point for a + b).
    #[rustfmt::skip]
    let golden: &[(&str, &[usize], &[usize])] = &[
        ("entry",           &[],          &[]),
        ("exit",            &[],          &[]),
        ("cond",            &[],          &[]),
        ("compute",         &[AB],        &[]),
        ("skip",            &[],          &[AB]),
        ("preloop",         &[],          &[]),
        ("loop",            &[DEC],       &[]),
        ("tail",            &[INC, OR],   &[]),
        ("loop_loop.split", &[],          &[]),
    ];
    assert_eq!(golden.len(), g.num_blocks(), "a block appeared or vanished");
    for &(name, n_latest, x_latest) in golden {
        let i = block(g, name);
        assert_eq!(res.latest[i].0, set(uni, n_latest), "N-LATEST[{name}]");
        assert_eq!(res.latest[i].1, set(uni, x_latest), "X-LATEST[{name}]");
    }
    // The final node plan inserts a + b at skip's exit and in front of
    // compute's upward-exposed occurrence (the retained-definition pattern:
    // the rewriter fuses that one with the existing computation).
    let skip = block(g, "skip");
    let compute = block(g, "compute");
    assert_eq!(res.plan.num_insertions(), 2);
    assert_eq!(res.plan.block_bottom_inserts[skip], set(uni, &[AB]));
    assert_eq!(res.plan.block_top_inserts[compute], set(uni, &[AB]));
}

#[test]
fn edge_insert_and_delete_match_the_figure() {
    let f = running_example();
    let uni = ExprUniverse::of(&f);
    let local = LocalPredicates::compute(&f, &uni);
    let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
    let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();

    // INSERT: exactly {a + b} on skip -> preloop.
    assert!(lazy.plan.entry_insert.is_empty());
    let skip = f.block_by_name("skip").unwrap();
    let preloop = f.block_by_name("preloop").unwrap();
    for (eid, edge) in lazy.plan.edges.iter() {
        let expected = if edge.from == skip && edge.to == preloop {
            set(&uni, &[AB])
        } else {
            uni.empty_set()
        };
        assert_eq!(
            lazy.plan.edge_inserts[eid.index()],
            expected,
            "INSERT({} -> {})",
            f.block(edge.from).name,
            f.block(edge.to).name
        );
    }

    // DELETE: exactly {a + b} in the loop.
    for b in f.block_ids() {
        let name = &f.block(b).name;
        let expected = if name == "loop" {
            set(&uni, &[AB])
        } else {
            uni.empty_set()
        };
        assert_eq!(lazy.delete[b.index()], expected, "DELETE[{name}]");
    }

    // The fused pipeline pins the same placement.
    let p = lcm(&f).unwrap();
    assert_eq!(p.lazy.plan.edge_inserts, lazy.plan.edge_inserts);
    assert_eq!(p.lazy.delete, lazy.delete);
}

#[test]
fn every_solver_strategy_pins_the_same_figure_placement() {
    use lcm::dataflow::{SolveStrategy, SolverScratch};

    let f = running_example();
    let mut scratch = SolverScratch::new();
    let baseline = lcm::core::lcm_with(&f, SolveStrategy::RoundRobin, &mut scratch).unwrap();
    for strategy in [SolveStrategy::Worklist, SolveStrategy::SccPriority] {
        let p = lcm::core::lcm_with(&f, strategy, &mut scratch).unwrap();
        assert_eq!(p.lazy.laterin, baseline.lazy.laterin, "{}", strategy.name());
        assert_eq!(p.lazy.plan.edge_inserts, baseline.lazy.plan.edge_inserts);
        assert_eq!(p.lazy.plan.entry_insert, baseline.lazy.plan.entry_insert);
        assert_eq!(p.lazy.delete, baseline.lazy.delete);
    }
}
