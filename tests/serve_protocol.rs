//! Protocol-hostility tests for the `lcmopt serve` daemon, driven
//! in-process through `Daemon::handle_connection` with byte buffers: the
//! daemon must never panic (the worker backstop counter stays 0), must
//! answer malformed traffic with typed `ERROR` frames — keeping the
//! connection when framing is still trustworthy, closing it when not —
//! and must keep serving fresh connections afterwards.

use lcm::driver::protocol::{
    read_response, write_frame, write_request, Request, Response, ERR_BAD_FRAME, ERR_PARSE,
    ERR_TOO_LARGE, RESP_DONE, RESP_UNIT_OK,
};
use lcm::driver::serve::{ConnectionEnd, Daemon, ServeOptions};

const MODULE: &str = "fn d {
entry:
  br c, l, r
l:
  x = a + b
  jmp join
r:
  jmp join
join:
  y = a + b
  obs y
  ret
}

fn straight {
entry:
  x = a * b
  y = a * b
  obs y
  ret
}
";

fn daemon() -> Daemon {
    Daemon::start(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    })
}

/// Feeds `input` as one connection and returns the decoded responses plus
/// how the connection ended.
fn roundtrip(daemon: &Daemon, input: &[u8]) -> (Vec<Response>, ConnectionEnd) {
    let mut reader = input;
    let mut out: Vec<u8> = Vec::new();
    let end = daemon.handle_connection(&mut reader, &mut out);
    let mut slice = &out[..];
    let mut responses = Vec::new();
    while let Ok(Some(r)) = read_response(&mut slice) {
        responses.push(r);
    }
    (responses, end)
}

fn optimize_request(module: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    write_request(
        &mut buf,
        &Request::Optimize {
            deadline_ms: 0,
            fuel: 0,
            module: module.to_string(),
        },
    )
    .expect("encode request");
    buf
}

/// The well-formed baseline: both units answered, DONE, clean close.
#[test]
fn valid_request_round_trips() {
    let d = daemon();
    let (responses, end) = roundtrip(&d, &optimize_request(MODULE));
    assert_eq!(end, ConnectionEnd::Closed);
    let units = responses
        .iter()
        .filter(|r| matches!(r, Response::UnitOk { .. }))
        .count();
    assert_eq!(units, 2, "{responses:?}");
    assert_eq!(responses.last(), Some(&Response::Done { ok: 2, failed: 0 }));
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn truncated_frame_is_answered_and_closed() {
    let d = daemon();
    // Claim 100 payload bytes, deliver 3: the stream tears mid-frame.
    let mut input = 100u32.to_be_bytes().to_vec();
    input.extend_from_slice(&[0x01, 0xAA, 0xBB]);
    let (responses, end) = roundtrip(&d, &input);
    assert_eq!(end, ConnectionEnd::Closed);
    assert!(
        matches!(
            responses.as_slice(),
            [Response::Error {
                code: ERR_BAD_FRAME,
                ..
            }]
        ),
        "{responses:?}"
    );
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn torn_length_prefix_is_a_clean_close() {
    let d = daemon();
    // EOF in the middle of the 4-byte prefix: not a frame boundary.
    let (responses, end) = roundtrip(&d, &[0x00, 0x00]);
    assert_eq!(end, ConnectionEnd::Closed);
    assert!(
        matches!(
            responses.as_slice(),
            [Response::Error {
                code: ERR_BAD_FRAME,
                ..
            }]
        ),
        "{responses:?}"
    );
    d.shutdown().unwrap();
}

#[test]
fn oversized_length_prefix_is_refused() {
    let d = daemon();
    let mut input = u32::MAX.to_be_bytes().to_vec();
    input.extend_from_slice(b"irrelevant");
    let (responses, end) = roundtrip(&d, &input);
    assert_eq!(end, ConnectionEnd::Closed);
    assert!(
        matches!(
            responses.as_slice(),
            [Response::Error {
                code: ERR_TOO_LARGE,
                ..
            }]
        ),
        "{responses:?}"
    );
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn zero_length_frame_is_refused() {
    let d = daemon();
    let (responses, end) = roundtrip(&d, &0u32.to_be_bytes());
    assert_eq!(end, ConnectionEnd::Closed);
    assert!(
        matches!(responses.as_slice(), [Response::Error { .. }]),
        "{responses:?}"
    );
    d.shutdown().unwrap();
}

#[test]
fn unknown_tag_mid_stream_keeps_the_connection() {
    let d = daemon();
    // STATS, then a well-framed frame with a garbage tag, then STATS
    // again: length-prefixing keeps the stream in sync, so the bad frame
    // costs one typed ERROR and nothing else.
    let mut input = Vec::new();
    write_request(&mut input, &Request::Stats).unwrap();
    write_frame(&mut input, 0x7F, b"garbage").unwrap();
    write_request(&mut input, &Request::Stats).unwrap();
    let (responses, end) = roundtrip(&d, &input);
    assert_eq!(end, ConnectionEnd::Closed);
    assert!(
        matches!(
            responses.as_slice(),
            [
                Response::Stats { .. },
                Response::Error {
                    code: ERR_BAD_FRAME,
                    ..
                },
                Response::Stats { .. }
            ]
        ),
        "{responses:?}"
    );
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn invalid_utf8_module_gets_typed_error_then_serves_on() {
    let d = daemon();
    // An OPTIMIZE payload whose module bytes are not UTF-8 fails decoding;
    // the connection survives and the next request is answered in full.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u32.to_be_bytes()); // deadline_ms
    payload.extend_from_slice(&0u64.to_be_bytes()); // fuel
    payload.extend_from_slice(&[0xFF, 0xFE, 0x80]); // not UTF-8
    let mut input = Vec::new();
    write_frame(&mut input, 0x01, &payload).unwrap();
    input.extend_from_slice(&optimize_request(MODULE));
    let (responses, end) = roundtrip(&d, &input);
    assert_eq!(end, ConnectionEnd::Closed);
    assert!(
        matches!(
            responses.first(),
            Some(Response::Error {
                code: ERR_BAD_FRAME,
                ..
            })
        ),
        "{responses:?}"
    );
    assert_eq!(responses.last(), Some(&Response::Done { ok: 2, failed: 0 }));
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn module_parse_error_is_spanned_and_keeps_the_connection() {
    let d = daemon();
    let mut input = optimize_request("fn broken {\nentry:\n  x = a +\n  ret\n}\n");
    input.extend_from_slice(&optimize_request(MODULE));
    let (responses, end) = roundtrip(&d, &input);
    assert_eq!(end, ConnectionEnd::Closed);
    match responses.first() {
        Some(Response::Error {
            code: ERR_PARSE,
            message,
        }) => {
            assert!(message.contains("<request>:3:"), "{message}");
        }
        other => panic!("expected a spanned parse error, got {other:?}"),
    }
    assert_eq!(responses.last(), Some(&Response::Done { ok: 2, failed: 0 }));
    d.shutdown().unwrap();
}

/// A writer that accepts `cap` bytes and then reports a broken pipe,
/// modelling a client that disconnects mid-request.
struct HangupWriter {
    out: Vec<u8>,
    cap: usize,
}

impl std::io::Write for HangupWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.out.len() >= self.cap {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client hung up",
            ));
        }
        self.out.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn mid_request_disconnect_leaves_the_daemon_serving() {
    let d = daemon();
    let input = optimize_request(MODULE);
    let mut reader = &input[..];
    // Let the response header trickle out, then hang up.
    let mut writer = HangupWriter {
        out: Vec::new(),
        cap: 8,
    };
    let end = d.handle_connection(&mut reader, &mut writer);
    assert_eq!(end, ConnectionEnd::Closed);
    // A fresh connection is served in full afterwards.
    let (responses, _) = roundtrip(&d, &optimize_request(MODULE));
    assert_eq!(responses.last(), Some(&Response::Done { ok: 2, failed: 0 }));
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn shutdown_frame_drains_with_bye() {
    let d = daemon();
    let mut input = Vec::new();
    write_request(&mut input, &Request::Shutdown).unwrap();
    let (responses, end) = roundtrip(&d, &input);
    assert_eq!(end, ConnectionEnd::Shutdown);
    assert_eq!(responses, vec![Response::Bye]);
    // Draining refuses new admissions with a typed error.
    let (responses, _) = roundtrip(&d, &optimize_request(MODULE));
    assert!(
        matches!(responses.as_slice(), [Response::Error { .. }]),
        "{responses:?}"
    );
    d.shutdown().unwrap();
}

/// The daemon hot path: re-sending a module after a content edit must be
/// answered from the retained fixpoints (a delta solve, not a from-scratch
/// pipeline run), and the STATS text must say so.
#[test]
fn edited_module_resend_reports_incremental_hits() {
    let d = daemon();
    let mut input = optimize_request(MODULE);
    // A content edit in one block of `d`: appending `a = 1` kills `a + b`
    // through `join` without changing the CFG shape or the universe.
    let edited = MODULE.replace("y = a + b", "y = a + b\n  a = 1");
    input.extend_from_slice(&optimize_request(&edited));
    write_request(&mut input, &Request::Stats).unwrap();
    let (responses, end) = roundtrip(&d, &input);
    assert_eq!(end, ConnectionEnd::Closed);
    let dones = responses
        .iter()
        .filter(|r| matches!(r, Response::Done { ok: 2, failed: 0 }))
        .count();
    assert_eq!(dones, 2, "{responses:?}");
    let Some(Response::Stats { text }) = responses.last() else {
        panic!("expected trailing STATS, got {responses:?}");
    };
    let line = text
        .lines()
        .find(|l| l.starts_with("incremental: "))
        .unwrap_or_else(|| panic!("no incremental line in stats:\n{text}"));
    assert!(
        !line.starts_with("incremental: 0 hits"),
        "edited resend was not answered incrementally: {line}"
    );
    assert_eq!(d.panics_contained(), 0);
    d.shutdown().unwrap();
}

#[test]
fn response_tags_are_wire_stable() {
    // Pin the wire tags a client depends on; renumbering is a protocol
    // break, not a refactor.
    assert_eq!(RESP_UNIT_OK, 0x81);
    assert_eq!(RESP_DONE, 0x83);
}
