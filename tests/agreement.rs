//! Cross-checks between independent formulations of the same concepts —
//! each pair below computes one quantity in two unrelated ways, so
//! agreement is strong evidence of correctness.

use lcm::cfggen::{arbitrary, corpus, GenOptions};
use lcm::core::{
    lazy_edge_plan, lazy_node_plan, morel_renvoise_plan, optimize, passes, transform, ExprUniverse,
    GlobalAnalyses, LocalPredicates, PreAlgorithm,
};
use lcm::interp::{run, Inputs};
use lcm::ir::Function;

/// The paper's closed-form deletion set (`ANTLOC ∩ ¬LATERIN`) must equal
/// the transform layer's availability-derived one on every program.
#[test]
fn lazy_delete_formulations_agree_on_corpora() {
    let opts = GenOptions::default();
    for f in corpus(0xA11, 80, &opts) {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        let tav = transform::temp_availability(&f, &uni, &local, &lazy.plan);
        let from_tav = transform::deletions(&f, &uni, &local, &lazy.plan, &tav);
        assert_eq!(from_tav, lazy.delete, "{}", f.name);
    }
    for seed in 0..40 {
        let f = arbitrary(seed, &GenOptions::sized(15));
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        let tav = transform::temp_availability(&f, &uni, &local, &lazy.plan);
        let from_tav = transform::deletions(&f, &uni, &local, &lazy.plan, &tav);
        assert_eq!(from_tav, lazy.delete, "{}", f.name);
    }
}

/// Morel–Renvoise's promised deletions must also match what availability
/// actually licenses under its insertions.
#[test]
fn mr_delete_formulations_agree_on_corpora() {
    let opts = GenOptions::default();
    for f in corpus(0xB22, 80, &opts) {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let mr = morel_renvoise_plan(&f, &uni, &local).unwrap();
        let tav = transform::temp_availability(&f, &uni, &local, &mr.plan);
        let from_tav = transform::deletions(&f, &uni, &local, &mr.plan, &tav);
        assert_eq!(from_tav, mr.delete, "{}", f.name);
    }
}

/// After LCSE, blocks are canonical: per expression at most one
/// evaluation between consecutive kills.
#[test]
fn lcse_leaves_blocks_canonical() {
    let opts = GenOptions::default();
    for mut f in corpus(0xC33, 60, &opts) {
        passes::lcse(&mut f);
        for b in f.block_ids() {
            let mut since_kill: Vec<lcm::ir::Expr> = Vec::new();
            for instr in &f.block(b).instrs {
                if let lcm::ir::Instr::Assign { dst, rv } = instr {
                    if let lcm::ir::Rvalue::Expr(e) = rv {
                        assert!(
                            !since_kill.contains(e),
                            "{}: duplicate evaluation of {} in {}",
                            f.name,
                            f.display_expr(*e),
                            f.block(b).name
                        );
                        since_kill.push(*e);
                    }
                    since_kill.retain(|e| !e.mentions(*dst));
                }
            }
        }
    }
}

/// ALCM (no isolation) plus clean-up passes must coincide with full LCM in
/// what actually matters: identical dynamic evaluation counts, and after
/// DCE no dangling temp definitions.
#[test]
fn alcm_plus_cleanup_matches_lcm_counts() {
    let opts = GenOptions::default();
    let inputs = Inputs::new()
        .set("a", 4)
        .set("b", -2)
        .set("c", 1)
        .set("d", 8);
    for mut f in corpus(0xD44, 50, &opts) {
        // Canonicalise first: the optimality statements assume LCSE ran.
        passes::lcse(&mut f);
        let exprs = f.expr_universe();
        let mut lcm_out = optimize(&f, PreAlgorithm::LazyNode).unwrap().function;
        let mut alcm_out = optimize(&f, PreAlgorithm::AlmostLazyNode).unwrap().function;
        // DCE only: copy propagation would rename operands and change the
        // structural identity the counters are keyed on.
        for g in [&mut lcm_out, &mut alcm_out] {
            passes::dce(g);
        }
        let a = run(&alcm_out, &inputs, 2_000_000);
        let l = run(&lcm_out, &inputs, 2_000_000);
        assert!(a.completed() && l.completed());
        assert_eq!(
            a.total_evals_of(&exprs),
            l.total_evals_of(&exprs),
            "{}",
            f.name
        );
    }
}

/// The two solver strategies of the dataflow crate agree on the real
/// analyses over real (generated) programs, not just toy fixtures.
#[test]
fn solver_strategies_agree_on_real_analyses() {
    use lcm::dataflow::{Confluence, Direction, Problem, Transfer};
    let opts = GenOptions::sized(40);
    for f in corpus(0xE55, 20, &opts) {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        for (dir, gen) in [
            (Direction::Forward, &local.comp),
            (Direction::Backward, &local.antloc),
        ] {
            for conf in [Confluence::Must, Confluence::May] {
                let transfer: Vec<Transfer> = gen
                    .iter()
                    .zip(&local.kill)
                    .map(|(g, k)| Transfer {
                        gen: g.clone(),
                        kill: k.clone(),
                    })
                    .collect();
                let p = Problem::new(&f, uni.len(), dir, conf, transfer);
                let a = p.solve();
                let b = p.solve_worklist();
                assert_eq!(a.ins, b.ins, "{} {dir:?} {conf:?}", f.name);
                assert_eq!(a.outs, b.outs, "{} {dir:?} {conf:?}", f.name);
            }
        }
    }
}

/// Splitting critical edges is semantically invisible.
#[test]
fn critical_edge_splitting_preserves_behaviour() {
    let opts = GenOptions::default();
    for f in corpus(0xF66, 40, &opts) {
        let mut split: Function = f.clone();
        lcm::ir::graph::split_critical_edges(&mut split);
        lcm::ir::verify(&split).unwrap();
        for inputs in [
            Inputs::new(),
            Inputs::new().set("a", 1).set("b", 2).set("c", 3),
        ] {
            assert!(lcm::interp::observationally_equivalent(
                &f, &split, &inputs, 1_000_000
            ));
        }
    }
}

/// The textual format round-trips every generated program.
#[test]
fn print_parse_roundtrip_on_corpora() {
    let opts = GenOptions::default();
    for f in corpus(0x9A, 40, &opts) {
        let reparsed = lcm::ir::parse_function(&f.to_string()).unwrap();
        assert_eq!(f.to_string(), reparsed.to_string(), "{}", f.name);
        assert_eq!(f.num_blocks(), reparsed.num_blocks());
        assert_eq!(f.num_instrs(), reparsed.num_instrs());
    }
    for seed in 0..20 {
        let f = arbitrary(seed, &GenOptions::sized(20));
        let reparsed = lcm::ir::parse_function(&f.to_string()).unwrap();
        assert_eq!(f.to_string(), reparsed.to_string());
    }
}

/// Node-formulation plans never leave a critical edge unsplit and never
/// insert into the (empty) synthetic blocks unnecessarily when isolation
/// is on: every insertion must be justified by a later deletion somewhere.
#[test]
fn lcm_node_insertions_are_justified() {
    let opts = GenOptions::default();
    for f in corpus(0x77, 40, &opts) {
        let res = lazy_node_plan(&f, true).unwrap();
        if res.plan.num_insertions() == 0 {
            continue;
        }
        let result = lcm::core::apply_plan(&res.function, &res.universe, &res.local, &res.plan);
        assert!(
            result.stats.deletions > 0,
            "{}: {} insertions but no deletions",
            f.name,
            res.plan.num_insertions()
        );
    }
}
