//! End-to-end tests of the `lcmopt` command-line driver.

use std::io::Write;
use std::process::{Command, Stdio};

const DIAMOND: &str = "fn d {
entry:
  br c, l, r
l:
  x = a + b
  jmp join
r:
  jmp join
join:
  y = a + b
  obs y
  ret
}
";

fn lcmopt(args: &[&str], stdin: &str) -> (bool, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lcmopt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lcmopt");
    // The write may fail with BrokenPipe when lcmopt rejects its arguments
    // and exits before reading stdin — that is expected for the error-path
    // tests.
    let write_result = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    if let Err(e) = write_result {
        assert_eq!(
            e.kind(),
            std::io::ErrorKind::BrokenPipe,
            "unexpected stdin failure: {e}"
        );
    }
    let out = child.wait_with_output().expect("wait for lcmopt");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn default_pipeline_optimizes_the_diamond() {
    let (ok, stdout, stderr) = lcmopt(&[], DIAMOND);
    assert!(ok, "stderr: {stderr}");
    // After LCM + cleanup, the join must read a temp instead of
    // recomputing.
    assert!(stdout.contains("fn d {"), "{stdout}");
    let join_and_after = stdout.split("join:").nth(1).expect("join block printed");
    assert!(
        !join_and_after.contains("a + b"),
        "join still recomputes:\n{stdout}"
    );
}

#[test]
fn emit_stats_reports_site_reduction() {
    // Full redundancy: the second site disappears without an insertion.
    // (On the diamond the insertion is itself a site, so the static count
    // stays at 2 there even though the dynamic count drops.)
    let full = "fn full {
        entry:
          x = a + b
          jmp next
        next:
          y = a + b
          obs y
          ret
        }";
    let (ok, stdout, _) = lcmopt(&["--emit", "stats"], full);
    assert!(ok);
    assert!(
        stdout.contains("candidate evaluation sites: 2 -> 1"),
        "{stdout}"
    );
}

#[test]
fn emit_dot_produces_graphviz() {
    let (ok, stdout, _) = lcmopt(&["--emit", "dot", "--passes", "lcse"], DIAMOND);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("->"));
}

#[test]
fn run_mode_checks_equivalence_and_counts() {
    let (ok, stdout, _) = lcmopt(
        &[
            "--emit", "none", "--run", "a=20", "--run", "b=22", "--run", "c=1",
        ],
        DIAMOND,
    );
    assert!(ok);
    assert!(stdout.contains("trace before: [42]"), "{stdout}");
    assert!(stdout.contains("trace after:  [42]"), "{stdout}");
    assert!(stdout.contains("evaluations:  2 -> 1"), "{stdout}");
}

#[test]
fn compare_lists_all_algorithms() {
    let (ok, stdout, _) = lcmopt(&["--compare"], DIAMOND);
    assert!(ok);
    for name in [
        "bcm",
        "lcm-edge",
        "lcm-node",
        "alcm-node",
        "morel-renvoise",
        "gcse",
    ] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
}

#[test]
fn rejects_bad_input_with_diagnostics() {
    let (ok, _, stderr) = lcmopt(&[], "fn broken {\nentry:\n  x = +\n  ret\n}");
    assert!(!ok);
    assert!(stderr.contains("<stdin>:3:"), "{stderr}");

    let (ok, _, stderr) = lcmopt(&["--passes", "nonsense"], DIAMOND);
    assert!(!ok);
    assert!(stderr.contains("unknown pass"), "{stderr}");

    let (ok, _, stderr) = lcmopt(&["--emit", "pdf"], DIAMOND);
    assert!(!ok);
    assert!(stderr.contains("unknown emit kind"), "{stderr}");
}

#[test]
fn custom_pipeline_order_is_respected() {
    // GCSE alone cannot remove the partially redundant join computation.
    let (ok, stdout, _) = lcmopt(&["--passes", "gcse", "--emit", "stats"], DIAMOND);
    assert!(ok);
    assert!(
        stdout.contains("candidate evaluation sites: 2 -> 2"),
        "{stdout}"
    );
}

#[test]
fn reads_from_file() {
    let dir = std::env::temp_dir().join("lcmopt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("diamond.lcm");
    std::fs::write(&path, DIAMOND).unwrap();
    let (ok, stdout, stderr) = lcmopt(&[path.to_str().unwrap()], "");
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("fn d {"));
}
