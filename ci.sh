#!/bin/sh
# Offline CI for the lcm workspace: formatting, release build, full tests.
# Requires nothing beyond the Rust toolchain — no network, no registry.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p lcm-faults -q (fault-injection suite)"
cargo test -p lcm-faults -q

echo "==> cargo test -p lcm-driver -q (batch driver suite)"
cargo test -p lcm-driver -q

# Batch smoke: the workload suite as one module must optimize to
# byte-identical output at every thread count.
JOBS="$(nproc 2>/dev/null || echo 4)"
echo "==> batch smoke: lcmopt batch at --jobs 1 vs --jobs $JOBS"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cargo run -q -p lcm-bench --release --bin make_corpus > "$SMOKE/corpus.lcm"
for emit in text stats json; do
  cargo run -q --release --bin lcmopt -- batch "$SMOKE/corpus.lcm" \
    --jobs 1 --emit "$emit" > "$SMOKE/$emit.j1" 2>/dev/null
  cargo run -q --release --bin lcmopt -- batch "$SMOKE/corpus.lcm" \
    --jobs "$JOBS" --emit "$emit" > "$SMOKE/$emit.jn" 2>/dev/null
  diff "$SMOKE/$emit.j1" "$SMOKE/$emit.jn"
done

echo "ci: OK"
