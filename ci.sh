#!/bin/sh
# Offline CI for the lcm workspace: formatting, release build, full tests.
# Requires nothing beyond the Rust toolchain — no network, no registry.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p lcm-faults -q (fault-injection suite)"
cargo test -p lcm-faults -q

echo "ci: OK"
