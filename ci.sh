#!/bin/sh
# Offline CI for the lcm workspace: formatting, release build, full tests.
# Requires nothing beyond the Rust toolchain — no network, no registry.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p lcm-faults -q (fault-injection suite)"
cargo test -p lcm-faults -q

echo "==> cargo test -p lcm-driver -q (batch driver suite)"
cargo test -p lcm-driver -q

# Batch smoke: the workload suite as one module must optimize to
# byte-identical output at every thread count.
JOBS="$(nproc 2>/dev/null || echo 4)"
echo "==> batch smoke: lcmopt batch at --jobs 1 vs --jobs $JOBS"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cargo run -q -p lcm-bench --release --bin make_corpus > "$SMOKE/corpus.lcm"
for emit in text stats json; do
  cargo run -q --release --bin lcmopt -- batch "$SMOKE/corpus.lcm" \
    --jobs 1 --emit "$emit" > "$SMOKE/$emit.j1" 2>/dev/null
  cargo run -q --release --bin lcmopt -- batch "$SMOKE/corpus.lcm" \
    --jobs "$JOBS" --emit "$emit" > "$SMOKE/$emit.jn" 2>/dev/null
  diff "$SMOKE/$emit.j1" "$SMOKE/$emit.jn"
done

# Solver-strategy smoke: every strategy must produce the same optimized
# output, and stats emission must be run-to-run deterministic per strategy.
echo "==> solver smoke: --solver rr|wl|scc agree; --emit stats deterministic"
for solver in rr wl scc; do
  cargo run -q --release --bin lcmopt -- batch "$SMOKE/corpus.lcm" \
    --solver "$solver" --emit text > "$SMOKE/text.$solver" 2>/dev/null
  diff "$SMOKE/text.j1" "$SMOKE/text.$solver"
  cargo run -q --release --bin lcmopt -- batch "$SMOKE/corpus.lcm" \
    --solver "$solver" --emit stats > "$SMOKE/stats.$solver.a" 2>/dev/null
  cargo run -q --release --bin lcmopt -- batch "$SMOKE/corpus.lcm" \
    --solver "$solver" --emit stats > "$SMOKE/stats.$solver.b" 2>/dev/null
  diff "$SMOKE/stats.$solver.a" "$SMOKE/stats.$solver.b"
done

# Bench smoke: the perf baseline generator runs at CI size and its output
# conforms to the lcm-bench-v1 schema (validated by the binary itself, no
# jq). Runs in a scratch dir so the committed BENCH_PR*.json series is
# untouched; the committed series itself is then checked at the repo root.
echo "==> bench smoke: experiments bench --quick + --check"
BENCH_BIN="$(pwd)/target/release/experiments"
(cd "$SMOKE" && "$BENCH_BIN" bench --quick > /dev/null && "$BENCH_BIN" bench --check)
echo "==> bench series check: committed BENCH_PR*.json"
"$BENCH_BIN" bench --check

# Speculative-PRE smoke: on the committed weighted golden example the
# profile-guided min-cut must adopt exactly one insertion (hoisting `a + b`
# above the guard) and beat plain LCM's dynamic evaluation count, at the
# full validation tier. The differential corpus suite backing this stage
# (tests/speculative_pre.rs, 300 weighted functions) runs as part of the
# `cargo test --workspace` gate above.
echo "==> spec smoke: --placement spec on testdata/guarded_loop.lcm"
cargo run -q --release --bin lcmopt -- --placement spec --emit stats \
  --validate=full < testdata/guarded_loop.lcm > "$SMOKE/spec.stats"
grep -q "speculative: 1 candidates, 1 speculated, weighted cost 6 -> 1" \
  "$SMOKE/spec.stats"
cargo run -q --release --bin lcmopt -- --placement spec \
  < testdata/guarded_loop.lcm > "$SMOKE/spec.out"
sed -n '/entry:/,/head:/p' "$SMOKE/spec.out" | grep -q "a + b"
cargo run -q --release --bin lcmopt -- --placement lcm --emit stats \
  < testdata/guarded_loop.lcm > "$SMOKE/lcm.stats"
SPEC_EVALS="$(sed -n 's/.*dynamic evaluations.*-> //p' "$SMOKE/spec.stats")"
LCM_EVALS="$(sed -n 's/.*dynamic evaluations.*-> //p' "$SMOKE/lcm.stats")"
test "$SPEC_EVALS" -lt "$LCM_EVALS"

# Lift smoke: the committed flat three-address listing must lift to
# exactly the committed module (byte-for-byte), and the lifted module must
# optimize cleanly at the full validation tier. The golden memory pair
# pins the alias model: the loop-invariant load hoists to the preheader,
# and the same load with an in-loop may-alias store stays put.
echo "==> lift smoke: lcmopt lift + memory golden pair"
cargo run -q --release --bin lcmopt -- lift testdata/memory_flat.l3a \
  > "$SMOKE/lifted.lcm"
diff testdata/memory_flat.lcm "$SMOKE/lifted.lcm"
cargo run -q --release --bin lcmopt -- batch "$SMOKE/lifted.lcm" \
  --validate=full > /dev/null
cargo run -q --release --bin lcmopt -- --validate=full \
  < testdata/memory_loop.lcm > "$SMOKE/memloop.out"
sed -n '/entry:/,/head:/p' "$SMOKE/memloop.out" | grep -q "load p"
cargo run -q --release --bin lcmopt -- --validate=full \
  < testdata/memory_alias.lcm > "$SMOKE/memalias.out"
diff testdata/memory_alias.lcm "$SMOKE/memalias.out"

# Watch smoke: an edit stream through `lcmopt watch` must track the file
# and answer byte-identically to a one-shot batch of each revision. Three
# scripted edits cover the incremental tiers: a pure content edit takes
# the delta path, a byte-different parse-identical rewrite replays the
# zero-dirty output memo ("0 dirty" on stderr, output bytes unchanged),
# and a universe-growing edit (new expression) stays on the delta path
# instead of falling back (PR 10 widening).
echo "==> watch smoke: scripted edits, output diffed vs one-shot batch"
LCMOPT="$(pwd)/target/release/lcmopt"
WFILE="$SMOKE/watched.lcm"
# Atomic publish (rename, not copy-in-place) so the watcher never reads a
# half-written revision; then wait for iteration $1's session line.
publish() { cp "$1" "$SMOKE/stage.tmp" && mv "$SMOKE/stage.tmp" "$WFILE"; }
wait_iter() {
  i=0
  while ! grep -q "watch\[$1\]: [0-9]* ok," "$SMOKE/watch.log" \
    && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
  grep -q "watch\[$1\]: [0-9]* ok," "$SMOKE/watch.log"
}
# The session line is logged just before the output file is rewritten;
# poll until the output settles on the expected bytes.
wait_out() {
  i=0
  while ! cmp -s "$SMOKE/watch.out" "$1" \
    && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
  cmp -s "$SMOKE/watch.out" "$1"
}
cat > "$SMOKE/rev0.lcm" <<'EOT'
fn d {
entry:
  br c, l, r
l:
  x = a + b
  jmp join
r:
  jmp join
join:
  y = a + b
  obs y
  ret
}

fn straight {
entry:
  x = p * q
  obs x
  ret
}
EOT
# Revision 1: a content edit in `join` (kills `a + b` downstream) that
# leaves the CFG shape and expression universe untouched — the canonical
# delta-path edit, same pair tests/watch.rs pins.
awk '{ print } /y = a \+ b/ { print "  a = 1" }' "$SMOKE/rev0.lcm" \
  > "$SMOKE/rev1.lcm"
# Revision 2: byte-different but parse-identical (one trailing blank
# line). Both functions must replay the zero-dirty output memo.
{ cat "$SMOKE/rev1.lcm"; echo; } > "$SMOKE/rev2.lcm"
# Revision 3: a universe-growing edit — `p + q` is a new expression in
# `straight` — which PR 10's widening keeps on the delta path.
awk '{ print } /x = p \* q/ { print "  w = p + q"; print "  obs w" }' \
  "$SMOKE/rev2.lcm" > "$SMOKE/rev3.lcm"
cp "$SMOKE/rev0.lcm" "$WFILE"
"$LCMOPT" watch "$WFILE" --iterations 3 --interval-ms 20 \
  -o "$SMOKE/watch.out" 2> "$SMOKE/watch.log" &
WATCH_PID=$!
# The initial revision's output appears before polling starts; edit only
# after it exists so the watcher is guaranteed to see every revision.
i=0
while [ ! -s "$SMOKE/watch.out" ] && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
[ -s "$SMOKE/watch.out" ]
"$LCMOPT" batch "$SMOKE/rev0.lcm" --emit text > "$SMOKE/rev0.batch" 2>/dev/null
diff "$SMOKE/watch.out" "$SMOKE/rev0.batch"
"$LCMOPT" batch "$SMOKE/rev1.lcm" --emit text > "$SMOKE/rev1.batch" 2>/dev/null
"$LCMOPT" batch "$SMOKE/rev3.lcm" --emit text > "$SMOKE/rev3.batch" 2>/dev/null
# Edit 1: content delta on fn d, memo replay on untouched fn straight.
publish "$SMOKE/rev1.lcm"
wait_iter 1
wait_out "$SMOKE/rev1.batch"
grep -q "watch\[1\]: fn d: delta, 1 dirty" "$SMOKE/watch.log"
# Edit 2: no-op rewrite — both functions report "0 dirty" memo replays
# and the output file stays byte-identical to revision 1's.
publish "$SMOKE/rev2.lcm"
wait_iter 2
grep -q "watch\[2\]: fn d: zero-dirty, 0 dirty" "$SMOKE/watch.log"
grep -q "watch\[2\]: fn straight: zero-dirty, 0 dirty" "$SMOKE/watch.log"
diff "$SMOKE/watch.out" "$SMOKE/rev1.batch"
# Edit 3: universe growth must be a delta solve, never a fallback.
publish "$SMOKE/rev3.lcm"
wait "$WATCH_PID"
wait_out "$SMOKE/rev3.batch"
grep -q "watch\[3\]: fn straight: delta, 1 dirty" "$SMOKE/watch.log"
grep -q "watch\[3\]:.* 1 universe-grow, .* 0 fallback" "$SMOKE/watch.log"

# Serve smoke: the daemon must answer byte-identically to batch, survive a
# SIGKILL crash (the write-behind cache file either loads or quarantines,
# never wedges the restart), and still answer identically from the warm
# cache before draining cleanly.
echo "==> serve smoke: daemon round-trip, kill -9 crash, warm restart"
SOCK="$SMOKE/daemon.sock"
DCACHE="$SMOKE/daemon.cache"
"$LCMOPT" serve --socket "$SOCK" --cache-file "$DCACHE" 2> "$SMOKE/serve1.log" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
[ -S "$SOCK" ]
"$LCMOPT" request --socket "$SOCK" "$SMOKE/corpus.lcm" > "$SMOKE/daemon.cold"
diff "$SMOKE/text.j1" "$SMOKE/daemon.cold"
[ -f "$DCACHE" ] # write-behind: the cache file is durable before any drain
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
rm -f "$SOCK" # the crash leaves a stale socket; clear it so the wait below sees the new bind
"$LCMOPT" serve --socket "$SOCK" --cache-file "$DCACHE" 2> "$SMOKE/serve2.log" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
[ -S "$SOCK" ]
"$LCMOPT" request --socket "$SOCK" "$SMOKE/corpus.lcm" > "$SMOKE/daemon.warm"
diff "$SMOKE/text.j1" "$SMOKE/daemon.warm"
grep -Eq "cache file (loaded|refused)" "$SMOKE/serve2.log"
"$LCMOPT" request --socket "$SOCK" --stats | grep -q "^lifetime:"
# The daemon's incremental hot path: re-sending an edited module must
# delta-solve against the fixpoints retained from the previous revision
# and report the hits, not pay a fresh solve. The edit-class ledger in
# --stats classifies the resend: fn d was a content edit, fn straight
# was byte-identical and replayed the zero-dirty output memo.
"$LCMOPT" request --socket "$SOCK" "$SMOKE/rev0.lcm" > /dev/null
"$LCMOPT" request --socket "$SOCK" "$SMOKE/rev1.lcm" > /dev/null
"$LCMOPT" request --socket "$SOCK" --stats > "$SMOKE/serve.stats"
grep -Eq "^incremental: [1-9][0-9]* hits" "$SMOKE/serve.stats"
grep -Eq "^edit classes: 1 content, .* 1 zero-dirty$" "$SMOKE/serve.stats"
"$LCMOPT" request --socket "$SOCK" --shutdown
wait "$SERVE_PID"

echo "ci: OK"
