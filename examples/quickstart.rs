//! Quickstart: parse a function, run Lazy Code Motion, inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lcm::core::{optimize, PreAlgorithm};
use lcm::interp::{run, Inputs};
use lcm::ir::parse_function;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The canonical partial redundancy: `a + b` is computed on the left
    // arm and again after the join — redundant along the left path only.
    let f = parse_function(
        "fn demo {
         entry:
           br c, left, right
         left:
           x = a + b
           obs x
           jmp join
         right:
           jmp join
         join:
           y = a + b
           obs y
           ret
         }",
    )?;

    println!("== before ==\n{f}\n");

    let optimized = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    println!("== after lazy code motion ==\n{}\n", optimized.function);
    println!(
        "insertions: {}, deletions: {}, temps: {}",
        optimized.transform.stats.insertions,
        optimized.transform.stats.deletions,
        optimized.transform.stats.temps,
    );

    // Prove the point dynamically: same observations, fewer evaluations.
    let inputs = Inputs::new().set("a", 20).set("b", 22).set("c", 1);
    let before = run(&f, &inputs, 10_000);
    let after = run(&optimized.function, &inputs, 10_000);
    assert_eq!(before.trace, after.trace);
    println!(
        "dynamic evaluations of candidate expressions: {} -> {}",
        before.total_evals(),
        after.total_evals()
    );
    Ok(())
}
