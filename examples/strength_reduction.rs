//! Lazy strength reduction (the companion extension of lazy code motion):
//! multiplications by an induction variable collapse to one initialisation
//! plus an addition per update.
//!
//! ```sh
//! cargo run --example strength_reduction
//! ```

use lcm::core::strength::{candidate_mults, strength_reduce};
use lcm::interp::{run, Inputs};
use lcm::ir::parse_function;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Row-major address computation: addr = i * 12 each iteration.
    let f = parse_function(
        "fn addresses {
         entry:
           i = 0
           n = 8
           jmp body
         body:
           addr = i * 12
           obs addr
           i = i + 1
           c = i < n
           br c, body, done
         done:
           ret
         }",
    )?;

    println!("== before ==\n{f}\n");
    let res = strength_reduce(&f);
    println!("== after lazy strength reduction ==\n{}\n", res.function);
    println!(
        "candidates: {}, insertions: {}, deletions: {}, updates: {}",
        res.stats.candidates, res.stats.insertions, res.stats.deletions, res.stats.updates
    );

    let before = run(&f, &Inputs::new(), 100_000);
    let after = run(&res.function, &Inputs::new(), 100_000);
    assert_eq!(before.trace, after.trace);
    println!(
        "multiplications of i * 12: {} -> {} (additions do the rest)",
        candidate_mults(&before, &res.candidates),
        candidate_mults(&after, &res.candidates)
    );
    Ok(())
}
