//! The paper's headline motivation, measured: busy code motion is as
//! computationally optimal as lazy code motion but pays for it in
//! register pressure. This example sweeps diamond-chain depth and prints
//! the live-range sizes of the introduced temporaries for both.
//!
//! ```sh
//! cargo run --example register_pressure
//! ```

use lcm::cfggen::shapes;
use lcm::core::{metrics, optimize, PreAlgorithm};
use lcm::interp::{run, Inputs};

fn main() {
    println!(
        "pressure_chain (one fresh expression per diamond):\n{:>6} {:>14} {:>14} {:>14} {:>12}",
        "chain", "busy live pts", "lazy live pts", "ratio", "evals (both)"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let f = shapes::pressure_chain(n);
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let bp = metrics::live_points(&busy.function, &busy.transform.temp_vars());
        let lp = metrics::live_points(&lazy.function, &lazy.transform.temp_vars());
        let inputs = Inputs::new().set("a", 1).set("b", 2).set("c", 1);
        let be = run(&busy.function, &inputs, 1_000_000).total_evals();
        let le = run(&lazy.function, &inputs, 1_000_000).total_evals();
        assert_eq!(be, le, "both are computationally optimal");
        println!(
            "{:>6} {:>14} {:>14} {:>14.2} {:>12}",
            n,
            bp,
            lp,
            bp as f64 / lp.max(1) as f64,
            be
        );
    }
    println!(
        "\nBusy code motion hoists every diamond's expression to the top of the\n\
         function, so all the temporaries are live at once and pressure grows\n\
         with the chain; lazy code motion keeps each temporary local to its\n\
         diamond. Both evaluate exactly the same number of expressions — the\n\
         entire difference is register pressure, which is the paper's point."
    );
}
