//! Lazy code motion subsumes loop-invariant code motion — with the
//! safety twist the paper is careful about: hoisting out of a *do-while*
//! loop is safe (the body always runs), hoisting out of a zero-trip
//! *while* loop is not (the expression might never have been evaluated on
//! the exit path), and LCM gets both right without any loop analysis.
//!
//! ```sh
//! cargo run --example loop_invariant
//! ```

use lcm::core::{optimize, PreAlgorithm};
use lcm::interp::{run, Inputs};
use lcm::ir::parse_function;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dowhile = parse_function(
        "fn dowhile {
         entry:
           i = 10
           jmp body
         body:
           x = a * b     # invariant, evaluated every iteration
           s = s + x
           i = i - 1
           br i, body, done
         done:
           obs s
           ret
         }",
    )?;
    let zero_trip = parse_function(
        "fn zero_trip {
         entry:
           i = n
           jmp head
         head:
           br i, body, done
         body:
           x = a * b     # invariant, but the loop may run zero times
           s = s + x
           i = i - 1
           jmp head
         done:
           obs s
           ret
         }",
    )?;

    let inputs = Inputs::new().set("a", 6).set("b", 7).set("n", 10);

    for f in [&dowhile, &zero_trip] {
        let o = optimize(f, PreAlgorithm::LazyEdge).unwrap();
        let inv = f
            .expr_universe()
            .into_iter()
            .find(|e| f.display_expr(*e) == "a * b")
            .expect("invariant present");
        let before = run(f, &inputs, 100_000);
        let after = run(&o.function, &inputs, 100_000);
        assert_eq!(before.trace, after.trace, "behaviour must be preserved");
        println!("== {} ==", f.name);
        println!("{}", o.function);
        println!(
            "evaluations of a * b: {} -> {}\n",
            before.eval_count(inv),
            after.eval_count(inv)
        );
    }

    println!(
        "Note: the do-while invariant is hoisted (10 -> 1 evaluations); the\n\
         zero-trip while loop is left alone — hoisting there would evaluate\n\
         a * b on executions that never enter the loop, which classic PRE's\n\
         safety requirement (down-safety) forbids."
    );
    Ok(())
}
