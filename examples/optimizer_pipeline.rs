//! A realistic pass pipeline over a generated workload: LCSE → PRE →
//! copy propagation → DCE, comparing all five PRE algorithms on static and
//! dynamic measures.
//!
//! ```sh
//! cargo run --example optimizer_pipeline [seed]
//! ```

use lcm::cfggen::{structured, GenOptions};
use lcm::core::{metrics, optimize, passes, PreAlgorithm};
use lcm::interp::{run, Inputs};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    let mut f = structured(seed, &GenOptions::sized(80));
    let removed = passes::lcse(&mut f);
    println!(
        "workload: {} ({} blocks, {} instructions, {} candidate expressions, {} locally reused)\n",
        f.name,
        f.num_blocks(),
        f.num_instrs(),
        f.expr_universe().len(),
        removed
    );

    let exprs = f.expr_universe();
    let inputs = Inputs::new()
        .set("a", 11)
        .set("b", -3)
        .set("c", 1)
        .set("d", 5);
    let baseline = run(&f, &inputs, 5_000_000);
    assert!(baseline.completed());

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "algorithm", "inserts", "deletes", "temps", "dyn evals", "live points", "instrs"
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "original",
        "-",
        "-",
        "-",
        baseline.total_evals_of(&exprs),
        0,
        f.num_instrs()
    );
    for alg in PreAlgorithm::ALL {
        let o = optimize(&f, alg).unwrap();
        let mut cleaned = o.function.clone();
        passes::copy_propagation(&mut cleaned);
        passes::dce(&mut cleaned);
        let dynamic = run(&o.function, &inputs, 5_000_000);
        assert_eq!(dynamic.trace, baseline.trace, "behaviour preserved");
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>10} {:>12} {:>12}",
            alg.name(),
            o.transform.stats.insertions,
            o.transform.stats.deletions,
            o.transform.stats.temps,
            dynamic.total_evals_of(&exprs),
            metrics::live_points(&o.function, &o.transform.temp_vars()),
            cleaned.num_instrs(),
        );
    }
    println!(
        "\nReading: busy (bcm) and lazy agree on dynamic evaluations — both are\n\
         computationally optimal — but lazy's temporaries occupy far fewer live\n\
         points; morel-renvoise eliminates less (no edge placements)."
    );
}
