//! Reproduces the paper's running example (figures F1–F5): prints the
//! flow graph, every analysis predicate table, and the busy / lazy
//! transformation results side by side.
//!
//! ```sh
//! cargo run --example paper_figure
//! ```

use lcm::core::figures::running_example;
use lcm::core::{
    busy_plan, lazy_edge_plan, lazy_node_plan, metrics, optimize, report, ExprUniverse,
    GlobalAnalyses, LocalPredicates, PreAlgorithm,
};
use lcm::ir::dot;

fn main() {
    let f = running_example();
    let uni = ExprUniverse::of(&f);
    let local = LocalPredicates::compute(&f, &uni);
    let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();

    println!("=== F1: the running example ===\n{f}\n");
    println!("(Graphviz available — pipe the following into `dot -Tpng`)\n");
    println!("{}", dot::render(&f, |_| None));

    println!("=== F3: local predicates and safety analyses ===");
    print!("{}", report::safety_table(&f, &uni, &local, &ga));
    println!("\nEARLIEST:");
    print!("{}", report::earliest_report(&f, &uni, &ga));

    println!("\n=== F2: busy code motion (earliest placement) ===");
    let bcm = busy_plan(&f, &uni, &local, &ga);
    let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
    print!("{}", report::plan_report(&f, &uni, &bcm));
    println!("{}\n", busy.function);

    println!("=== F4: the delay/latest/isolated cascade (node formulation) ===");
    let node = lazy_node_plan(&f, true).unwrap();
    print!("{}", report::node_cascade_table(&node));

    println!("\n=== F5: lazy code motion result ===");
    let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
    print!("{}", report::plan_report(&f, &uni, &lazy.plan));
    print!("{}", report::delete_report(&f, &uni, &lazy.delete));
    let lazy_out = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    println!("\n{}\n", lazy_out.function);

    let busy_points = metrics::live_points(&busy.function, &busy.transform.temp_vars());
    let lazy_points = metrics::live_points(&lazy_out.function, &lazy_out.transform.temp_vars());
    println!("temporary live-range size: busy {busy_points} points, lazy {lazy_points} points");
}
