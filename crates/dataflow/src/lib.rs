//! A dense bit-vector dataflow framework.
//!
//! Lazy Code Motion's defining property is that it needs only
//! **unidirectional bit-vector** analyses — the cheapest class of dataflow
//! problems. This crate provides exactly that machinery:
//!
//! * [`BitSet`] — a dense, word-packed bit set with the usual lattice
//!   operations;
//! * [`Problem`] — a gen/kill dataflow problem over a
//!   [`Function`](lcm_ir::Function)'s CFG, forward or backward, with
//!   intersection ([`Confluence::Must`]) or union ([`Confluence::May`])
//!   confluence, plus optional per-edge gen sets (needed by the LATER
//!   analysis of lazy code motion);
//! * two solvers — round-robin over a depth-first ordering
//!   ([`Problem::solve`]) and a change-driven worklist solver
//!   ([`Problem::solve_worklist`]) — which produce identical fixpoints;
//! * [`CfgView`] — precomputed traversal orders and adjacency, built once
//!   per function and shared across solves via [`Problem::solve_in`] /
//!   [`Problem::solve_worklist_in`] (how the fused LCM pipeline runs its
//!   four analyses);
//! * [`SolveStats`] — iteration / visit / word-operation counters used by
//!   the complexity experiments (LCM vs. the bidirectional Morel–Renvoise
//!   system);
//! * [`analyses`] — canned variable-level problems (liveness, definite
//!   assignment) shared across the workspace.
//!
//! # Example: reaching "taint" as a forward may-problem
//!
//! ```
//! use lcm_dataflow::{Confluence, Direction, Problem, Transfer};
//! use lcm_ir::parse_function;
//!
//! let f = parse_function(
//!     "fn g {
//!      entry:
//!        jmp mid
//!      mid:
//!        br c, mid, end
//!      end:
//!        ret
//!      }",
//! )?;
//! // One bit, generated in `mid`, never killed.
//! let mid = f.block_by_name("mid").unwrap();
//! let mut transfer = vec![Transfer::identity(1); f.num_blocks()];
//! transfer[mid.index()].gen.insert(0);
//! let problem = Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer);
//! let solution = problem.solve();
//! assert!(solution.ins[mid.index()].contains(0)); // reaches around the loop
//! assert!(!solution.ins[f.entry().index()].contains(0));
//! assert!(solution.ins[f.exit().index()].contains(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bitset;
mod error;
mod problem;
mod solver;
mod stats;
mod view;

pub mod analyses;

pub use bitset::BitSet;
pub use error::{ShapeMismatch, SolverDiverged};
pub use problem::{Confluence, Direction, Problem, Solution, Transfer};
pub use stats::SolveStats;
pub use view::CfgView;
