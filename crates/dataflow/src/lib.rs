//! A dense bit-vector dataflow framework.
//!
//! Lazy Code Motion's defining property is that it needs only
//! **unidirectional bit-vector** analyses — the cheapest class of dataflow
//! problems. This crate provides exactly that machinery:
//!
//! * [`BitSet`] — a dense, word-packed bit set with the usual lattice
//!   operations, plus the raw `&[u64]` row kernels ([`union_rows`],
//!   [`intersect_rows`], [`copy_row_changed`], …) it shares with
//!   [`BitMatrix`];
//! * [`BitMatrix`] — a flat `n_blocks × nbits` bit matrix: one analysis
//!   state in one contiguous allocation, rows exposed as slice views;
//! * [`Problem`] — a gen/kill dataflow problem over a
//!   [`Function`](lcm_ir::Function)'s CFG, forward or backward, with
//!   intersection ([`Confluence::Must`]) or union ([`Confluence::May`])
//!   confluence, plus optional per-edge gen sets (needed by the LATER
//!   analysis of lazy code motion);
//! * three solver strategies ([`SolveStrategy`]) — round-robin sweeps, a
//!   change-driven FIFO worklist, and an SCC-condensed priority worklist
//!   that drains each strongly connected component to fixpoint before
//!   advancing — which produce identical fixpoints;
//! * [`SolverScratch`] — a reusable solver arena (state matrices, worklist
//!   deque, in-queue bitmap, change flags) passed to
//!   [`Problem::solve_with`], giving O(1) amortized heap allocations per
//!   solve when held across functions;
//! * [`CfgView`] — precomputed traversal orders, adjacency and the
//!   one-shot Tarjan SCC condensation, built once per function and shared
//!   across solves (how the fused LCM pipeline runs its four analyses);
//! * [`SolveStats`] — iteration / visit / revisit / word-operation /
//!   allocation counters used by the complexity experiments (LCM vs. the
//!   bidirectional Morel–Renvoise system) and the perf baseline;
//! * [`analyses`] — canned variable-level problems (liveness, definite
//!   assignment) shared across the workspace.
//!
//! # Example: reaching "taint" as a forward may-problem
//!
//! ```
//! use lcm_dataflow::{Confluence, Direction, Problem, Transfer};
//! use lcm_ir::parse_function;
//!
//! let f = parse_function(
//!     "fn g {
//!      entry:
//!        jmp mid
//!      mid:
//!        br c, mid, end
//!      end:
//!        ret
//!      }",
//! )?;
//! // One bit, generated in `mid`, never killed.
//! let mid = f.block_by_name("mid").unwrap();
//! let mut transfer = vec![Transfer::identity(1); f.num_blocks()];
//! transfer[mid.index()].gen.insert(0);
//! let problem = Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer);
//! let solution = problem.solve();
//! assert!(solution.ins.contains(mid.index(), 0)); // reaches around the loop
//! assert!(!solution.ins.contains(f.entry().index(), 0));
//! assert!(solution.ins.contains(f.exit().index(), 0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bitmatrix;
mod error;
mod problem;
mod solver;
mod stats;
mod view;

pub mod analyses;
pub mod bitset;

pub use bitmatrix::BitMatrix;
pub use bitset::{
    copy_row_changed, count_row, difference_rows, intersect_rows, row_contains, row_is_empty,
    union_rows, BitIter, BitSet, WIDE_ROW_WORDS,
};
pub use error::{ShapeMismatch, SolverDiverged};
pub use problem::{Confluence, Direction, Problem, Solution, Transfer};
pub use solver::{DeltaSolveInfo, SolveStrategy, SolverScratch};
pub use stats::SolveStats;
pub use view::CfgView;
