//! Fixpoint solvers: round-robin over a depth-first ordering, and worklist.

use std::collections::VecDeque;

use lcm_ir::{graph, BlockId};

use crate::bitset::BitSet;
use crate::problem::{Confluence, Direction, Problem, Solution};
use crate::stats::SolveStats;

impl Problem<'_> {
    /// Solves by round-robin iteration over reverse postorder (forward
    /// problems) or postorder (backward problems) until a full sweep changes
    /// nothing. `stats.iterations` counts the sweeps.
    ///
    /// For rapid gen/kill frameworks like the ones here this converges in
    /// `d + 2` sweeps where `d` is the loop-connectedness of the CFG — the
    /// classical result underlying the paper's "as cheap as unidirectional
    /// analyses" complexity claim.
    pub fn solve(&self) -> Solution {
        let mut state = State::new(self);
        let order = match self.direction {
            Direction::Forward => graph::reverse_postorder(self.fun),
            Direction::Backward => graph::postorder(self.fun),
        };
        loop {
            state.stats.iterations += 1;
            let mut changed = false;
            for &b in &order {
                changed |= state.update(self, b);
            }
            if !changed {
                break;
            }
        }
        state.into_solution()
    }

    /// Solves with a FIFO worklist seeded in depth-first order. Produces the
    /// same fixpoint as [`solve`](Self::solve) (the framework is monotone);
    /// `stats.node_visits` counts worklist pops and `stats.iterations` is
    /// left at zero.
    pub fn solve_worklist(&self) -> Solution {
        let mut state = State::new(self);
        let order = match self.direction {
            Direction::Forward => graph::reverse_postorder(self.fun),
            Direction::Backward => graph::postorder(self.fun),
        };
        let preds = self.fun.preds();
        let mut queue: VecDeque<BlockId> = order.iter().copied().collect();
        let mut queued = vec![true; self.fun.num_blocks()];
        while let Some(b) = queue.pop_front() {
            queued[b.index()] = false;
            if state.update(self, b) {
                // Push the blocks whose input depends on b.
                let dependents: Vec<BlockId> = match self.direction {
                    Direction::Forward => self.fun.succs(b).collect(),
                    Direction::Backward => preds[b.index()].clone(),
                };
                for d in dependents {
                    if !queued[d.index()] {
                        queued[d.index()] = true;
                        queue.push_back(d);
                    }
                }
            }
        }
        state.into_solution()
    }
}

/// Mutable solver state shared by both strategies.
struct State {
    ins: Vec<BitSet>,
    outs: Vec<BitSet>,
    stats: SolveStats,
    /// Predecessor table, computed once.
    preds: Vec<Vec<BlockId>>,
    /// Scratch buffer for edge-gen augmented meets.
    scratch: BitSet,
}

impl State {
    fn new(p: &Problem<'_>) -> State {
        let n = p.fun.num_blocks();
        let init = match p.confluence {
            Confluence::Must => BitSet::full(p.nbits),
            Confluence::May => BitSet::new(p.nbits),
        };
        let mut ins = vec![init.clone(); n];
        let mut outs = vec![init; n];
        match p.direction {
            Direction::Forward => ins[p.fun.entry().index()] = p.boundary.clone(),
            Direction::Backward => outs[p.fun.exit().index()] = p.boundary.clone(),
        }
        State {
            ins,
            outs,
            stats: SolveStats::new(),
            preds: p.fun.preds(),
            scratch: BitSet::new(p.nbits),
        }
    }

    /// Recomputes block `b`'s values; returns `true` if its *output side*
    /// (the side other blocks read) changed.
    fn update(&mut self, p: &Problem<'_>, b: BlockId) -> bool {
        self.stats.node_visits += 1;
        let words = self.scratch.num_words() as u64;
        match p.direction {
            Direction::Forward => {
                let boundary = b == p.fun.entry();
                if !boundary {
                    let meet = self.meet_incoming(p, b);
                    self.ins[b.index()] = meet;
                }
                let mut out = self.ins[b.index()].clone();
                self.stats.word_ops += words;
                p.transfer[b.index()].apply(&mut out, &mut self.stats);
                let changed = out != self.outs[b.index()];
                self.outs[b.index()] = out;
                changed
            }
            Direction::Backward => {
                let boundary = b == p.fun.exit();
                if !boundary {
                    let meet = self.meet_outgoing(p, b);
                    self.outs[b.index()] = meet;
                }
                let mut inn = self.outs[b.index()].clone();
                self.stats.word_ops += words;
                p.transfer[b.index()].apply(&mut inn, &mut self.stats);
                let changed = inn != self.ins[b.index()];
                self.ins[b.index()] = inn;
                changed
            }
        }
    }

    fn meet_incoming(&mut self, p: &Problem<'_>, b: BlockId) -> BitSet {
        let mut acc = match p.confluence {
            Confluence::Must => BitSet::full(p.nbits),
            Confluence::May => BitSet::new(p.nbits),
        };
        let words = acc.num_words() as u64;
        if let Some((edges, gens)) = &p.edge_gen {
            for &eid in edges.incoming(b) {
                let e = edges.edge(eid);
                self.scratch.copy_from(&self.outs[e.from.index()]);
                self.scratch.union_with(&gens[eid.index()]);
                meet_into(&mut acc, &self.scratch, p.confluence);
                self.stats.word_ops += 3 * words;
            }
        } else {
            for &pred in &self.preds[b.index()] {
                meet_into(&mut acc, &self.outs[pred.index()], p.confluence);
                self.stats.word_ops += words;
            }
        }
        acc
    }

    fn meet_outgoing(&mut self, p: &Problem<'_>, b: BlockId) -> BitSet {
        let mut acc = match p.confluence {
            Confluence::Must => BitSet::full(p.nbits),
            Confluence::May => BitSet::new(p.nbits),
        };
        let words = acc.num_words() as u64;
        if let Some((edges, gens)) = &p.edge_gen {
            for &eid in edges.outgoing(b) {
                let e = edges.edge(eid);
                self.scratch.copy_from(&self.ins[e.to.index()]);
                self.scratch.union_with(&gens[eid.index()]);
                meet_into(&mut acc, &self.scratch, p.confluence);
                self.stats.word_ops += 3 * words;
            }
        } else {
            for succ in p.fun.succs(b) {
                meet_into(&mut acc, &self.ins[succ.index()], p.confluence);
                self.stats.word_ops += words;
            }
        }
        acc
    }

    fn into_solution(self) -> Solution {
        Solution {
            ins: self.ins,
            outs: self.outs,
            stats: self.stats,
        }
    }
}

fn meet_into(acc: &mut BitSet, value: &BitSet, confluence: Confluence) {
    match confluence {
        Confluence::Must => acc.intersect_with(value),
        Confluence::May => acc.union_with(value),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Transfer;
    use lcm_ir::{parse_function, EdgeList};

    fn loop_fn() -> lcm_ir::Function {
        parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               jmp head
             done:
               ret
             }",
        )
        .unwrap()
    }

    #[test]
    fn forward_may_reaches_through_loop() {
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer);
        let s = p.solve();
        let head = f.block_by_name("head").unwrap();
        assert!(s.ins[head.index()].contains(0)); // around the back edge
        assert!(!s.ins[head.index()].contains(1));
        assert!(s.ins[f.exit().index()].contains(0));
        assert!(!s.ins[body.index()].contains(1));
        assert!(s.stats.iterations >= 2);
        assert!(s.stats.word_ops > 0);
    }

    #[test]
    fn forward_must_availability_shape() {
        // Fact available only if generated on all paths.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let r = f.block_by_name("r").unwrap();
        let j = f.block_by_name("j").unwrap();
        // Bit 0 gen'd in both arms; bit 1 only in l.
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[l.index()].gen.insert(0);
        transfer[l.index()].gen.insert(1);
        transfer[r.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::Must, transfer);
        let s = p.solve();
        assert!(s.ins[j.index()].contains(0));
        assert!(!s.ins[j.index()].contains(1));
        assert!(!s.ins[l.index()].contains(0)); // entry boundary is empty
    }

    #[test]
    fn backward_must_anticipability_shape() {
        // Bit anticipated at entry iff computed on every path to exit.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let j = f.block_by_name("j").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[l.index()].gen.insert(0); // computed only on one arm
        transfer[j.index()].gen.insert(1); // computed at the join
        let p = Problem::new(&f, 2, Direction::Backward, Confluence::Must, transfer);
        let s = p.solve();
        assert!(!s.ins[f.entry().index()].contains(0));
        assert!(s.ins[f.entry().index()].contains(1));
        assert!(s.outs[f.exit().index()].is_empty()); // boundary
    }

    #[test]
    fn kill_blocks_propagation() {
        let f = loop_fn();
        let head = f.block_by_name("head").unwrap();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(1); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        transfer[head.index()].kill.insert(0);
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer);
        let s = p.solve();
        assert!(s.ins[head.index()].contains(0));
        assert!(!s.outs[head.index()].contains(0));
        assert!(!s.ins[f.exit().index()].contains(0));
    }

    #[test]
    fn worklist_matches_round_robin() {
        let f = parse_function(
            "fn m {
             entry:
               br c, a, b
             a:
               br d, inner, join
             inner:
               br e, inner, a
             b:
               jmp join
             join:
               br g, entry2, done
             entry2:
               jmp join
             done:
               ret
             }",
        )
        .unwrap();
        for direction in [Direction::Forward, Direction::Backward] {
            for confluence in [Confluence::Must, Confluence::May] {
                let mut transfer = vec![Transfer::identity(8); f.num_blocks()];
                for (i, t) in transfer.iter_mut().enumerate() {
                    t.gen.insert(i % 8);
                    t.kill.insert((i + 3) % 8);
                }
                let p = Problem::new(&f, 8, direction, confluence, transfer);
                let a = p.solve();
                let b = p.solve_worklist();
                assert_eq!(a.ins, b.ins, "{direction:?} {confluence:?}");
                assert_eq!(a.outs, b.outs, "{direction:?} {confluence:?}");
            }
        }
    }

    #[test]
    fn edge_gen_feeds_only_that_edge() {
        // Diamond; edge gen on the entry→l edge only. Must-confluence at j
        // then requires the fact from both edges, so it must NOT reach j,
        // but it must be in l's IN.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let j = f.block_by_name("j").unwrap();
        let edges = EdgeList::new(&f);
        let mut gens = vec![BitSet::new(1); edges.len()];
        let (to_l, _) = edges
            .iter()
            .find(|(_, e)| e.from == f.entry() && e.to == l)
            .unwrap();
        gens[to_l.index()].insert(0);
        let transfer = vec![Transfer::identity(1); f.num_blocks()];
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::Must, transfer)
            .with_edge_gen(edges, gens);
        let s = p.solve();
        assert!(s.ins[l.index()].contains(0));
        assert!(!s.ins[j.index()].contains(0));
        let s2 = p.solve_worklist();
        assert_eq!(s.ins, s2.ins);
    }

    #[test]
    fn boundary_is_respected() {
        let f = loop_fn();
        let transfer = vec![Transfer::identity(3); f.num_blocks()];
        let mut boundary = BitSet::new(3);
        boundary.insert(2);
        let p = Problem::new(&f, 3, Direction::Forward, Confluence::Must, transfer)
            .with_boundary(boundary);
        let s = p.solve();
        assert!(s.ins[f.exit().index()].contains(2));
        assert_eq!(s.ins[f.entry().index()].iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "one transfer function per block")]
    fn wrong_transfer_count_panics() {
        let f = loop_fn();
        let _ = Problem::new(&f, 1, Direction::Forward, Confluence::May, vec![]);
    }
}
