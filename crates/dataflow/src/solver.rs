//! Fixpoint solvers: round-robin over a depth-first ordering, and worklist.

use std::collections::VecDeque;

use lcm_ir::BlockId;

use crate::bitset::BitSet;
use crate::error::SolverDiverged;
use crate::problem::{Confluence, Direction, Problem, Solution};
use crate::stats::SolveStats;
use crate::view::CfgView;

impl Problem<'_> {
    /// The round-robin sweep budget: the CFG's retreating-edge count (an
    /// upper bound on its loop-connectedness `d`) plus a margin over the
    /// classical `d + 2` convergence bound for rapid frameworks, unless
    /// overridden by [`with_sweep_bound`](Self::with_sweep_bound). A honest
    /// monotone gen/kill problem always converges within this budget; only
    /// corrupted or non-monotone systems exhaust it.
    fn round_robin_bound(&self, view: &CfgView) -> usize {
        self.sweep_bound
            .unwrap_or_else(|| view.retreating_edges() + 4)
    }

    /// The worklist pop budget. The worklist has no sweep structure, so the
    /// budget comes from the lattice-height argument instead: under a
    /// monotone transfer each block's output side changes at most
    /// `nbits + 1` times (once per bit plus the first application), and
    /// every change re-enqueues at most its dependents — so total pops are
    /// bounded by `n + (nbits + 2)·(E + 1)` with room to spare. An explicit
    /// [`with_sweep_bound`](Self::with_sweep_bound) of `s` is interpreted as
    /// `s` whole sweeps, i.e. `s · n` pops.
    fn worklist_bound(&self, view: &CfgView) -> usize {
        match self.sweep_bound {
            Some(s) => s * view.num_blocks().max(1),
            None => view.num_blocks() + (self.nbits + 2) * (view.num_edges() + 1) + 8,
        }
    }

    /// Solves by round-robin iteration over reverse postorder (forward
    /// problems) or postorder (backward problems) until a full sweep changes
    /// nothing. `stats.iterations` counts the sweeps.
    ///
    /// Computes a fresh [`CfgView`] for the function; when running several
    /// analyses over one CFG, build the view once and use
    /// [`solve_in`](Self::solve_in).
    ///
    /// # Panics
    ///
    /// Panics if the iteration exceeds its sweep budget (impossible for a
    /// monotone problem); [`try_solve`](Self::try_solve) reports that as a
    /// [`SolverDiverged`] instead.
    pub fn solve(&self) -> Solution {
        self.try_solve().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve`](Self::solve): returns [`SolverDiverged`] instead of
    /// panicking when the sweep budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the fixpoint iteration exceeds the
    /// sweep budget (see [`with_sweep_bound`](Self::with_sweep_bound)).
    pub fn try_solve(&self) -> Result<Solution, SolverDiverged> {
        self.try_solve_in(&CfgView::new(self.fun))
    }

    /// Like [`solve`](Self::solve), but reuses a precomputed [`CfgView`].
    ///
    /// For rapid gen/kill frameworks like the ones here this converges in
    /// `d + 2` sweeps where `d` is the loop-connectedness of the CFG — the
    /// classical result underlying the paper's "as cheap as unidirectional
    /// analyses" complexity claim.
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function, or if
    /// the sweep budget is exhausted.
    pub fn solve_in(&self, view: &CfgView) -> Solution {
        self.try_solve_in(view).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve_in`](Self::solve_in).
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the fixpoint iteration exceeds the
    /// sweep budget.
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function (that is
    /// a structural misuse of the API, not a data-dependent failure).
    pub fn try_solve_in(&self, view: &CfgView) -> Result<Solution, SolverDiverged> {
        let mut state = State::new(self, view);
        let order = match self.direction {
            Direction::Forward => view.rpo(),
            Direction::Backward => view.postorder(),
        };
        let bound = self.round_robin_bound(view);
        loop {
            if state.stats.iterations >= bound {
                return Err(SolverDiverged {
                    analysis: self.name,
                    sweeps: bound,
                });
            }
            state.stats.iterations += 1;
            let mut changed = false;
            for &b in order {
                changed |= state.update(self, view, b);
            }
            if !changed {
                break;
            }
        }
        Ok(state.into_solution())
    }

    /// Solves with a FIFO worklist seeded in depth-first order. Produces the
    /// same fixpoint as [`solve`](Self::solve) (the framework is monotone);
    /// `stats.node_visits` counts worklist pops and `stats.iterations` is
    /// left at zero.
    ///
    /// Computes a fresh [`CfgView`] for the function; when running several
    /// analyses over one CFG, build the view once and use
    /// [`solve_worklist_in`](Self::solve_worklist_in).
    ///
    /// # Panics
    ///
    /// Panics if the pop budget is exhausted (impossible for a monotone
    /// problem); [`try_solve_worklist`](Self::try_solve_worklist) reports
    /// that as a [`SolverDiverged`] instead.
    pub fn solve_worklist(&self) -> Solution {
        self.try_solve_worklist().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve_worklist`](Self::solve_worklist).
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the propagation exceeds its pop budget.
    pub fn try_solve_worklist(&self) -> Result<Solution, SolverDiverged> {
        self.try_solve_worklist_in(&CfgView::new(self.fun))
    }

    /// Like [`solve_worklist`](Self::solve_worklist), but reuses a
    /// precomputed [`CfgView`].
    ///
    /// Propagation is change-driven: a block's dependents (successors for
    /// forward problems, predecessors for backward ones) are re-enqueued
    /// only when its output side actually changed, detected word-granularly
    /// by [`BitSet::copy_from_changed`], and a popped block whose meet is
    /// unchanged skips its transfer entirely.
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function, or if
    /// the pop budget is exhausted.
    pub fn solve_worklist_in(&self, view: &CfgView) -> Solution {
        self.try_solve_worklist_in(view)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve_worklist_in`](Self::solve_worklist_in).
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the propagation exceeds its pop budget
    /// (reported in sweep-equivalents: pops divided by the block count).
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function (that is
    /// a structural misuse of the API, not a data-dependent failure).
    pub fn try_solve_worklist_in(&self, view: &CfgView) -> Result<Solution, SolverDiverged> {
        let mut state = State::new(self, view);
        let order = match self.direction {
            Direction::Forward => view.rpo(),
            Direction::Backward => view.postorder(),
        };
        let bound = self.worklist_bound(view);
        let mut pops = 0usize;
        let mut queue: VecDeque<BlockId> = order.iter().copied().collect();
        let mut queued = vec![true; self.fun.num_blocks()];
        while let Some(b) = queue.pop_front() {
            pops += 1;
            if pops > bound {
                return Err(SolverDiverged {
                    analysis: self.name,
                    sweeps: bound / self.fun.num_blocks().max(1),
                });
            }
            queued[b.index()] = false;
            if state.update(self, view, b) {
                // Push the blocks whose input depends on b.
                let dependents: &[BlockId] = match self.direction {
                    Direction::Forward => view.succs(b),
                    Direction::Backward => view.preds(b),
                };
                for &d in dependents {
                    if !queued[d.index()] {
                        queued[d.index()] = true;
                        queue.push_back(d);
                    }
                }
            }
        }
        Ok(state.into_solution())
    }
}

/// Mutable solver state shared by both strategies.
struct State {
    ins: Vec<BitSet>,
    outs: Vec<BitSet>,
    stats: SolveStats,
    /// Scratch buffer for edge-gen augmented meets.
    scratch: BitSet,
    /// Meet accumulator, doubling as the transfer buffer — values flow
    /// meet → dirty-check → transfer → output without intermediate clones.
    acc: BitSet,
    /// Whether block `b`'s transfer has been applied at least once. Until it
    /// has, an unchanged meet must not short-circuit the update (the initial
    /// in/out values predate any transfer).
    applied: Vec<bool>,
}

impl State {
    fn new(p: &Problem<'_>, view: &CfgView) -> State {
        let n = p.fun.num_blocks();
        assert_eq!(
            view.num_blocks(),
            n,
            "CfgView built for a different function"
        );
        let init = match p.confluence {
            Confluence::Must => BitSet::full(p.nbits),
            Confluence::May => BitSet::new(p.nbits),
        };
        let mut ins = vec![init.clone(); n];
        let mut outs = vec![init; n];
        match p.direction {
            Direction::Forward => ins[p.fun.entry().index()] = p.boundary.clone(),
            Direction::Backward => outs[p.fun.exit().index()] = p.boundary.clone(),
        }
        State {
            ins,
            outs,
            stats: SolveStats::new(),
            scratch: BitSet::new(p.nbits),
            acc: BitSet::new(p.nbits),
            applied: vec![false; n],
        }
    }

    /// Recomputes block `b`'s values; returns `true` if its *output side*
    /// (the side other blocks read) changed. The meet lands in the `acc`
    /// buffer; if it left the block's input side unchanged (word-granular
    /// check) and the transfer has already been applied, the transfer and
    /// output comparison are skipped entirely.
    ///
    /// Both directions share one body: `inp` is the block's meet destination
    /// (`ins` forward, `outs` backward) and `outp` the side its neighbors
    /// read — which is also the array the meet sources come from.
    fn update(&mut self, p: &Problem<'_>, view: &CfgView, b: BlockId) -> bool {
        self.stats.node_visits += 1;
        let i = b.index();
        let words = self.scratch.num_words() as u64;
        let (inp, outp) = match p.direction {
            Direction::Forward => (&mut self.ins, &mut self.outs),
            Direction::Backward => (&mut self.outs, &mut self.ins),
        };
        let boundary = match p.direction {
            Direction::Forward => b == p.fun.entry(),
            Direction::Backward => b == p.fun.exit(),
        };
        let dirty = if boundary {
            // The boundary value never changes, so the transfer needs to
            // run exactly once.
            self.acc.copy_from(&inp[i]);
            !self.applied[i]
        } else {
            match p.confluence {
                Confluence::Must => self.acc.insert_all(),
                Confluence::May => self.acc.clear(),
            }
            if let Some((edges, gens)) = &p.edge_gen {
                let eids = match p.direction {
                    Direction::Forward => edges.incoming(b),
                    Direction::Backward => edges.outgoing(b),
                };
                for &eid in eids {
                    let e = edges.edge(eid);
                    let nb = match p.direction {
                        Direction::Forward => e.from,
                        Direction::Backward => e.to,
                    };
                    self.scratch.copy_from(&outp[nb.index()]);
                    self.scratch.union_with(&gens[eid.index()]);
                    meet_into(&mut self.acc, &self.scratch, p.confluence);
                    self.stats.word_ops += 3 * words;
                }
            } else {
                let neighbors = match p.direction {
                    Direction::Forward => view.preds(b),
                    Direction::Backward => view.succs(b),
                };
                for &nb in neighbors {
                    meet_into(&mut self.acc, &outp[nb.index()], p.confluence);
                    self.stats.word_ops += words;
                }
            }
            let meet_changed = inp[i].copy_from_changed(&self.acc);
            self.stats.word_ops += words;
            meet_changed || !self.applied[i]
        };
        if !dirty {
            return false;
        }
        p.transfer[i].apply(&mut self.acc, &mut self.stats);
        self.applied[i] = true;
        let changed = outp[i].copy_from_changed(&self.acc);
        self.stats.word_ops += words;
        changed
    }

    fn into_solution(self) -> Solution {
        Solution {
            ins: self.ins,
            outs: self.outs,
            stats: self.stats,
        }
    }
}

fn meet_into(acc: &mut BitSet, value: &BitSet, confluence: Confluence) {
    match confluence {
        Confluence::Must => acc.intersect_with(value),
        Confluence::May => acc.union_with(value),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Transfer;
    use lcm_ir::{parse_function, EdgeList};

    fn loop_fn() -> lcm_ir::Function {
        parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               jmp head
             done:
               ret
             }",
        )
        .unwrap()
    }

    #[test]
    fn forward_may_reaches_through_loop() {
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer);
        let s = p.solve();
        let head = f.block_by_name("head").unwrap();
        assert!(s.ins[head.index()].contains(0)); // around the back edge
        assert!(!s.ins[head.index()].contains(1));
        assert!(s.ins[f.exit().index()].contains(0));
        assert!(!s.ins[body.index()].contains(1));
        assert!(s.stats.iterations >= 2);
        assert!(s.stats.word_ops > 0);
    }

    #[test]
    fn forward_must_availability_shape() {
        // Fact available only if generated on all paths.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let r = f.block_by_name("r").unwrap();
        let j = f.block_by_name("j").unwrap();
        // Bit 0 gen'd in both arms; bit 1 only in l.
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[l.index()].gen.insert(0);
        transfer[l.index()].gen.insert(1);
        transfer[r.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::Must, transfer);
        let s = p.solve();
        assert!(s.ins[j.index()].contains(0));
        assert!(!s.ins[j.index()].contains(1));
        assert!(!s.ins[l.index()].contains(0)); // entry boundary is empty
    }

    #[test]
    fn backward_must_anticipability_shape() {
        // Bit anticipated at entry iff computed on every path to exit.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let j = f.block_by_name("j").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[l.index()].gen.insert(0); // computed only on one arm
        transfer[j.index()].gen.insert(1); // computed at the join
        let p = Problem::new(&f, 2, Direction::Backward, Confluence::Must, transfer);
        let s = p.solve();
        assert!(!s.ins[f.entry().index()].contains(0));
        assert!(s.ins[f.entry().index()].contains(1));
        assert!(s.outs[f.exit().index()].is_empty()); // boundary
    }

    #[test]
    fn kill_blocks_propagation() {
        let f = loop_fn();
        let head = f.block_by_name("head").unwrap();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(1); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        transfer[head.index()].kill.insert(0);
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer);
        let s = p.solve();
        assert!(s.ins[head.index()].contains(0));
        assert!(!s.outs[head.index()].contains(0));
        assert!(!s.ins[f.exit().index()].contains(0));
    }

    #[test]
    fn worklist_matches_round_robin() {
        let f = parse_function(
            "fn m {
             entry:
               br c, a, b
             a:
               br d, inner, join
             inner:
               br e, inner, a
             b:
               jmp join
             join:
               br g, entry2, done
             entry2:
               jmp join
             done:
               ret
             }",
        )
        .unwrap();
        for direction in [Direction::Forward, Direction::Backward] {
            for confluence in [Confluence::Must, Confluence::May] {
                let mut transfer = vec![Transfer::identity(8); f.num_blocks()];
                for (i, t) in transfer.iter_mut().enumerate() {
                    t.gen.insert(i % 8);
                    t.kill.insert((i + 3) % 8);
                }
                let p = Problem::new(&f, 8, direction, confluence, transfer);
                let a = p.solve();
                let b = p.solve_worklist();
                assert_eq!(a.ins, b.ins, "{direction:?} {confluence:?}");
                assert_eq!(a.outs, b.outs, "{direction:?} {confluence:?}");
            }
        }
    }

    #[test]
    fn edge_gen_feeds_only_that_edge() {
        // Diamond; edge gen on the entry→l edge only. Must-confluence at j
        // then requires the fact from both edges, so it must NOT reach j,
        // but it must be in l's IN.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let j = f.block_by_name("j").unwrap();
        let edges = EdgeList::new(&f);
        let mut gens = vec![BitSet::new(1); edges.len()];
        let (to_l, _) = edges
            .iter()
            .find(|(_, e)| e.from == f.entry() && e.to == l)
            .unwrap();
        gens[to_l.index()].insert(0);
        let transfer = vec![Transfer::identity(1); f.num_blocks()];
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::Must, transfer)
            .with_edge_gen(edges, gens);
        let s = p.solve();
        assert!(s.ins[l.index()].contains(0));
        assert!(!s.ins[j.index()].contains(0));
        let s2 = p.solve_worklist();
        assert_eq!(s.ins, s2.ins);
    }

    #[test]
    fn boundary_is_respected() {
        let f = loop_fn();
        let transfer = vec![Transfer::identity(3); f.num_blocks()];
        let mut boundary = BitSet::new(3);
        boundary.insert(2);
        let p = Problem::new(&f, 3, Direction::Forward, Confluence::Must, transfer)
            .with_boundary(boundary);
        let s = p.solve();
        assert!(s.ins[f.exit().index()].contains(2));
        assert_eq!(s.ins[f.entry().index()].iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "one transfer function per block")]
    fn wrong_transfer_count_panics() {
        let f = loop_fn();
        let _ = Problem::new(&f, 1, Direction::Forward, Confluence::May, vec![]);
    }

    #[test]
    fn shared_view_matches_fresh_view() {
        let f = loop_fn();
        let view = CfgView::new(&f);
        let body = f.block_by_name("body").unwrap();
        for direction in [Direction::Forward, Direction::Backward] {
            for confluence in [Confluence::Must, Confluence::May] {
                let mut transfer = vec![Transfer::identity(4); f.num_blocks()];
                transfer[body.index()].gen.insert(1);
                transfer[body.index()].kill.insert(2);
                let p = Problem::new(&f, 4, direction, confluence, transfer);
                let fresh = p.solve();
                let shared = p.solve_in(&view);
                assert_eq!(fresh.ins, shared.ins);
                assert_eq!(fresh.outs, shared.outs);
                let wl = p.solve_worklist_in(&view);
                assert_eq!(fresh.ins, wl.ins);
                assert_eq!(fresh.outs, wl.outs);
            }
        }
    }

    #[test]
    fn worklist_skips_unchanged_blocks() {
        // A long chain: the round-robin solver revisits every block each
        // sweep, while the change-driven worklist visits each block only as
        // its input actually changes — strictly fewer (or equal) visits.
        let mut text = String::from("fn chain {\n entry:\n jmp b0\n");
        for i in 0..20 {
            text.push_str(&format!(" b{i}:\n jmp b{}\n", i + 1));
        }
        text.push_str(" b20:\n ret\n }");
        let f = parse_function(&text).unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[f.entry().index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer);
        let rr = p.solve();
        let wl = p.solve_worklist();
        assert_eq!(rr.ins, wl.ins);
        assert!(
            wl.stats.node_visits <= rr.stats.node_visits,
            "worklist {} vs round-robin {}",
            wl.stats.node_visits,
            rr.stats.node_visits
        );
        assert!(wl.stats.word_ops <= rr.stats.word_ops);
    }

    #[test]
    fn tight_sweep_bound_reports_divergence() {
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer)
            .with_name("tight")
            .with_sweep_bound(1);
        let err = p.try_solve().unwrap_err();
        assert_eq!(err.analysis, "tight");
        assert_eq!(err.sweeps, 1);
        assert!(err.to_string().contains("tight"));
        let err = p.try_solve_worklist().unwrap_err();
        assert_eq!(err.analysis, "tight");
    }

    #[test]
    fn derived_bound_is_generous_enough() {
        // The default budget must never fire on an honest monotone problem,
        // even around loops; and the solution must match the worklist's.
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer);
        let rr = p.try_solve().unwrap();
        let wl = p.try_solve_worklist().unwrap();
        assert_eq!(rr.ins, wl.ins);
        let view = CfgView::new(&f);
        assert!((rr.stats.iterations as usize) <= view.retreating_edges() + 4);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn panicking_solver_reports_divergence_message() {
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(1); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p =
            Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer).with_sweep_bound(1);
        let _ = p.solve();
    }

    #[test]
    #[should_panic(expected = "different function")]
    fn mismatched_view_panics() {
        let f = loop_fn();
        let g = parse_function("fn tiny {\n entry:\n ret\n }").unwrap();
        let transfer = vec![Transfer::identity(1); f.num_blocks()];
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer);
        let _ = p.solve_in(&CfgView::new(&g));
    }
}
