//! Fixpoint solvers: round-robin over a depth-first ordering, a FIFO
//! worklist, and an SCC-condensed priority worklist — all running over one
//! reusable [`SolverScratch`] arena.
//!
//! The monotone gen/kill framework has a unique fixpoint, so every
//! strategy produces bit-identical [`Solution`]s; they differ only in
//! their cost counters ([`SolveStats`]). The scratch arena holds the
//! IN/OUT state as two flat [`BitMatrix`] values plus the worklist
//! machinery, and is reinitialised — *not* reallocated — per solve, so a
//! caller that keeps one scratch alive across many solves (the fused LCM
//! pipeline, the batch driver's pool workers) performs O(1) amortized
//! heap allocations per solve instead of O(blocks).

use std::collections::VecDeque;
use std::str::FromStr;

use lcm_ir::BlockId;

use crate::bitmatrix::BitMatrix;
use crate::bitset::{copy_row_changed, BitSet};
use crate::error::SolverDiverged;
use crate::problem::{Confluence, Direction, Problem, Solution};
use crate::stats::SolveStats;
use crate::view::CfgView;

/// Which fixpoint iteration schedule to run. All three reach the same
/// unique fixpoint; they differ in node revisits and sweep structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolveStrategy {
    /// Whole sweeps over reverse postorder (forward) / postorder
    /// (backward) until a sweep changes nothing.
    RoundRobin,
    /// Change-driven FIFO worklist seeded in depth-first order.
    Worklist,
    /// SCC-condensed priority worklist: drain each strongly connected
    /// component of the CFG to its local fixpoint before touching any
    /// component downstream of it. Because the condensation is acyclic,
    /// one topological pass reaches the global fixpoint — loopy regions
    /// never force revisits of the blocks around them.
    #[default]
    SccPriority,
}

impl SolveStrategy {
    /// All strategies, for equivalence sweeps.
    pub const ALL: [SolveStrategy; 3] = [
        SolveStrategy::RoundRobin,
        SolveStrategy::Worklist,
        SolveStrategy::SccPriority,
    ];

    /// The CLI / report name: `"rr"`, `"wl"` or `"scc"`.
    pub fn name(&self) -> &'static str {
        match self {
            SolveStrategy::RoundRobin => "rr",
            SolveStrategy::Worklist => "wl",
            SolveStrategy::SccPriority => "scc",
        }
    }
}

impl FromStr for SolveStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rr" | "round-robin" => Ok(SolveStrategy::RoundRobin),
            "wl" | "worklist" => Ok(SolveStrategy::Worklist),
            "scc" | "scc-priority" => Ok(SolveStrategy::SccPriority),
            other => Err(format!(
                "unknown solver strategy `{other}` (expected rr, wl or scc)"
            )),
        }
    }
}

/// A reusable arena holding everything a solve needs to mutate: the
/// IN/OUT bit matrices, the meet/transfer accumulators, the worklist
/// deque, the in-queue bitmap and the per-block change flags.
///
/// Create one (cheap, allocation-free) and pass it to
/// [`Problem::solve_with`] repeatedly; backing stores grow to the largest
/// problem seen and are then reused verbatim, so a long-running worker
/// performs O(1) amortized allocations per solve. Every solve fully
/// reinitialises the values, so no state leaks between solves (the
/// fault-injection hook [`poison_for_fault_injection`]
/// (Self::poison_for_fault_injection) exists precisely to prove the
/// downstream validators would catch such a leak).
#[derive(Debug, Default)]
pub struct SolverScratch {
    ins: BitMatrix,
    outs: BitMatrix,
    /// Meet accumulator, doubling as the transfer buffer — values flow
    /// meet → dirty-check → transfer → output without intermediate clones.
    acc: BitSet,
    /// Scratch for edge-gen augmented meets.
    tmp: BitSet,
    /// Whether block `b`'s transfer has been applied at least once this
    /// solve. Until it has, an unchanged meet must not short-circuit the
    /// update (the initial in/out values predate any transfer).
    applied: Vec<bool>,
    queue: VecDeque<BlockId>,
    queued: Vec<bool>,
    /// When set, the next [`prepare`](Self::prepare) skips value
    /// reinitialisation once — the fault-injection path that simulates a
    /// worker reusing stale solver state across functions.
    skip_reset_once: bool,
}

impl SolverScratch {
    /// An empty scratch; backing stores are allocated lazily by the first
    /// solve and grown only when a larger problem arrives.
    pub fn new() -> Self {
        Self::default()
    }

    /// The structural half of [`prepare`](Self::prepare): resizes every
    /// backing store for `p` (growing only when needed) without touching
    /// the IN/OUT values. Returns the growth count and whether the
    /// matrices already had the right shape (so their old values are still
    /// in place).
    fn prepare_structures(&mut self, p: &Problem<'_>, view: &CfgView) -> (u64, bool) {
        let n = p.fun.num_blocks();
        assert_eq!(
            view.num_blocks(),
            n,
            "CfgView built for a different function"
        );
        let mut grew = 0u64;
        let same_shape = self.ins.n_rows() == n && self.ins.nbits() == p.nbits;
        if !same_shape {
            grew += self.ins.reset(n, p.nbits) as u64;
            grew += self.outs.reset(n, p.nbits) as u64;
        }
        grew += self.acc.reset(p.nbits) as u64;
        grew += self.tmp.reset(p.nbits) as u64;
        if self.applied.capacity() < n {
            grew += 1;
        }
        self.applied.clear();
        self.applied.resize(n, false);
        if self.queued.capacity() < n {
            grew += 1;
        }
        self.queued.clear();
        self.queued.resize(n, false);
        self.queue.clear();
        if self.queue.capacity() < n {
            grew += 1;
            self.queue.reserve(n - self.queue.capacity());
        }
        (grew, same_shape)
    }

    /// Resizes the backing stores for `p` (growing only when needed) and
    /// reinitialises all values. Returns the number of backing-store
    /// growth events, i.e. actual heap allocations.
    fn prepare(&mut self, p: &Problem<'_>, view: &CfgView) -> u64 {
        let (grew, same_shape) = self.prepare_structures(p, view);
        let n = p.fun.num_blocks();

        if std::mem::take(&mut self.skip_reset_once) && same_shape {
            // Fault-injection path: leave whatever values are in the
            // matrices (poison) in place, exactly as a buggy reuse of a
            // worker's scratch across functions would.
            return grew;
        }
        for r in 0..n {
            match p.confluence {
                Confluence::Must => {
                    self.ins.fill_row(r);
                    self.outs.fill_row(r);
                }
                Confluence::May => {
                    self.ins.clear_row(r);
                    self.outs.clear_row(r);
                }
            }
        }
        match p.direction {
            Direction::Forward => self.ins.set_row(p.fun.entry().index(), &p.boundary),
            Direction::Backward => self.outs.set_row(p.fun.exit().index(), &p.boundary),
        }
        grew
    }

    /// Like [`prepare`](Self::prepare), but seeds the IN/OUT matrices from
    /// a previous fixpoint instead of the lattice initial values — the
    /// starting state of a delta solve. Rows the delta re-solves are
    /// reinitialised afterwards by the caller; every other row keeps its
    /// (already final) previous value.
    ///
    /// `prev` may carry *fewer* columns than `p` (a universe that grew
    /// between revisions): retained rows are widened in place and the new
    /// expression bits start absent — ⊥ for the zero-extension, which
    /// DESIGN.md §13 proves is the exact fixpoint value outside the dirty
    /// closure for every must-problem in the cascade.
    ///
    /// # Panics
    ///
    /// Panics if `prev` has a different row count or *more* columns than
    /// `p` (the delta entry point checks this and falls back to a full
    /// solve instead).
    fn prepare_delta(&mut self, p: &Problem<'_>, view: &CfgView, prev: &Solution) -> u64 {
        let (grew, _) = self.prepare_structures(p, view);
        self.ins.copy_from_widened(&prev.ins);
        self.outs.copy_from_widened(&prev.outs);
        grew
    }

    /// Scribbles deterministic pseudo-random garbage over the IN/OUT
    /// matrices (trailing-bit hygiene preserved) and arms
    /// `skip_reset_once`, so the *next* solve runs on stale, corrupted
    /// state — the realistic failure mode of a worker arena that is
    /// reused without reinitialisation. Used by the `lcm-faults` mutation
    /// suite to prove the fast validation tier catches cross-function
    /// state bleed; never called on any production path.
    pub fn poison_for_fault_injection(&mut self, seed: u64) {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            // splitmix64
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for m in [&mut self.ins, &mut self.outs] {
            let nbits = m.nbits();
            let used = nbits % 64;
            for r in 0..m.n_rows() {
                let row = m.row_mut(r);
                for w in row.iter_mut() {
                    *w ^= next();
                }
                if used != 0 {
                    if let Some(last) = row.last_mut() {
                        *last &= (1u64 << used) - 1;
                    }
                }
            }
        }
        self.skip_reset_once = true;
    }

    /// Whether the scratch is armed to skip its next value
    /// reinitialisation (only ever true between
    /// [`poison_for_fault_injection`](Self::poison_for_fault_injection)
    /// and the next solve).
    pub fn is_poisoned(&self) -> bool {
        self.skip_reset_once
    }
}

/// Outcome metadata of a [`Problem::try_delta_solve_with`] call: whether
/// the delta path applied at all, and how much of the CFG it re-solved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DeltaSolveInfo {
    /// The previous fixpoint was shaped for a different CFG or bit width,
    /// so a full solve ran instead of a delta.
    pub full_fallback: bool,
    /// Strongly connected components re-drained by this solve.
    pub components_resolved: usize,
    /// Blocks whose values were re-solved (members of those components).
    pub blocks_resolved: usize,
    /// The previous fixpoint carried fewer columns than the problem and
    /// retained rows were zero-extended in place (universe growth).
    pub widened: bool,
}

impl Problem<'_> {
    /// The round-robin sweep budget: the CFG's retreating-edge count (an
    /// upper bound on its loop-connectedness `d`) plus a margin over the
    /// classical `d + 2` convergence bound for rapid frameworks, unless
    /// overridden by [`with_sweep_bound`](Self::with_sweep_bound). A honest
    /// monotone gen/kill problem always converges within this budget; only
    /// corrupted or non-monotone systems exhaust it.
    fn round_robin_bound(&self, view: &CfgView) -> usize {
        self.sweep_bound
            .unwrap_or_else(|| view.retreating_edges() + 4)
    }

    /// The worklist pop budget. The worklist has no sweep structure, so the
    /// budget comes from the lattice-height argument instead: under a
    /// monotone transfer each block's output side changes at most
    /// `nbits + 1` times (once per bit plus the first application), and
    /// every change re-enqueues at most its dependents — so total pops are
    /// bounded by `n + (nbits + 2)·(E + 1)` with room to spare. An explicit
    /// [`with_sweep_bound`](Self::with_sweep_bound) of `s` is interpreted as
    /// `s` whole sweeps, i.e. `s · n` pops.
    fn worklist_bound(&self, view: &CfgView) -> usize {
        match self.sweep_bound {
            Some(s) => s * view.num_blocks().max(1),
            None => view.num_blocks() + (self.nbits + 2) * (view.num_edges() + 1) + 8,
        }
    }

    /// Solves with the given strategy over a shared [`CfgView`], reusing
    /// `scratch` for all mutable state. This is the zero-allocation entry
    /// point: with a warm scratch the only allocations are the two matrix
    /// clones exported in the returned [`Solution`] (counted in
    /// [`SolveStats::allocations`]).
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function, or if
    /// the iteration budget is exhausted (impossible for a monotone
    /// problem); [`try_solve_with`](Self::try_solve_with) reports the
    /// latter as a [`SolverDiverged`] instead.
    pub fn solve_with(
        &self,
        strategy: SolveStrategy,
        view: &CfgView,
        scratch: &mut SolverScratch,
    ) -> Solution {
        self.try_solve_with(strategy, view, scratch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve_with`](Self::solve_with).
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the fixpoint iteration exceeds its
    /// budget (see [`with_sweep_bound`](Self::with_sweep_bound)).
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function (that is
    /// a structural misuse of the API, not a data-dependent failure).
    pub fn try_solve_with(
        &self,
        strategy: SolveStrategy,
        view: &CfgView,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolverDiverged> {
        let mut stats = SolveStats::new();
        stats.allocations = scratch.prepare(self, view);
        match strategy {
            SolveStrategy::RoundRobin => self.run_round_robin(view, scratch, &mut stats)?,
            SolveStrategy::Worklist => self.run_worklist(view, scratch, &mut stats)?,
            SolveStrategy::SccPriority => self.run_scc(view, scratch, &mut stats)?,
        }
        // Exporting the Solution clones the two matrices — the only
        // allocations a warm-scratch solve performs.
        stats.allocations += 2;
        Ok(Solution {
            ins: scratch.ins.clone(),
            outs: scratch.outs.clone(),
            stats,
        })
    }

    /// Re-solves after an edit, seeded from `prev` (the fixpoint of the
    /// *unedited* problem) and a set of blocks whose transfer functions,
    /// incoming edge gens or boundary participation may have changed.
    ///
    /// Only the strongly connected components that can observe the change
    /// are re-drained: the changed blocks' own components plus everything
    /// downstream in the condensation for a forward problem (values flow
    /// towards the exit), upstream for a backward one. Every other block's
    /// previous value is provably final — its meet inputs and transfer are
    /// unchanged and the framework's fixpoint is unique — and is carried
    /// over verbatim, so the result is bit-identical to a full solve at a
    /// cost proportional to the affected region.
    ///
    /// `prev` may be *narrower* than the problem (fewer columns): retained
    /// rows are widened in place with the new bits starting ⊥, which is the
    /// exact fixpoint for new expression columns outside the dirty closure
    /// of a must-problem (DESIGN.md §13 has the per-direction argument).
    /// The caller remains responsible for listing every block whose local
    /// predicates gained a new-column bit as `changed`.
    ///
    /// Falls back to a full [`SolveStrategy::SccPriority`] solve (reported
    /// via [`DeltaSolveInfo::full_fallback`]) whenever `prev` is shaped for
    /// a different CFG or is *wider* than the problem — the shape-change
    /// contract: callers that added or removed blocks or edges must not
    /// pretend otherwise (column shrink is handled upstream by remapping).
    ///
    /// The caller owns the completeness of `changed`: a block whose
    /// transfer, incoming edge gen (for [`with_edge_gen`]
    /// (Self::with_edge_gen) problems) or boundary row differs from the
    /// problem `prev` was solved under must be listed, or stale values
    /// survive. The LCM pipeline derives this set from its block diff.
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the fixpoint iteration exceeds its
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function.
    pub fn try_delta_solve_with(
        &self,
        view: &CfgView,
        scratch: &mut SolverScratch,
        prev: &Solution,
        changed: &[BlockId],
    ) -> Result<(Solution, DeltaSolveInfo), SolverDiverged> {
        let n = self.fun.num_blocks();
        let shape_ok = prev.ins.n_rows() == n
            && prev.outs.n_rows() == n
            && prev.ins.nbits() <= self.nbits
            && prev.outs.nbits() == prev.ins.nbits()
            && changed.iter().all(|b| b.index() < n);
        if !shape_ok {
            let solution = self.try_solve_with(SolveStrategy::SccPriority, view, scratch)?;
            let info = DeltaSolveInfo {
                full_fallback: true,
                components_resolved: view.num_sccs(),
                blocks_resolved: n,
                widened: false,
            };
            return Ok((solution, info));
        }
        let widened = prev.ins.nbits() < self.nbits;

        // Mark the affected components. Component ids are topological
        // (every cross-component edge goes low → high), so one ordered
        // sweep — ascending for forward problems, descending for backward
        // — computes the full downstream/upstream closure.
        let n_sccs = view.num_sccs();
        let mut affected = vec![false; n_sccs];
        for &b in changed {
            if let Some(s) = view.scc_of(b) {
                affected[s] = true;
            }
        }
        match self.direction {
            Direction::Forward => {
                for s in 0..n_sccs {
                    if !affected[s] {
                        continue;
                    }
                    for &b in view.scc_blocks(s) {
                        for &d in view.succs(b) {
                            if let Some(t) = view.scc_of(d) {
                                affected[t] = true;
                            }
                        }
                    }
                }
            }
            Direction::Backward => {
                for s in (0..n_sccs).rev() {
                    if !affected[s] {
                        continue;
                    }
                    for &b in view.scc_blocks(s) {
                        for &d in view.preds(b) {
                            if let Some(t) = view.scc_of(d) {
                                affected[t] = true;
                            }
                        }
                    }
                }
            }
        }

        let mut stats = SolveStats::new();
        stats.allocations = scratch.prepare_delta(self, view, prev);
        // Rows the delta re-solves restart from the lattice initial value
        // (and the boundary, when the boundary block is affected), exactly
        // as a full solve would initialise them; untouched rows keep the
        // previous fixpoint.
        let mut components_resolved = 0usize;
        let mut blocks_resolved = 0usize;
        for (s, _) in affected.iter().enumerate().filter(|(_, &a)| a) {
            components_resolved += 1;
            for &b in view.scc_blocks(s) {
                blocks_resolved += 1;
                let r = b.index();
                match self.confluence {
                    Confluence::Must => {
                        scratch.ins.fill_row(r);
                        scratch.outs.fill_row(r);
                    }
                    Confluence::May => {
                        scratch.ins.clear_row(r);
                        scratch.outs.clear_row(r);
                    }
                }
            }
        }
        match self.direction {
            Direction::Forward => {
                let e = self.fun.entry();
                if view.scc_of(e).is_some_and(|s| affected[s]) {
                    scratch.ins.set_row(e.index(), &self.boundary);
                }
            }
            Direction::Backward => {
                let x = self.fun.exit();
                if view.scc_of(x).is_some_and(|s| affected[s]) {
                    scratch.outs.set_row(x.index(), &self.boundary);
                }
            }
        }
        self.run_scc_filtered(view, scratch, &mut stats, |s| affected[s])?;
        stats.allocations += 2;
        Ok((
            Solution {
                ins: scratch.ins.clone(),
                outs: scratch.outs.clone(),
                stats,
            },
            DeltaSolveInfo {
                full_fallback: false,
                components_resolved,
                blocks_resolved,
                widened,
            },
        ))
    }

    /// Solves by round-robin iteration over reverse postorder (forward
    /// problems) or postorder (backward problems) until a full sweep changes
    /// nothing. `stats.iterations` counts the sweeps.
    ///
    /// Computes a fresh [`CfgView`] and scratch for the function; when
    /// running several analyses over one CFG, build both once and use
    /// [`solve_with`](Self::solve_with).
    ///
    /// # Panics
    ///
    /// Panics if the iteration exceeds its sweep budget (impossible for a
    /// monotone problem); [`try_solve`](Self::try_solve) reports that as a
    /// [`SolverDiverged`] instead.
    pub fn solve(&self) -> Solution {
        self.try_solve().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve`](Self::solve): returns [`SolverDiverged`] instead of
    /// panicking when the sweep budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the fixpoint iteration exceeds the
    /// sweep budget (see [`with_sweep_bound`](Self::with_sweep_bound)).
    pub fn try_solve(&self) -> Result<Solution, SolverDiverged> {
        self.try_solve_in(&CfgView::new(self.fun))
    }

    /// Like [`solve`](Self::solve), but reuses a precomputed [`CfgView`].
    ///
    /// For rapid gen/kill frameworks like the ones here this converges in
    /// `d + 2` sweeps where `d` is the loop-connectedness of the CFG — the
    /// classical result underlying the paper's "as cheap as unidirectional
    /// analyses" complexity claim.
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function, or if
    /// the sweep budget is exhausted.
    pub fn solve_in(&self, view: &CfgView) -> Solution {
        self.try_solve_in(view).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve_in`](Self::solve_in).
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the fixpoint iteration exceeds the
    /// sweep budget.
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function (that is
    /// a structural misuse of the API, not a data-dependent failure).
    pub fn try_solve_in(&self, view: &CfgView) -> Result<Solution, SolverDiverged> {
        self.try_solve_with(SolveStrategy::RoundRobin, view, &mut SolverScratch::new())
    }

    /// Solves with a FIFO worklist seeded in depth-first order. Produces the
    /// same fixpoint as [`solve`](Self::solve) (the framework is monotone);
    /// `stats.node_visits` counts worklist pops and `stats.iterations` is
    /// left at zero.
    ///
    /// Computes a fresh [`CfgView`] and scratch for the function; when
    /// running several analyses over one CFG, build both once and use
    /// [`solve_with`](Self::solve_with).
    ///
    /// # Panics
    ///
    /// Panics if the pop budget is exhausted (impossible for a monotone
    /// problem); [`try_solve_worklist`](Self::try_solve_worklist) reports
    /// that as a [`SolverDiverged`] instead.
    pub fn solve_worklist(&self) -> Solution {
        self.try_solve_worklist().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve_worklist`](Self::solve_worklist).
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the propagation exceeds its pop budget.
    pub fn try_solve_worklist(&self) -> Result<Solution, SolverDiverged> {
        self.try_solve_worklist_in(&CfgView::new(self.fun))
    }

    /// Like [`solve_worklist`](Self::solve_worklist), but reuses a
    /// precomputed [`CfgView`].
    ///
    /// Propagation is change-driven: a block's dependents (successors for
    /// forward problems, predecessors for backward ones) are re-enqueued
    /// only when its output side actually changed, detected word-granularly
    /// by [`copy_row_changed`], and a popped block whose meet is unchanged
    /// skips its transfer entirely.
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function, or if
    /// the pop budget is exhausted.
    pub fn solve_worklist_in(&self, view: &CfgView) -> Solution {
        self.try_solve_worklist_in(view)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`solve_worklist_in`](Self::solve_worklist_in).
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if the propagation exceeds its pop budget
    /// (reported in sweep-equivalents: pops divided by the block count).
    ///
    /// # Panics
    ///
    /// Panics if `view` was built for a different-shaped function (that is
    /// a structural misuse of the API, not a data-dependent failure).
    pub fn try_solve_worklist_in(&self, view: &CfgView) -> Result<Solution, SolverDiverged> {
        self.try_solve_with(SolveStrategy::Worklist, view, &mut SolverScratch::new())
    }

    fn run_round_robin(
        &self,
        view: &CfgView,
        scratch: &mut SolverScratch,
        stats: &mut SolveStats,
    ) -> Result<(), SolverDiverged> {
        let order = match self.direction {
            Direction::Forward => view.rpo(),
            Direction::Backward => view.postorder(),
        };
        let bound = self.round_robin_bound(view);
        loop {
            if stats.iterations >= bound {
                return Err(SolverDiverged {
                    analysis: self.name,
                    sweeps: bound,
                });
            }
            stats.iterations += 1;
            let mut changed = false;
            for &b in order {
                changed |= self.update(view, scratch, stats, b);
            }
            if !changed {
                break;
            }
        }
        Ok(())
    }

    fn run_worklist(
        &self,
        view: &CfgView,
        scratch: &mut SolverScratch,
        stats: &mut SolveStats,
    ) -> Result<(), SolverDiverged> {
        let order = match self.direction {
            Direction::Forward => view.rpo(),
            Direction::Backward => view.postorder(),
        };
        let bound = self.worklist_bound(view);
        let mut pops = 0usize;
        for &b in order {
            scratch.queued[b.index()] = true;
            scratch.queue.push_back(b);
        }
        while let Some(b) = scratch.queue.pop_front() {
            pops += 1;
            if pops > bound {
                return Err(SolverDiverged {
                    analysis: self.name,
                    sweeps: bound / self.fun.num_blocks().max(1),
                });
            }
            scratch.queued[b.index()] = false;
            if self.update(view, scratch, stats, b) {
                // Push the blocks whose input depends on b.
                let dependents: &[BlockId] = match self.direction {
                    Direction::Forward => view.succs(b),
                    Direction::Backward => view.preds(b),
                };
                for &d in dependents {
                    if !scratch.queued[d.index()] {
                        scratch.queued[d.index()] = true;
                        scratch.queue.push_back(d);
                    }
                }
            }
        }
        Ok(())
    }

    /// The SCC-condensed priority schedule: components are visited in
    /// topological order of the condensation (reverse for backward
    /// problems), and each is drained to its local fixpoint with a FIFO
    /// restricted to its members before the next component is seeded.
    /// Cross-component dependents need no re-enqueueing — they have not
    /// been seeded yet and will read final values when their turn comes —
    /// so one pass over the components reaches the global fixpoint.
    fn run_scc(
        &self,
        view: &CfgView,
        scratch: &mut SolverScratch,
        stats: &mut SolveStats,
    ) -> Result<(), SolverDiverged> {
        self.run_scc_filtered(view, scratch, stats, |_| true)
    }

    /// [`run_scc`](Self::run_scc) restricted to the components `keep`
    /// selects — the delta solve's drain, where the unselected components
    /// already hold final values from a previous fixpoint.
    fn run_scc_filtered(
        &self,
        view: &CfgView,
        scratch: &mut SolverScratch,
        stats: &mut SolveStats,
        keep: impl Fn(usize) -> bool,
    ) -> Result<(), SolverDiverged> {
        let bound = self.worklist_bound(view);
        let mut pops = 0usize;
        let n_sccs = view.num_sccs();
        let mut component = |s: usize| -> Result<(), SolverDiverged> {
            if !keep(s) {
                return Ok(());
            }
            let members = view.scc_blocks(s);
            match self.direction {
                Direction::Forward => {
                    for &b in members {
                        scratch.queued[b.index()] = true;
                        scratch.queue.push_back(b);
                    }
                }
                Direction::Backward => {
                    for &b in members.iter().rev() {
                        scratch.queued[b.index()] = true;
                        scratch.queue.push_back(b);
                    }
                }
            }
            while let Some(b) = scratch.queue.pop_front() {
                pops += 1;
                if pops > bound {
                    return Err(SolverDiverged {
                        analysis: self.name,
                        sweeps: bound / self.fun.num_blocks().max(1),
                    });
                }
                scratch.queued[b.index()] = false;
                if self.update(view, scratch, stats, b) {
                    let dependents: &[BlockId] = match self.direction {
                        Direction::Forward => view.succs(b),
                        Direction::Backward => view.preds(b),
                    };
                    for &d in dependents {
                        if view.scc_of(d) == Some(s) && !scratch.queued[d.index()] {
                            scratch.queued[d.index()] = true;
                            scratch.queue.push_back(d);
                        }
                    }
                }
            }
            Ok(())
        };
        match self.direction {
            Direction::Forward => (0..n_sccs).try_for_each(&mut component)?,
            Direction::Backward => (0..n_sccs).rev().try_for_each(&mut component)?,
        }
        Ok(())
    }

    /// Recomputes block `b`'s values; returns `true` if its *output side*
    /// (the side other blocks read) changed. The meet lands in the `acc`
    /// buffer; if it left the block's input side unchanged (word-granular
    /// check) and the transfer has already been applied, the transfer and
    /// output comparison are skipped entirely.
    ///
    /// Both directions share one body: `inp` is the block's meet destination
    /// (`ins` forward, `outs` backward) and `outp` the side its neighbors
    /// read — which is also the matrix the meet sources come from.
    fn update(
        &self,
        view: &CfgView,
        scratch: &mut SolverScratch,
        stats: &mut SolveStats,
        b: BlockId,
    ) -> bool {
        stats.node_visits += 1;
        let i = b.index();
        if scratch.applied[i] {
            stats.node_revisits += 1;
        }
        let words = scratch.acc.num_words() as u64;
        let (inp, outp) = match self.direction {
            Direction::Forward => (&mut scratch.ins, &mut scratch.outs),
            Direction::Backward => (&mut scratch.outs, &mut scratch.ins),
        };
        let acc = &mut scratch.acc;
        let boundary = match self.direction {
            Direction::Forward => b == self.fun.entry(),
            Direction::Backward => b == self.fun.exit(),
        };
        let dirty = if boundary {
            // The boundary value never changes, so the transfer needs to
            // run exactly once.
            acc.copy_from_row(inp.row(i));
            !scratch.applied[i]
        } else {
            match self.confluence {
                Confluence::Must => acc.insert_all(),
                Confluence::May => acc.clear(),
            }
            if let Some((edges, gens)) = &self.edge_gen {
                let eids = match self.direction {
                    Direction::Forward => edges.incoming(b),
                    Direction::Backward => edges.outgoing(b),
                };
                for &eid in eids {
                    let e = edges.edge(eid);
                    let nb = match self.direction {
                        Direction::Forward => e.from,
                        Direction::Backward => e.to,
                    };
                    scratch.tmp.copy_from_row(outp.row(nb.index()));
                    scratch.tmp.union_with(&gens[eid.index()]);
                    meet_into(acc, &scratch.tmp, self.confluence);
                    stats.word_ops += 3 * words;
                }
            } else {
                let neighbors = match self.direction {
                    Direction::Forward => view.preds(b),
                    Direction::Backward => view.succs(b),
                };
                for &nb in neighbors {
                    meet_into_row(acc, outp.row(nb.index()), self.confluence);
                    stats.word_ops += words;
                }
            }
            let meet_changed = copy_row_changed(inp.row_mut(i), acc.words());
            stats.word_ops += words;
            meet_changed || !scratch.applied[i]
        };
        if !dirty {
            return false;
        }
        self.transfer[i].apply(acc, stats);
        scratch.applied[i] = true;
        let changed = copy_row_changed(outp.row_mut(i), acc.words());
        stats.word_ops += words;
        changed
    }
}

fn meet_into(acc: &mut BitSet, value: &BitSet, confluence: Confluence) {
    match confluence {
        Confluence::Must => acc.intersect_with(value),
        Confluence::May => acc.union_with(value),
    };
}

fn meet_into_row(acc: &mut BitSet, row: &[u64], confluence: Confluence) {
    match confluence {
        Confluence::Must => acc.intersect_with_row(row),
        Confluence::May => acc.union_with_row(row),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Transfer;
    use lcm_ir::{parse_function, EdgeList};

    fn loop_fn() -> lcm_ir::Function {
        parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               jmp head
             done:
               ret
             }",
        )
        .unwrap()
    }

    #[test]
    fn forward_may_reaches_through_loop() {
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer);
        let s = p.solve();
        let head = f.block_by_name("head").unwrap();
        assert!(s.ins.contains(head.index(), 0)); // around the back edge
        assert!(!s.ins.contains(head.index(), 1));
        assert!(s.ins.contains(f.exit().index(), 0));
        assert!(!s.ins.contains(body.index(), 1));
        assert!(s.stats.iterations >= 2);
        assert!(s.stats.word_ops > 0);
    }

    #[test]
    fn forward_must_availability_shape() {
        // Fact available only if generated on all paths.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let r = f.block_by_name("r").unwrap();
        let j = f.block_by_name("j").unwrap();
        // Bit 0 gen'd in both arms; bit 1 only in l.
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[l.index()].gen.insert(0);
        transfer[l.index()].gen.insert(1);
        transfer[r.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::Must, transfer);
        let s = p.solve();
        assert!(s.ins.contains(j.index(), 0));
        assert!(!s.ins.contains(j.index(), 1));
        assert!(!s.ins.contains(l.index(), 0)); // entry boundary is empty
    }

    #[test]
    fn backward_must_anticipability_shape() {
        // Bit anticipated at entry iff computed on every path to exit.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let j = f.block_by_name("j").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[l.index()].gen.insert(0); // computed only on one arm
        transfer[j.index()].gen.insert(1); // computed at the join
        let p = Problem::new(&f, 2, Direction::Backward, Confluence::Must, transfer);
        let s = p.solve();
        assert!(!s.ins.contains(f.entry().index(), 0));
        assert!(s.ins.contains(f.entry().index(), 1));
        assert!(s.outs.row_is_empty(f.exit().index())); // boundary
    }

    #[test]
    fn kill_blocks_propagation() {
        let f = loop_fn();
        let head = f.block_by_name("head").unwrap();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(1); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        transfer[head.index()].kill.insert(0);
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer);
        let s = p.solve();
        assert!(s.ins.contains(head.index(), 0));
        assert!(!s.outs.contains(head.index(), 0));
        assert!(!s.ins.contains(f.exit().index(), 0));
    }

    #[test]
    fn all_strategies_match_round_robin() {
        let f = parse_function(
            "fn m {
             entry:
               br c, a, b
             a:
               br d, inner, join
             inner:
               br e, inner, a
             b:
               jmp join
             join:
               br g, entry2, done
             entry2:
               jmp join
             done:
               ret
             }",
        )
        .unwrap();
        let view = CfgView::new(&f);
        let mut scratch = SolverScratch::new();
        for direction in [Direction::Forward, Direction::Backward] {
            for confluence in [Confluence::Must, Confluence::May] {
                let mut transfer = vec![Transfer::identity(8); f.num_blocks()];
                for (i, t) in transfer.iter_mut().enumerate() {
                    t.gen.insert(i % 8);
                    t.kill.insert((i + 3) % 8);
                }
                let p = Problem::new(&f, 8, direction, confluence, transfer);
                let a = p.solve();
                for strategy in SolveStrategy::ALL {
                    let b = p.solve_with(strategy, &view, &mut scratch);
                    assert_eq!(a.ins, b.ins, "{strategy:?} {direction:?} {confluence:?}");
                    assert_eq!(a.outs, b.outs, "{strategy:?} {direction:?} {confluence:?}");
                }
            }
        }
    }

    #[test]
    fn edge_gen_feeds_only_that_edge() {
        // Diamond; edge gen on the entry→l edge only. Must-confluence at j
        // then requires the fact from both edges, so it must NOT reach j,
        // but it must be in l's IN.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let j = f.block_by_name("j").unwrap();
        let edges = EdgeList::new(&f);
        let mut gens = vec![BitSet::new(1); edges.len()];
        let (to_l, _) = edges
            .iter()
            .find(|(_, e)| e.from == f.entry() && e.to == l)
            .unwrap();
        gens[to_l.index()].insert(0);
        let transfer = vec![Transfer::identity(1); f.num_blocks()];
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::Must, transfer)
            .with_edge_gen(edges, gens);
        let s = p.solve();
        assert!(s.ins.contains(l.index(), 0));
        assert!(!s.ins.contains(j.index(), 0));
        let s2 = p.solve_worklist();
        assert_eq!(s.ins, s2.ins);
        let view = CfgView::new(&f);
        let s3 = p.solve_with(SolveStrategy::SccPriority, &view, &mut SolverScratch::new());
        assert_eq!(s.ins, s3.ins);
    }

    #[test]
    fn boundary_is_respected() {
        let f = loop_fn();
        let transfer = vec![Transfer::identity(3); f.num_blocks()];
        let mut boundary = BitSet::new(3);
        boundary.insert(2);
        let p = Problem::new(&f, 3, Direction::Forward, Confluence::Must, transfer)
            .with_boundary(boundary);
        let s = p.solve();
        assert!(s.ins.contains(f.exit().index(), 2));
        assert_eq!(
            s.ins.row_iter(f.entry().index()).collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    #[should_panic(expected = "one transfer function per block")]
    fn wrong_transfer_count_panics() {
        let f = loop_fn();
        let _ = Problem::new(&f, 1, Direction::Forward, Confluence::May, vec![]);
    }

    #[test]
    fn shared_view_matches_fresh_view() {
        let f = loop_fn();
        let view = CfgView::new(&f);
        let body = f.block_by_name("body").unwrap();
        for direction in [Direction::Forward, Direction::Backward] {
            for confluence in [Confluence::Must, Confluence::May] {
                let mut transfer = vec![Transfer::identity(4); f.num_blocks()];
                transfer[body.index()].gen.insert(1);
                transfer[body.index()].kill.insert(2);
                let p = Problem::new(&f, 4, direction, confluence, transfer);
                let fresh = p.solve();
                let shared = p.solve_in(&view);
                assert_eq!(fresh.ins, shared.ins);
                assert_eq!(fresh.outs, shared.outs);
                let wl = p.solve_worklist_in(&view);
                assert_eq!(fresh.ins, wl.ins);
                assert_eq!(fresh.outs, wl.outs);
            }
        }
    }

    #[test]
    fn worklist_skips_unchanged_blocks() {
        // A long chain: the round-robin solver revisits every block each
        // sweep, while the change-driven worklist visits each block only as
        // its input actually changes — strictly fewer (or equal) visits.
        let mut text = String::from("fn chain {\n entry:\n jmp b0\n");
        for i in 0..20 {
            text.push_str(&format!(" b{i}:\n jmp b{}\n", i + 1));
        }
        text.push_str(" b20:\n ret\n }");
        let f = parse_function(&text).unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[f.entry().index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer);
        let rr = p.solve();
        let wl = p.solve_worklist();
        assert_eq!(rr.ins, wl.ins);
        assert!(
            wl.stats.node_visits <= rr.stats.node_visits,
            "worklist {} vs round-robin {}",
            wl.stats.node_visits,
            rr.stats.node_visits
        );
        assert!(wl.stats.word_ops <= rr.stats.word_ops);
    }

    #[test]
    fn scc_priority_cuts_revisits_on_loops() {
        // A tight loop feeding a long chain. The plain FIFO worklist
        // interleaves loop convergence with chain propagation, so the
        // chain is flushed with stale values and revisited; the SCC
        // schedule drains the loop to fixpoint first and then sweeps the
        // chain exactly once.
        let mut text = String::from(
            "fn lc {\n entry:\n jmp head\n head:\n br c, body, b0\n body:\n jmp head\n",
        );
        for i in 0..12 {
            text.push_str(&format!(" b{i}:\n jmp b{}\n", i + 1));
        }
        text.push_str(" b12:\n ret\n }");
        let f = parse_function(&text).unwrap();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(4); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        transfer[f.entry().index()].gen.insert(1);
        let p = Problem::new(&f, 4, Direction::Forward, Confluence::May, transfer);
        let view = CfgView::new(&f);
        let mut scratch = SolverScratch::new();
        let rr = p.solve_with(SolveStrategy::RoundRobin, &view, &mut scratch);
        let wl = p.solve_with(SolveStrategy::Worklist, &view, &mut scratch);
        let scc = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        assert_eq!(rr.ins, wl.ins);
        assert_eq!(rr.ins, scc.ins);
        assert_eq!(rr.outs, scc.outs);
        assert!(
            scc.stats.node_revisits < wl.stats.node_revisits,
            "scc {} vs worklist {} revisits",
            scc.stats.node_revisits,
            wl.stats.node_revisits
        );
        assert!(scc.stats.node_revisits < rr.stats.node_revisits);
    }

    #[test]
    fn scc_priority_never_revisits_on_dags() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let mut transfer = vec![Transfer::identity(3); f.num_blocks()];
        transfer[f.entry().index()].gen.insert(0);
        let p = Problem::new(&f, 3, Direction::Forward, Confluence::Must, transfer);
        let view = CfgView::new(&f);
        let s = p.solve_with(SolveStrategy::SccPriority, &view, &mut SolverScratch::new());
        assert_eq!(s.stats.node_revisits, 0);
        assert_eq!(s.stats.node_visits, f.num_blocks());
    }

    #[test]
    fn warm_scratch_solves_with_two_allocations() {
        let f = loop_fn();
        let view = CfgView::new(&f);
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(64); f.num_blocks()];
        transfer[body.index()].gen.insert(7);
        let p = Problem::new(&f, 64, Direction::Forward, Confluence::May, transfer);
        let mut scratch = SolverScratch::new();
        let cold = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        assert!(cold.stats.allocations > 2, "cold solve must grow the arena");
        for _ in 0..3 {
            let warm = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
            // Only the two matrix clones exported in the Solution.
            assert_eq!(warm.stats.allocations, 2);
            assert_eq!(warm.ins, cold.ins);
        }
        // A *smaller* problem also reuses the arena…
        let g = parse_function("fn tiny {\n entry:\n ret\n }").unwrap();
        let gview = CfgView::new(&g);
        let q = Problem::new(
            &g,
            8,
            Direction::Forward,
            Confluence::May,
            vec![Transfer::identity(8); g.num_blocks()],
        );
        let small = q.solve_with(SolveStrategy::SccPriority, &gview, &mut scratch);
        assert_eq!(small.stats.allocations, 2);
        // …while returning to the larger shape is likewise allocation-free
        // (the matrices shrank in place, capacity was retained).
        let back = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        assert_eq!(back.stats.allocations, 2);
        assert_eq!(back.ins, cold.ins);
    }

    #[test]
    fn poisoned_scratch_corrupts_then_recovers() {
        let f = loop_fn();
        let view = CfgView::new(&f);
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(9); f.num_blocks()];
        transfer[body.index()].gen.insert(3);
        let p = Problem::new(&f, 9, Direction::Forward, Confluence::Must, transfer);
        let mut scratch = SolverScratch::new();
        let clean = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        scratch.poison_for_fault_injection(0xdead_beef);
        assert!(scratch.is_poisoned());
        let dirty = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        assert!(!scratch.is_poisoned());
        assert_ne!(
            clean.ins, dirty.ins,
            "poisoned stale state must leak into the fixpoint"
        );
        // The next prepare() fully reinitialises: the poison is gone.
        let recovered = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        assert_eq!(clean.ins, recovered.ins);
        assert_eq!(clean.outs, recovered.outs);
    }

    /// A multi-component CFG with two loops feeding a shared tail — the
    /// delta tests' workhorse.
    fn multi_scc_fn() -> lcm_ir::Function {
        parse_function(
            "fn m {
             entry:
               br c, a, b
             a:
               br d, inner, join
             inner:
               br e, inner, a
             b:
               jmp join
             join:
               br g, entry2, done
             entry2:
               jmp join
             done:
               ret
             }",
        )
        .unwrap()
    }

    fn seeded_transfers(n: usize, nbits: usize, salt: usize) -> Vec<Transfer> {
        let mut transfer = vec![Transfer::identity(nbits); n];
        for (i, t) in transfer.iter_mut().enumerate() {
            t.gen.insert((i + salt) % nbits);
            t.kill.insert((i + salt + 3) % nbits);
        }
        transfer
    }

    #[test]
    fn delta_solve_matches_full_solve_in_all_directions() {
        let f = multi_scc_fn();
        let view = CfgView::new(&f);
        let mut scratch = SolverScratch::new();
        let edited = f.block_by_name("a").unwrap();
        for direction in [Direction::Forward, Direction::Backward] {
            for confluence in [Confluence::Must, Confluence::May] {
                let p = Problem::new(
                    &f,
                    8,
                    direction,
                    confluence,
                    seeded_transfers(f.num_blocks(), 8, 0),
                );
                let prev = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
                // Edit block `a`'s transfer and re-solve both ways.
                let mut transfer = seeded_transfers(f.num_blocks(), 8, 0);
                transfer[edited.index()].gen.insert(5);
                transfer[edited.index()].kill.insert(1);
                let q = Problem::new(&f, 8, direction, confluence, transfer);
                let fresh = q.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
                let (delta, info) = q
                    .try_delta_solve_with(&view, &mut scratch, &prev, &[edited])
                    .unwrap();
                assert!(!info.full_fallback);
                assert!(info.blocks_resolved <= f.num_blocks());
                assert_eq!(fresh.ins, delta.ins, "{direction:?} {confluence:?}");
                assert_eq!(fresh.outs, delta.outs, "{direction:?} {confluence:?}");
                assert!(delta.stats.node_visits <= fresh.stats.node_visits);
            }
        }
    }

    #[test]
    fn delta_solve_scopes_to_downstream_components_only() {
        // A long chain edited near the end: a forward delta re-solves only
        // the suffix, a backward delta only the prefix.
        let mut text = String::from("fn chain {\n entry:\n jmp b0\n");
        for i in 0..20 {
            text.push_str(&format!(" b{i}:\n jmp b{}\n", i + 1));
        }
        text.push_str(" b20:\n ret\n }");
        let f = parse_function(&text).unwrap();
        let view = CfgView::new(&f);
        let mut scratch = SolverScratch::new();
        let edited = f.block_by_name("b18").unwrap();
        for (direction, expect_resolved) in [(Direction::Forward, 3), (Direction::Backward, 20)] {
            let p = Problem::new(
                &f,
                4,
                direction,
                Confluence::May,
                seeded_transfers(f.num_blocks(), 4, 1),
            );
            let prev = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
            let mut transfer = seeded_transfers(f.num_blocks(), 4, 1);
            transfer[edited.index()].gen.insert(2);
            let q = Problem::new(&f, 4, direction, Confluence::May, transfer);
            let fresh = q.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
            let (delta, info) = q
                .try_delta_solve_with(&view, &mut scratch, &prev, &[edited])
                .unwrap();
            assert_eq!(fresh.ins, delta.ins);
            assert_eq!(fresh.outs, delta.outs);
            assert_eq!(info.blocks_resolved, expect_resolved, "{direction:?}");
            assert!(
                delta.stats.node_visits < fresh.stats.node_visits,
                "{direction:?}: delta {} vs fresh {}",
                delta.stats.node_visits,
                fresh.stats.node_visits
            );
        }
    }

    #[test]
    fn delta_solve_shape_mismatch_falls_back_to_full_solve() {
        let f = multi_scc_fn();
        let g = loop_fn(); // different shape
        let view = CfgView::new(&f);
        let gview = CfgView::new(&g);
        let mut scratch = SolverScratch::new();
        let p_old = Problem::new(
            &g,
            8,
            Direction::Forward,
            Confluence::Must,
            seeded_transfers(g.num_blocks(), 8, 0),
        );
        let prev = p_old.solve_with(SolveStrategy::SccPriority, &gview, &mut scratch);
        let q = Problem::new(
            &f,
            8,
            Direction::Forward,
            Confluence::Must,
            seeded_transfers(f.num_blocks(), 8, 0),
        );
        let fresh = q.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        let (delta, info) = q
            .try_delta_solve_with(&view, &mut scratch, &prev, &[f.entry()])
            .unwrap();
        assert!(info.full_fallback);
        assert_eq!(info.blocks_resolved, f.num_blocks());
        assert_eq!(fresh.ins, delta.ins);
        assert_eq!(fresh.outs, delta.outs);

        // A *narrower* previous fixpoint no longer falls back: retained
        // rows widen in place. The seeded transfers gain arbitrary bits in
        // the new columns at every block, so every block is changed — the
        // caller's completeness contract — and the result still matches a
        // fresh wide solve bit for bit.
        let wide = Problem::new(
            &f,
            16,
            Direction::Forward,
            Confluence::Must,
            seeded_transfers(f.num_blocks(), 16, 0),
        );
        let all: Vec<BlockId> = (0..f.num_blocks()).map(BlockId::from_index).collect();
        let (w, info) = wide
            .try_delta_solve_with(&view, &mut scratch, &fresh, &all)
            .unwrap();
        assert!(!info.full_fallback);
        assert!(info.widened);
        assert_eq!(
            w.ins,
            wide.solve_with(SolveStrategy::SccPriority, &view, &mut scratch)
                .ins
        );

        // A *wider* previous fixpoint still falls back: columns cannot be
        // dropped in place, shrink is the caller's remapping job.
        let narrow = Problem::new(
            &f,
            8,
            Direction::Forward,
            Confluence::Must,
            seeded_transfers(f.num_blocks(), 8, 0),
        );
        let (nw, info) = narrow
            .try_delta_solve_with(&view, &mut scratch, &w, &[f.entry()])
            .unwrap();
        assert!(info.full_fallback);
        assert!(!info.widened);
        assert_eq!(nw.ins, fresh.ins);
    }

    #[test]
    fn delta_solve_with_empty_change_set_reproduces_prev() {
        let f = multi_scc_fn();
        let view = CfgView::new(&f);
        let mut scratch = SolverScratch::new();
        let p = Problem::new(
            &f,
            8,
            Direction::Backward,
            Confluence::Must,
            seeded_transfers(f.num_blocks(), 8, 2),
        );
        let prev = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        let (delta, info) = p
            .try_delta_solve_with(&view, &mut scratch, &prev, &[])
            .unwrap();
        assert!(!info.full_fallback);
        assert_eq!(info.blocks_resolved, 0);
        assert_eq!(info.components_resolved, 0);
        assert_eq!(delta.stats.node_visits, 0);
        assert_eq!(prev.ins, delta.ins);
        assert_eq!(prev.outs, delta.outs);
    }

    #[test]
    fn delta_solve_handles_boundary_and_edge_gen_changes() {
        // Diamond with edge gens: change one edge's gen and list its target
        // as changed; the delta must match a fresh solve.
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let l = f.block_by_name("l").unwrap();
        let view = CfgView::new(&f);
        let mut scratch = SolverScratch::new();
        let edges = EdgeList::new(&f);
        let gens = vec![BitSet::new(2); edges.len()];
        let transfer = vec![Transfer::identity(2); f.num_blocks()];
        let p = Problem::new(
            &f,
            2,
            Direction::Forward,
            Confluence::Must,
            transfer.clone(),
        )
        .with_edge_gen(edges.clone(), gens.clone());
        let prev = p.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);

        let (to_l, _) = edges
            .iter()
            .find(|(_, e)| e.from == f.entry() && e.to == l)
            .unwrap();
        let mut gens2 = gens;
        gens2[to_l.index()].insert(0);
        let q = Problem::new(&f, 2, Direction::Forward, Confluence::Must, transfer)
            .with_edge_gen(edges, gens2);
        let fresh = q.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        let (delta, info) = q
            .try_delta_solve_with(&view, &mut scratch, &prev, &[l])
            .unwrap();
        assert!(!info.full_fallback);
        assert_eq!(fresh.ins, delta.ins);
        assert_eq!(fresh.outs, delta.outs);

        // Changing the boundary with the entry block listed as changed.
        let mut boundary = BitSet::new(2);
        boundary.insert(1);
        let transfer = vec![Transfer::identity(2); f.num_blocks()];
        let b = Problem::new(&f, 2, Direction::Forward, Confluence::Must, transfer)
            .with_boundary(boundary);
        let fresh_b = b.solve_with(SolveStrategy::SccPriority, &view, &mut scratch);
        let (delta_b, info) = b
            .try_delta_solve_with(&view, &mut scratch, &prev, &[f.entry()])
            .unwrap();
        assert!(!info.full_fallback);
        assert_eq!(fresh_b.ins, delta_b.ins);
        assert_eq!(fresh_b.outs, delta_b.outs);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in SolveStrategy::ALL {
            assert_eq!(s.name().parse::<SolveStrategy>().unwrap(), s);
        }
        assert_eq!(
            "round-robin".parse::<SolveStrategy>().unwrap(),
            SolveStrategy::RoundRobin
        );
        assert!("bogus".parse::<SolveStrategy>().is_err());
        assert_eq!(SolveStrategy::default(), SolveStrategy::SccPriority);
    }

    #[test]
    fn tight_sweep_bound_reports_divergence() {
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer)
            .with_name("tight")
            .with_sweep_bound(1);
        let err = p.try_solve().unwrap_err();
        assert_eq!(err.analysis, "tight");
        assert_eq!(err.sweeps, 1);
        assert!(err.to_string().contains("tight"));
        let err = p.try_solve_worklist().unwrap_err();
        assert_eq!(err.analysis, "tight");
        let view = CfgView::new(&f);
        let err = p
            .try_solve_with(SolveStrategy::SccPriority, &view, &mut SolverScratch::new())
            .unwrap_err();
        assert_eq!(err.analysis, "tight");
    }

    #[test]
    fn derived_bound_is_generous_enough() {
        // The default budget must never fire on an honest monotone problem,
        // even around loops; and the solution must match the worklist's.
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(2); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p = Problem::new(&f, 2, Direction::Forward, Confluence::May, transfer);
        let rr = p.try_solve().unwrap();
        let wl = p.try_solve_worklist().unwrap();
        assert_eq!(rr.ins, wl.ins);
        let view = CfgView::new(&f);
        assert!((rr.stats.iterations as usize) <= view.retreating_edges() + 4);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn panicking_solver_reports_divergence_message() {
        let f = loop_fn();
        let body = f.block_by_name("body").unwrap();
        let mut transfer = vec![Transfer::identity(1); f.num_blocks()];
        transfer[body.index()].gen.insert(0);
        let p =
            Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer).with_sweep_bound(1);
        let _ = p.solve();
    }

    #[test]
    #[should_panic(expected = "different function")]
    fn mismatched_view_panics() {
        let f = loop_fn();
        let g = parse_function("fn tiny {\n entry:\n ret\n }").unwrap();
        let transfer = vec![Transfer::identity(1); f.num_blocks()];
        let p = Problem::new(&f, 1, Direction::Forward, Confluence::May, transfer);
        let _ = p.solve_in(&CfgView::new(&g));
    }
}
