//! A flat, contiguous matrix of bit rows — one analysis state in one
//! allocation.
//!
//! The fixpoint solvers keep their per-block IN/OUT sets in two
//! `BitMatrix` values instead of `Vec<BitSet>`: `n_rows × words_per_row`
//! 64-bit words in a single row-major `Vec<u64>`, so a whole solve state
//! is one heap allocation and a confluence sweep over blocks streams the
//! backing store cache-linearly. Rows are exposed as `&[u64]` /
//! `&mut [u64]` slice views and combined with the row kernels in
//! [`bitset`](crate::bitset) ([`union_rows`], [`intersect_rows`],
//! [`copy_row_changed`], …), which a standalone [`BitSet`] also accepts —
//! the two storage shapes are interchangeable operands.
//!
//! Every row maintains the same trailing-bit hygiene invariant as
//! [`BitSet`]: bits at positions `>= nbits` stay zero, so
//! [`count_row`](BitMatrix::count_row) and
//! [`row_is_empty`](BitMatrix::row_is_empty) can never drift.

use std::fmt;

use crate::bitset::{
    copy_row_changed, count_row, debug_assert_row_hygiene, intersect_rows, row_contains,
    row_is_empty, union_rows, BitIter, BitSet, WORD_BITS,
};

/// A dense `n_rows × nbits` bit matrix in one contiguous allocation.
///
/// ```
/// use lcm_dataflow::BitMatrix;
///
/// let mut m = BitMatrix::new(3, 130);
/// m.set(0, 129);
/// m.set(2, 0);
/// assert!(m.contains(0, 129));
/// assert_eq!(m.row_iter(2).collect::<Vec<_>>(), vec![0]);
/// assert!(m.row_is_empty(1));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    words: Vec<u64>,
    n_rows: usize,
    nbits: usize,
    words_per_row: usize,
}

impl BitMatrix {
    /// Creates a matrix of `n_rows` empty rows of capacity `nbits`.
    pub fn new(n_rows: usize, nbits: usize) -> Self {
        let words_per_row = nbits.div_ceil(WORD_BITS);
        BitMatrix {
            words: vec![0; n_rows * words_per_row],
            n_rows,
            nbits,
            words_per_row,
        }
    }

    /// Creates a matrix of `n_rows` full rows (all of `0..nbits` present).
    pub fn filled(n_rows: usize, nbits: usize) -> Self {
        let mut m = Self::new(n_rows, nbits);
        for r in 0..n_rows {
            m.fill_row(r);
        }
        m
    }

    /// The number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The per-row capacity in bits.
    #[inline]
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Words per row (the unit of the complexity counters).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// A row as an immutable word slice, usable as a row-kernel operand.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        let start = r * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }

    /// A row as a mutable word slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        let start = r * self.words_per_row;
        &mut self.words[start..start + self.words_per_row]
    }

    /// Two distinct rows, the first mutable — the in-place transfer shape
    /// (`out[i] ← f(in[i])`) without cloning either row.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src` or either index is out of range.
    #[inline]
    pub fn row_pair_mut(&mut self, dst: usize, src: usize) -> (&mut [u64], &[u64]) {
        assert_ne!(dst, src, "row_pair_mut requires distinct rows");
        let wpr = self.words_per_row;
        let (d, s) = (dst * wpr, src * wpr);
        if d < s {
            let (lo, hi) = self.words.split_at_mut(s);
            (&mut lo[d..d + wpr], &hi[..wpr])
        } else {
            let (lo, hi) = self.words.split_at_mut(d);
            (&mut hi[..wpr], &lo[s..s + wpr])
        }
    }

    /// Tests membership of `bit` in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows` or `bit >= nbits`.
    #[inline]
    pub fn contains(&self, r: usize, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        row_contains(self.row(r), bit)
    }

    /// Inserts `bit` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows` or `bit >= nbits`.
    #[inline]
    pub fn set(&mut self, r: usize, bit: usize) {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        self.row_mut(r)[bit / WORD_BITS] |= 1 << (bit % WORD_BITS);
    }

    /// Returns `true` if row `r` has no bits set.
    #[inline]
    pub fn row_is_empty(&self, r: usize) -> bool {
        row_is_empty(self.row(r))
    }

    /// Counts the set bits of row `r`.
    #[inline]
    pub fn count_row(&self, r: usize) -> usize {
        count_row(self.row(r))
    }

    /// Iterates the set bits of row `r` in increasing order, via the same
    /// word-skipping iterator as [`BitSet::iter`].
    pub fn row_iter(&self, r: usize) -> BitIter<'_> {
        BitIter::new(self.row(r))
    }

    /// An owned [`BitSet`] copy of row `r` — the bridge for cold paths
    /// (reports, plan derivation) that want a standalone set.
    pub fn row_set(&self, r: usize) -> BitSet {
        BitSet::from_row(self.row(r), self.nbits)
    }

    /// Overwrites row `r` from a same-capacity [`BitSet`].
    ///
    /// # Panics
    ///
    /// Panics if the set's capacity differs from `nbits`.
    pub fn set_row(&mut self, r: usize, set: &BitSet) {
        assert_eq!(set.capacity(), self.nbits, "row capacity mismatch");
        self.row_mut(r).copy_from_slice(set.words());
    }

    /// Clears row `r`.
    pub fn clear_row(&mut self, r: usize) {
        self.row_mut(r).fill(0);
    }

    /// Sets every bit of `0..nbits` in row `r` (padding stays zero).
    pub fn fill_row(&mut self, r: usize) {
        let nbits = self.nbits;
        let row = self.row_mut(r);
        row.fill(!0);
        trim_row(row, nbits);
        debug_assert_row_hygiene(row, nbits);
    }

    /// Flips every bit of `0..nbits` in row `r` (padding stays zero).
    pub fn complement_row(&mut self, r: usize) {
        let nbits = self.nbits;
        let row = self.row_mut(r);
        for w in row.iter_mut() {
            *w = !*w;
        }
        trim_row(row, nbits);
        debug_assert_row_hygiene(row, nbits);
    }

    /// `row[dst] ∪= row[src]` within the matrix; returns `true` on change.
    pub fn union_row_from(&mut self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = self.row_pair_mut(dst, src);
        union_rows(d, s)
    }

    /// `row[dst] ∩= row[src]` within the matrix; returns `true` on change.
    pub fn intersect_row_from(&mut self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = self.row_pair_mut(dst, src);
        intersect_rows(d, s)
    }

    /// Copies `row[src]` into `row[dst]`; returns `true` on change.
    pub fn copy_row_from(&mut self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = self.row_pair_mut(dst, src);
        copy_row_changed(d, s)
    }

    /// Overwrites the whole matrix from a same-shape source without
    /// allocating — the bulk seed of a delta solve (previous fixpoint into
    /// the scratch arena).
    ///
    /// # Panics
    ///
    /// Panics if `other` has a different row count or row capacity.
    pub fn copy_from(&mut self, other: &BitMatrix) {
        assert_eq!(self.n_rows, other.n_rows, "row count mismatch");
        assert_eq!(self.nbits, other.nbits, "row capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Overwrites the matrix from a source with the same row count but a
    /// row capacity **at most** this matrix's, zero-extending every row —
    /// the universe-growth seed of a delta solve: retained fixpoint rows
    /// widen in place and the new columns start at ⊥ (absent). The tail
    /// words are cleared explicitly, so stale values from a previous solve
    /// of the same shape can never leak into the new columns; the source's
    /// own trailing-bit hygiene guarantees the partial last word is clean.
    ///
    /// # Panics
    ///
    /// Panics if `other` has a different row count or a row capacity larger
    /// than this matrix's.
    pub fn copy_from_widened(&mut self, other: &BitMatrix) {
        assert_eq!(self.n_rows, other.n_rows, "row count mismatch");
        assert!(
            other.nbits <= self.nbits,
            "copy_from_widened requires a source no wider than the destination \
             ({} > {})",
            other.nbits,
            self.nbits
        );
        if other.nbits == self.nbits {
            self.words.copy_from_slice(&other.words);
            return;
        }
        let src_w = other.words_per_row;
        for r in 0..self.n_rows {
            let dst = self.row_mut(r);
            dst[..src_w].copy_from_slice(other.row(r));
            dst[src_w..].fill(0);
        }
    }

    /// Resizes in place to `n_rows × nbits`, clearing every row and
    /// reusing the backing allocation whenever it is large enough.
    /// Returns `true` if the backing store had to grow (reallocate).
    pub fn reset(&mut self, n_rows: usize, nbits: usize) -> bool {
        let words_per_row = nbits.div_ceil(WORD_BITS);
        let total = n_rows * words_per_row;
        let grew = total > self.words.capacity();
        self.words.clear();
        self.words.resize(total, 0);
        self.n_rows = n_rows;
        self.nbits = nbits;
        self.words_per_row = words_per_row;
        grew
    }
}

/// Clears padding bits beyond `nbits` in the row's last word.
#[inline]
fn trim_row(row: &mut [u64], nbits: usize) {
    let used = nbits % WORD_BITS;
    if used != 0 {
        if let Some(last) = row.last_mut() {
            *last &= (1u64 << used) - 1;
        }
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix[{}x{}]{{", self.n_rows, self.nbits)?;
        for r in 0..self.n_rows {
            write!(f, "  {r}: {{")?;
            for (i, bit) in self.row_iter(r).enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{bit}")?;
            }
            writeln!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_independent_and_contiguous() {
        let mut m = BitMatrix::new(4, 100);
        m.set(1, 99);
        m.set(3, 0);
        assert!(m.contains(1, 99));
        assert!(!m.contains(0, 99) && !m.contains(2, 99));
        assert_eq!(m.count_row(1), 1);
        assert_eq!(m.words_per_row(), 2);
        assert_eq!(m.row(1).len(), 2);
        assert_eq!(m.row_set(3).iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn filled_and_complement_respect_capacity() {
        let mut m = BitMatrix::filled(3, 67);
        for r in 0..3 {
            assert_eq!(m.count_row(r), 67);
        }
        m.complement_row(1);
        assert!(m.row_is_empty(1));
        m.complement_row(1);
        assert_eq!(m.count_row(1), 67);
        assert_eq!(m.row_iter(1).last(), Some(66));
        // Padding bits above 67 stay zero after complement (hygiene).
        assert_eq!(m.row(1)[1] & !((1u64 << 3) - 1), 0);
    }

    #[test]
    fn row_pair_mut_both_orders() {
        let mut m = BitMatrix::new(3, 64);
        m.set(0, 1);
        m.set(2, 5);
        {
            let (d, s) = m.row_pair_mut(0, 2);
            assert!(union_rows(d, s));
        }
        assert!(m.contains(0, 1) && m.contains(0, 5));
        {
            let (d, s) = m.row_pair_mut(2, 0);
            assert!(copy_row_changed(d, s));
        }
        assert_eq!(m.row(0), m.row(2));
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn row_pair_mut_rejects_aliasing() {
        BitMatrix::new(2, 8).row_pair_mut(1, 1);
    }

    #[test]
    fn in_matrix_kernels() {
        let mut m = BitMatrix::new(3, 70);
        m.set(0, 69);
        m.set(1, 69);
        m.set(1, 3);
        assert!(m.union_row_from(0, 1));
        assert!(!m.union_row_from(0, 1));
        assert!(m.intersect_row_from(0, 2)); // row 2 empty
        assert!(m.row_is_empty(0));
        assert!(m.copy_row_from(0, 1));
        assert_eq!(m.row_set(0), m.row_set(1));
        assert!(!m.union_row_from(1, 1)); // self no-op
    }

    #[test]
    fn set_row_and_row_set_round_trip() {
        let mut m = BitMatrix::new(2, 130);
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(129);
        m.set_row(1, &s);
        assert_eq!(m.row_set(1), s);
        assert!(m.row_is_empty(0));
    }

    #[test]
    fn reset_reuses_or_grows() {
        let mut m = BitMatrix::filled(4, 64);
        assert!(!m.reset(2, 100)); // 4 words ≤ old capacity of 4
        assert_eq!((m.n_rows(), m.nbits(), m.words_per_row()), (2, 100, 2));
        assert!(m.row_is_empty(0) && m.row_is_empty(1));
        assert!(m.reset(64, 256)); // 256 words: must grow
        assert_eq!(m.n_rows(), 64);
        assert!(m.row_is_empty(63));
    }

    #[test]
    fn copy_from_widened_zero_extends_and_clears_stale_tail() {
        let mut src = BitMatrix::new(3, 70);
        src.set(0, 0);
        src.set(1, 69);
        src.set(2, 33);
        // Destination is wider and carries stale garbage in every word —
        // exactly the state a reused scratch leaves behind.
        let mut dst = BitMatrix::filled(3, 200);
        dst.copy_from_widened(&src);
        for r in 0..3 {
            assert_eq!(
                dst.row_iter(r).collect::<Vec<_>>(),
                src.row_iter(r).collect::<Vec<_>>(),
                "row {r}"
            );
        }
        // New columns (70..200) start absent, including the partial word
        // the source's trailing-bit hygiene shares with retained bits.
        assert!(!dst.contains(1, 70) && !dst.contains(1, 199));
    }

    #[test]
    fn copy_from_widened_same_width_is_plain_copy() {
        let mut src = BitMatrix::new(2, 65);
        src.set(1, 64);
        let mut dst = BitMatrix::filled(2, 65);
        dst.copy_from_widened(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "no wider than the destination")]
    fn copy_from_widened_rejects_wider_source() {
        let src = BitMatrix::new(2, 100);
        BitMatrix::new(2, 64).copy_from_widened(&src);
    }

    #[test]
    fn equality_is_shape_and_content() {
        let mut a = BitMatrix::new(2, 10);
        let mut b = BitMatrix::new(2, 10);
        assert_eq!(a, b);
        a.set(0, 3);
        assert_ne!(a, b);
        b.set(0, 3);
        assert_eq!(a, b);
        assert_ne!(a, BitMatrix::new(3, 10));
    }
}
