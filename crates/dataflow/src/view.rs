//! Cached CFG orderings and adjacency, shared across analyses.

use lcm_ir::{graph, BlockId, Function};

/// Precomputed traversal orders and adjacency for one function's CFG.
///
/// Every dataflow solve needs a depth-first ordering and the predecessor /
/// successor lists; the four analyses of lazy code motion run over the
/// *same* CFG, so recomputing them per solve (as
/// [`Problem::solve`](crate::Problem::solve) does when called standalone) is
/// pure waste. Build a `CfgView` once per function and pass it to
/// [`Problem::solve_in`](crate::Problem::solve_in) /
/// [`Problem::solve_worklist_in`](crate::Problem::solve_worklist_in).
///
/// The view is a snapshot: it must not be used after the function's CFG is
/// mutated (block count and edges are what matter; instruction edits within
/// blocks are fine).
///
/// ```
/// use lcm_dataflow::CfgView;
/// use lcm_ir::parse_function;
///
/// let f = parse_function(
///     "fn g {
///      entry:
///        jmp b
///      b:
///        ret
///      }",
/// )?;
/// let view = CfgView::new(&f);
/// assert_eq!(view.rpo().first(), Some(&f.entry()));
/// assert_eq!(view.preds(f.exit()), &[f.entry()]);
/// assert_eq!(view.succs(f.entry()), &[f.exit()]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CfgView {
    rpo: Vec<BlockId>,
    postorder: Vec<BlockId>,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    num_blocks: usize,
    num_edges: usize,
    retreating_edges: usize,
}

impl CfgView {
    /// Computes the orderings and adjacency tables for `f`.
    pub fn new(f: &Function) -> Self {
        let postorder = graph::postorder(f);
        let mut rpo = postorder.clone();
        rpo.reverse();
        let succs: Vec<Vec<BlockId>> = f.block_ids().map(|b| f.succs(b).collect()).collect();
        let mut pos = vec![usize::MAX; f.num_blocks()];
        for (i, &b) in rpo.iter().enumerate() {
            pos[b.index()] = i;
        }
        let mut num_edges = 0;
        let mut retreating_edges = 0;
        for &b in &rpo {
            for s in &succs[b.index()] {
                num_edges += 1;
                if pos[s.index()] <= pos[b.index()] {
                    retreating_edges += 1;
                }
            }
        }
        CfgView {
            rpo,
            postorder,
            preds: f.preds(),
            succs,
            num_blocks: f.num_blocks(),
            num_edges,
            retreating_edges,
        }
    }

    /// Reverse postorder (the iteration order for forward problems).
    /// Unreachable blocks are absent.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Postorder (the iteration order for backward problems). Unreachable
    /// blocks are absent.
    pub fn postorder(&self) -> &[BlockId] {
        &self.postorder
    }

    /// The predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// The successors of `b` (with duplicates if both branch arms target
    /// the same block, mirroring [`Function::succs`]).
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// The number of blocks in the snapshotted function.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The number of CFG edges leaving reachable blocks.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The number of *retreating* edges — edges `u → v` with
    /// `rpo(v) ≤ rpo(u)` (back edges and self loops; for reducible graphs
    /// exactly the back edges). This upper-bounds the CFG's
    /// loop-connectedness `d`, so `d + 2` order-respecting sweeps — the
    /// Kam–Ullman convergence bound for rapid frameworks, which underlies
    /// the paper's "as cheap as unidirectional analyses" claim — is itself
    /// bounded by `retreating_edges() + 2`. The solvers use this to derive
    /// the sweep budget behind
    /// [`SolverDiverged`](crate::SolverDiverged).
    pub fn retreating_edges(&self) -> usize {
        self.retreating_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn matches_fresh_graph_computations() {
        let f = parse_function(
            "fn m {
             entry:
               br c, a, b
             a:
               br d, a, j
             b:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let view = CfgView::new(&f);
        assert_eq!(view.rpo(), graph::reverse_postorder(&f).as_slice());
        assert_eq!(view.postorder(), graph::postorder(&f).as_slice());
        let preds = f.preds();
        for b in f.block_ids() {
            assert_eq!(view.preds(b), preds[b.index()].as_slice());
            assert_eq!(view.succs(b), f.succs(b).collect::<Vec<_>>().as_slice());
        }
        assert_eq!(view.num_blocks(), f.num_blocks());
        // entry→a, entry→b, a→a, a→j, b→j; only the self loop retreats.
        assert_eq!(view.num_edges(), 5);
        assert_eq!(view.retreating_edges(), 1);
    }

    #[test]
    fn acyclic_graph_has_no_retreating_edges() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let view = CfgView::new(&f);
        assert_eq!(view.retreating_edges(), 0);
        assert_eq!(view.num_edges(), 4);
    }
}
