//! Cached CFG orderings and adjacency, shared across analyses.

use lcm_ir::{graph, BlockId, Function};

/// Precomputed traversal orders and adjacency for one function's CFG.
///
/// Every dataflow solve needs a depth-first ordering and the predecessor /
/// successor lists; the four analyses of lazy code motion run over the
/// *same* CFG, so recomputing them per solve (as
/// [`Problem::solve`](crate::Problem::solve) does when called standalone) is
/// pure waste. Build a `CfgView` once per function and pass it to
/// [`Problem::solve_in`](crate::Problem::solve_in) /
/// [`Problem::solve_worklist_in`](crate::Problem::solve_worklist_in).
///
/// The view is a snapshot: it must not be used after the function's CFG is
/// mutated (block count and edges are what matter; instruction edits within
/// blocks are fine).
///
/// ```
/// use lcm_dataflow::CfgView;
/// use lcm_ir::parse_function;
///
/// let f = parse_function(
///     "fn g {
///      entry:
///        jmp b
///      b:
///        ret
///      }",
/// )?;
/// let view = CfgView::new(&f);
/// assert_eq!(view.rpo().first(), Some(&f.entry()));
/// assert_eq!(view.preds(f.exit()), &[f.entry()]);
/// assert_eq!(view.succs(f.entry()), &[f.exit()]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CfgView {
    rpo: Vec<BlockId>,
    postorder: Vec<BlockId>,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    num_blocks: usize,
}

impl CfgView {
    /// Computes the orderings and adjacency tables for `f`.
    pub fn new(f: &Function) -> Self {
        let postorder = graph::postorder(f);
        let mut rpo = postorder.clone();
        rpo.reverse();
        let succs = f.block_ids().map(|b| f.succs(b).collect()).collect();
        CfgView {
            rpo,
            postorder,
            preds: f.preds(),
            succs,
            num_blocks: f.num_blocks(),
        }
    }

    /// Reverse postorder (the iteration order for forward problems).
    /// Unreachable blocks are absent.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Postorder (the iteration order for backward problems). Unreachable
    /// blocks are absent.
    pub fn postorder(&self) -> &[BlockId] {
        &self.postorder
    }

    /// The predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// The successors of `b` (with duplicates if both branch arms target
    /// the same block, mirroring [`Function::succs`]).
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// The number of blocks in the snapshotted function.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn matches_fresh_graph_computations() {
        let f = parse_function(
            "fn m {
             entry:
               br c, a, b
             a:
               br d, a, j
             b:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let view = CfgView::new(&f);
        assert_eq!(view.rpo(), graph::reverse_postorder(&f).as_slice());
        assert_eq!(view.postorder(), graph::postorder(&f).as_slice());
        let preds = f.preds();
        for b in f.block_ids() {
            assert_eq!(view.preds(b), preds[b.index()].as_slice());
            assert_eq!(view.succs(b), f.succs(b).collect::<Vec<_>>().as_slice());
        }
        assert_eq!(view.num_blocks(), f.num_blocks());
    }
}
