//! Cached CFG orderings and adjacency, shared across analyses.

use lcm_ir::{graph, BlockId, Function};

/// Precomputed traversal orders and adjacency for one function's CFG.
///
/// Every dataflow solve needs a depth-first ordering and the predecessor /
/// successor lists; the four analyses of lazy code motion run over the
/// *same* CFG, so recomputing them per solve (as
/// [`Problem::solve`](crate::Problem::solve) does when called standalone) is
/// pure waste. Build a `CfgView` once per function and pass it to
/// [`Problem::solve_in`](crate::Problem::solve_in) /
/// [`Problem::solve_worklist_in`](crate::Problem::solve_worklist_in).
///
/// The view is a snapshot: it must not be used after the function's CFG is
/// mutated (block count and edges are what matter; instruction edits within
/// blocks are fine).
///
/// ```
/// use lcm_dataflow::CfgView;
/// use lcm_ir::parse_function;
///
/// let f = parse_function(
///     "fn g {
///      entry:
///        jmp b
///      b:
///        ret
///      }",
/// )?;
/// let view = CfgView::new(&f);
/// assert_eq!(view.rpo().first(), Some(&f.entry()));
/// assert_eq!(view.preds(f.exit()), &[f.entry()]);
/// assert_eq!(view.succs(f.entry()), &[f.exit()]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CfgView {
    rpo: Vec<BlockId>,
    postorder: Vec<BlockId>,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    num_blocks: usize,
    num_edges: usize,
    retreating_edges: usize,
    /// Topological SCC id per block (`u32::MAX` for unreachable blocks).
    scc_of: Vec<u32>,
    /// Reachable blocks grouped by SCC in topological order of the
    /// condensation; within each SCC, blocks are in RPO. `scc_starts[s]..
    /// scc_starts[s + 1]` indexes `scc_blocks` for SCC `s`.
    scc_blocks: Vec<BlockId>,
    scc_starts: Vec<u32>,
}

impl CfgView {
    /// Computes the orderings, adjacency tables and SCC condensation
    /// for `f`.
    pub fn new(f: &Function) -> Self {
        let postorder = graph::postorder(f);
        let mut rpo = postorder.clone();
        rpo.reverse();
        let succs: Vec<Vec<BlockId>> = f.block_ids().map(|b| f.succs(b).collect()).collect();
        let mut pos = vec![usize::MAX; f.num_blocks()];
        for (i, &b) in rpo.iter().enumerate() {
            pos[b.index()] = i;
        }
        let mut num_edges = 0;
        let mut retreating_edges = 0;
        for &b in &rpo {
            for s in &succs[b.index()] {
                num_edges += 1;
                if pos[s.index()] <= pos[b.index()] {
                    retreating_edges += 1;
                }
            }
        }
        let (scc_of, scc_blocks, scc_starts) = condense_sccs(&rpo, &succs, f.num_blocks());
        CfgView {
            rpo,
            postorder,
            preds: f.preds(),
            succs,
            num_blocks: f.num_blocks(),
            num_edges,
            retreating_edges,
            scc_of,
            scc_blocks,
            scc_starts,
        }
    }

    /// Reverse postorder (the iteration order for forward problems).
    /// Unreachable blocks are absent.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Postorder (the iteration order for backward problems). Unreachable
    /// blocks are absent.
    pub fn postorder(&self) -> &[BlockId] {
        &self.postorder
    }

    /// The predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// The successors of `b` (with duplicates if both branch arms target
    /// the same block, mirroring [`Function::succs`]).
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// The number of blocks in the snapshotted function.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The number of CFG edges leaving reachable blocks.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The number of *retreating* edges — edges `u → v` with
    /// `rpo(v) ≤ rpo(u)` (back edges and self loops; for reducible graphs
    /// exactly the back edges). This upper-bounds the CFG's
    /// loop-connectedness `d`, so `d + 2` order-respecting sweeps — the
    /// Kam–Ullman convergence bound for rapid frameworks, which underlies
    /// the paper's "as cheap as unidirectional analyses" claim — is itself
    /// bounded by `retreating_edges() + 2`. The solvers use this to derive
    /// the sweep budget behind
    /// [`SolverDiverged`](crate::SolverDiverged).
    pub fn retreating_edges(&self) -> usize {
        self.retreating_edges
    }

    /// The number of strongly connected components among *reachable*
    /// blocks (the condensation's node count).
    pub fn num_sccs(&self) -> usize {
        self.scc_starts.len().saturating_sub(1)
    }

    /// The blocks of SCC `s` in RPO. SCC ids are topological: every edge
    /// of the condensation goes from a lower id to a strictly higher one,
    /// which is the loop-aware priority order the SCC worklist solver
    /// drains — each component reaches its local fixpoint before any
    /// component downstream of it is touched.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_sccs()`.
    pub fn scc_blocks(&self, s: usize) -> &[BlockId] {
        let lo = self.scc_starts[s] as usize;
        let hi = self.scc_starts[s + 1] as usize;
        &self.scc_blocks[lo..hi]
    }

    /// The topological SCC id of `b`, or `None` if `b` is unreachable.
    pub fn scc_of(&self, b: BlockId) -> Option<usize> {
        match self.scc_of[b.index()] {
            u32::MAX => None,
            s => Some(s as usize),
        }
    }

    /// Whether SCC `s` is a loop: more than one block, or a single block
    /// with a self edge.
    pub fn scc_is_loop(&self, s: usize) -> bool {
        let blocks = self.scc_blocks(s);
        match blocks {
            [b] => self.succs(*b).contains(b),
            _ => blocks.len() > 1,
        }
    }
}

/// One-shot iterative Tarjan over the reachable blocks, with component ids
/// remapped so they are *topological* (an edge `u → v` across components
/// has `scc_of(u) < scc_of(v)`). Tarjan completes components in reverse
/// topological order, so the remap is just `n_sccs - 1 - completion_rank`.
fn condense_sccs(
    rpo: &[BlockId],
    succs: &[Vec<BlockId>],
    num_blocks: usize,
) -> (Vec<u32>, Vec<BlockId>, Vec<u32>) {
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; num_blocks];
    let mut low = vec![0u32; num_blocks];
    let mut on_stack = vec![false; num_blocks];
    let mut scc_of = vec![UNSEEN; num_blocks];
    let mut stack: Vec<usize> = Vec::new();
    // Explicit call stack of (block index, next successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    let mut next_index = 0u32;
    let mut completed = 0u32;

    for &root in rpo {
        if index[root.index()] != UNSEEN {
            continue;
        }
        frames.push((root.index(), 0));
        while let Some(&mut (v, ref mut next_succ)) = frames.last_mut() {
            if *next_succ == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(w) = succs[v].get(*next_succ).map(|b| b.index()) {
                *next_succ += 1;
                if index[w] == UNSEEN {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = completed;
                        if w == v {
                            break;
                        }
                    }
                    completed += 1;
                }
            }
        }
    }

    // Remap completion ranks (reverse topological) to topological ids and
    // bucket the blocks, visiting in RPO so each bucket ends up RPO-sorted.
    let n_sccs = completed as usize;
    for s in scc_of.iter_mut().filter(|s| **s != UNSEEN) {
        *s = completed - 1 - *s;
    }
    let mut counts = vec![0u32; n_sccs + 1];
    for &b in rpo {
        counts[scc_of[b.index()] as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let scc_starts = counts.clone();
    let mut scc_blocks = vec![rpo.first().copied().unwrap_or(BlockId::from_index(0)); rpo.len()];
    let mut fill = counts;
    for &b in rpo {
        let s = scc_of[b.index()] as usize;
        scc_blocks[fill[s] as usize] = b;
        fill[s] += 1;
    }
    (scc_of, scc_blocks, scc_starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn matches_fresh_graph_computations() {
        let f = parse_function(
            "fn m {
             entry:
               br c, a, b
             a:
               br d, a, j
             b:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let view = CfgView::new(&f);
        assert_eq!(view.rpo(), graph::reverse_postorder(&f).as_slice());
        assert_eq!(view.postorder(), graph::postorder(&f).as_slice());
        let preds = f.preds();
        for b in f.block_ids() {
            assert_eq!(view.preds(b), preds[b.index()].as_slice());
            assert_eq!(view.succs(b), f.succs(b).collect::<Vec<_>>().as_slice());
        }
        assert_eq!(view.num_blocks(), f.num_blocks());
        // entry→a, entry→b, a→a, a→j, b→j; only the self loop retreats.
        assert_eq!(view.num_edges(), 5);
        assert_eq!(view.retreating_edges(), 1);
    }

    #[test]
    fn scc_condensation_is_topological() {
        // entry → {a ⇄ b} → {c self-loop} → exit, plus a DAG bypass.
        let f = parse_function(
            "fn s {
             entry:
               br p, a, c
             a:
               br q, b, c
             b:
               jmp a
             c:
               br r, c, done
             done:
               ret
             }",
        )
        .unwrap();
        let view = CfgView::new(&f);
        let id = |n: &str| view.scc_of(f.block_by_name(n).unwrap()).unwrap();
        // {a, b} is one component, c its own looping component.
        assert_eq!(id("a"), id("b"));
        assert_ne!(id("a"), id("c"));
        assert_eq!(view.num_sccs(), 4); // entry, {a,b}, {c}, done
                                        // Every CFG edge respects topological component order.
        for b in f.block_ids() {
            for s in view.succs(b) {
                assert!(
                    view.scc_of(b).unwrap() <= view.scc_of(*s).unwrap(),
                    "edge {b:?}→{s:?} violates topo order"
                );
            }
        }
        // Loop detection: {a,b} and {c} loop, entry and done do not.
        assert!(view.scc_is_loop(id("a")));
        assert!(view.scc_is_loop(id("c")));
        assert!(!view.scc_is_loop(id("entry")));
        assert!(!view.scc_is_loop(id("done")));
        // Members are reported in RPO and cover all reachable blocks once.
        let mut seen = Vec::new();
        for s in 0..view.num_sccs() {
            seen.extend_from_slice(view.scc_blocks(s));
        }
        let mut sorted = seen.clone();
        sorted.sort_by_key(|b| b.index());
        sorted.dedup();
        assert_eq!(sorted.len(), f.num_blocks());
    }

    #[test]
    fn scc_of_unreachable_is_none() {
        let mut f = parse_function(
            "fn u {
             entry:
               ret
             }",
        )
        .unwrap();
        // An unreachable block appended after parsing.
        let orphan = f.add_block(lcm_ir::BlockData::new("orphan"));
        let view = CfgView::new(&f);
        assert_eq!(view.scc_of(orphan), None);
        assert_eq!(view.num_sccs(), 1);
        assert!(view.scc_of(f.entry()).is_some());
    }

    #[test]
    fn acyclic_graph_has_no_retreating_edges() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let view = CfgView::new(&f);
        assert_eq!(view.retreating_edges(), 0);
        assert_eq!(view.num_edges(), 4);
    }
}
