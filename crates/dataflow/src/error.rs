//! Typed errors for the dataflow layer.

use std::error::Error;
use std::fmt;

/// A fixpoint iteration exhausted its sweep bound without converging.
///
/// The bound is derived from the CFG's loop-connectedness (upper-bounded by
/// its retreating-edge count; see [`CfgView::retreating_edges`]
/// (crate::CfgView::retreating_edges)), which for the rapid gen/kill
/// frameworks used here is a proven convergence bound — so this error never
/// fires on a well-formed monotone problem. It exists to turn a corrupted
/// transfer function or oscillating (non-monotone) system into a recoverable
/// diagnostic instead of an infinite loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SolverDiverged {
    /// The name of the analysis ([`Problem::with_name`]
    /// (crate::Problem::with_name)); `"dataflow"` when unnamed.
    pub analysis: &'static str,
    /// The number of sweeps (round-robin) or sweep-equivalents (worklist)
    /// performed before giving up.
    pub sweeps: usize,
}

impl fmt::Display for SolverDiverged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analysis `{}` did not converge within {} sweeps \
             (non-monotone or corrupted transfer functions?)",
            self.analysis, self.sweeps
        )
    }
}

impl Error for SolverDiverged {}

/// Two bit-vector shapes that were required to agree did not.
///
/// Returned by the checked (`try_`) constructors and set operations; the
/// panicking variants raise the same message via `panic!`. Both forms are
/// active in release builds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShapeMismatch {
    /// What was being matched (e.g. `"one transfer function per block"`).
    pub context: &'static str,
    /// The required size.
    pub expected: usize,
    /// The size actually supplied.
    pub found: usize,
}

impl fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} required: expected {}, found {}",
            self.context, self.expected, self.found
        )
    }
}

impl Error for ShapeMismatch {}
