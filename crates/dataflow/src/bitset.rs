//! A dense, fixed-capacity bit set packed into 64-bit words, plus the
//! word-slice "row kernels" shared with [`BitMatrix`](crate::BitMatrix).
//!
//! The kernels operate on bare `&[u64]` rows so a [`BitSet`] and a
//! [`BitMatrix`](crate::BitMatrix) row are interchangeable operands: both
//! maintain the *trailing-bit hygiene* invariant (all bits at positions
//! `>= nbits` in the last word are zero), which the kernels preserve —
//! union/intersection/difference/copy of trimmed rows are trimmed — so
//! `count()`/`is_empty()` can never drift.

use std::fmt;

use crate::error::ShapeMismatch;

pub(crate) const WORD_BITS: usize = 64;

/// The shared body of the fused row kernels: applies `op` word-wise over
/// equal-length rows, four words per iteration with a scalar tail, and
/// accumulates an XOR-based difference mask instead of a per-word boolean.
/// The fixed-width inner loop is branch-free and independent across lanes,
/// the shape LLVM autovectorizes on stable without any explicit SIMD.
///
/// # Panics
///
/// Panics if the rows have different lengths.
#[inline(always)]
fn zip_rows_changed(dst: &mut [u64], src: &[u64], op: impl Fn(u64, u64) -> u64) -> bool {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    if dst.len() >= WIDE_ROW_WORDS {
        return zip_rows_changed_tiled(dst, src, op);
    }
    let mut diff = 0u64;
    let mut dst_chunks = dst.chunks_exact_mut(4);
    let mut src_chunks = src.chunks_exact(4);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        for i in 0..4 {
            let new = op(d[i], s[i]);
            diff |= new ^ d[i];
            d[i] = new;
        }
    }
    for (a, &b) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        let new = op(*a, b);
        diff |= new ^ *a;
        *a = new;
    }
    diff != 0
}

/// Rows at or above this many words (≥ 2048-bit universes) take the tiled
/// kernel path below instead of the plain 4-word unroll.
pub const WIDE_ROW_WORDS: usize = 32;

/// Tile size of the wide-row kernel: 32 words = 256 bytes = four cache
/// lines, small enough to stay in L1 while the hardware prefetcher streams
/// the next tile.
const TILE_WORDS: usize = 32;

/// The wide-universe variant of [`zip_rows_changed`]: processes the row in
/// four-cache-line tiles with four *independent* diff accumulators (one
/// per unroll lane) so the change-detection OR never serialises the lanes,
/// and the compiler sees a long fixed-trip-count inner loop it can
/// vectorise and software-pipeline. On narrow rows the plain unroll wins
/// (less prologue); the dispatch threshold is [`WIDE_ROW_WORDS`].
#[inline(always)]
fn zip_rows_changed_tiled(dst: &mut [u64], src: &[u64], op: impl Fn(u64, u64) -> u64) -> bool {
    debug_assert_eq!(dst.len(), src.len(), "row length mismatch");
    let mut diff = [0u64; 4];
    let mut dst_tiles = dst.chunks_exact_mut(TILE_WORDS);
    let mut src_tiles = src.chunks_exact(TILE_WORDS);
    for (d, s) in (&mut dst_tiles).zip(&mut src_tiles) {
        let mut i = 0;
        while i < TILE_WORDS {
            for lane in 0..4 {
                let new = op(d[i + lane], s[i + lane]);
                diff[lane] |= new ^ d[i + lane];
                d[i + lane] = new;
            }
            i += 4;
        }
    }
    let mut tail = 0u64;
    for (a, &b) in dst_tiles
        .into_remainder()
        .iter_mut()
        .zip(src_tiles.remainder())
    {
        let new = op(*a, b);
        tail |= new ^ *a;
        *a = new;
    }
    (diff[0] | diff[1] | diff[2] | diff[3] | tail) != 0
}

/// `dst ∪= src` over equal-length word rows; returns `true` if `dst`
/// changed.
///
/// # Panics
///
/// Panics if the rows have different lengths.
#[inline]
pub fn union_rows(dst: &mut [u64], src: &[u64]) -> bool {
    zip_rows_changed(dst, src, |a, b| a | b)
}

/// `dst ∩= src` over equal-length word rows; returns `true` if `dst`
/// changed.
///
/// # Panics
///
/// Panics if the rows have different lengths.
#[inline]
pub fn intersect_rows(dst: &mut [u64], src: &[u64]) -> bool {
    zip_rows_changed(dst, src, |a, b| a & b)
}

/// `dst −= src` over equal-length word rows; returns `true` if `dst`
/// changed.
///
/// # Panics
///
/// Panics if the rows have different lengths.
#[inline]
pub fn difference_rows(dst: &mut [u64], src: &[u64]) -> bool {
    zip_rows_changed(dst, src, |a, b| a & !b)
}

/// Overwrites `dst` with `src`, reporting word-granular whether anything
/// actually changed — the dirty-detection primitive of the fused solver.
///
/// # Panics
///
/// Panics if the rows have different lengths.
#[inline]
pub fn copy_row_changed(dst: &mut [u64], src: &[u64]) -> bool {
    zip_rows_changed(dst, src, |_, b| b)
}

/// Tests membership of `bit` in a word row (callers guarantee
/// `bit < nbits`; hygiene keeps padding bits zero so an in-row but
/// out-of-universe probe cannot report a phantom member).
///
/// # Panics
///
/// Panics if `bit` lies beyond the row's word storage.
#[inline]
pub fn row_contains(row: &[u64], bit: usize) -> bool {
    row[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
}

/// Returns `true` if no bit is set in the row.
#[inline]
pub fn row_is_empty(row: &[u64]) -> bool {
    row.iter().all(|&w| w == 0)
}

/// Counts the set bits in the row.
#[inline]
pub fn count_row(row: &[u64]) -> usize {
    row.iter().map(|w| w.count_ones() as usize).sum()
}

/// Asserts (debug builds only) the trailing-bit hygiene invariant: every
/// bit at position `>= nbits` in the row is zero.
#[inline]
pub(crate) fn debug_assert_row_hygiene(row: &[u64], nbits: usize) {
    #[cfg(debug_assertions)]
    {
        let used = nbits % WORD_BITS;
        if used != 0 {
            if let Some(&last) = row.last() {
                debug_assert_eq!(
                    last & !((1u64 << used) - 1),
                    0,
                    "trailing-bit hygiene violated: bits above nbits={nbits} are set"
                );
            }
        }
        let _ = (row, nbits);
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (row, nbits);
    }
}

/// A word-skipping iterator over the set bits of a word row, in increasing
/// order. Zero words are skipped in one comparison each; within a nonzero
/// word, bits are extracted with `trailing_zeros` + clear-lowest-set-bit.
///
/// Shared by [`BitSet::iter`] and
/// [`BitMatrix::row_iter`](crate::BitMatrix::row_iter).
#[derive(Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    next_word: usize,
    cur: u64,
    base: usize,
}

impl<'a> BitIter<'a> {
    /// Iterates the set bits of a raw word row.
    pub fn new(words: &'a [u64]) -> Self {
        BitIter {
            words,
            next_word: 0,
            cur: 0,
            base: 0,
        }
    }
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.cur == 0 {
            let &w = self.words.get(self.next_word)?;
            self.cur = w;
            self.base = self.next_word * WORD_BITS;
            self.next_word += 1;
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        Some(self.base + bit)
    }
}

/// A fixed-capacity set of small integers, stored one bit each.
///
/// All binary operations require both operands to have the same capacity
/// (the analyses always operate within one universe of expressions), and
/// mutating operations report whether they changed the set so fixpoint
/// solvers can detect convergence.
///
/// ```
/// use lcm_dataflow::BitSet;
///
/// let mut a = BitSet::new(130);
/// a.insert(0);
/// a.insert(129);
/// let mut b = BitSet::new(130);
/// b.insert(129);
/// assert!(a.is_superset(&b));
/// a.intersect_with(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![129]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for bits `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(WORD_BITS)],
            nbits,
        }
    }

    /// Creates a full set (all of `0..nbits` present).
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::new(nbits);
        s.insert_all();
        s
    }

    /// The capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// The number of backing words (the unit of the complexity counters).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// The backing words as a row view, interchangeable with a
    /// [`BitMatrix`](crate::BitMatrix) row in the row kernels.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a set of capacity `nbits` from a raw word row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match `nbits.div_ceil(64)`.
    pub fn from_row(row: &[u64], nbits: usize) -> Self {
        assert_eq!(row.len(), nbits.div_ceil(WORD_BITS), "row length mismatch");
        debug_assert_row_hygiene(row, nbits);
        BitSet {
            words: row.to_vec(),
            nbits,
        }
    }

    /// Resizes in place to capacity `nbits` and clears all bits, reusing
    /// the existing backing allocation whenever it is large enough.
    /// Returns `true` if the backing store had to grow (reallocate).
    pub fn reset(&mut self, nbits: usize) -> bool {
        let words = nbits.div_ceil(WORD_BITS);
        let grew = words > self.words.capacity();
        self.words.clear();
        self.words.resize(words, 0);
        self.nbits = nbits;
        grew
    }

    /// Tests membership.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= capacity`.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        self.words[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
    }

    /// Inserts a bit; returns `true` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= capacity`.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let was_absent = *word & mask == 0;
        *word |= mask;
        was_absent
    }

    /// Removes a bit; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= capacity`.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let was_present = *word & mask != 0;
        *word &= !mask;
        was_present
    }

    /// Inserts every bit in `0..capacity`.
    pub fn insert_all(&mut self) {
        for w in &mut self.words {
            *w = !0;
        }
        self.trim();
        debug_assert_row_hygiene(&self.words, self.nbits);
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Counts the set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        self.check(other);
        union_rows(&mut self.words, &other.words)
    }

    /// `self ∪= row` where `row` is a raw word row of the same width
    /// (typically a [`BitMatrix`](crate::BitMatrix) row); returns `true`
    /// if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from [`num_words`](Self::num_words).
    pub fn union_with_row(&mut self, row: &[u64]) -> bool {
        union_rows(&mut self.words, row)
    }

    /// `self ∩= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        self.check(other);
        intersect_rows(&mut self.words, &other.words)
    }

    /// `self ∩= row` for a raw word row of the same width; returns `true`
    /// if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from [`num_words`](Self::num_words).
    pub fn intersect_with_row(&mut self, row: &[u64]) -> bool {
        intersect_rows(&mut self.words, row)
    }

    /// `self −= other` (clears every bit present in `other`); returns
    /// `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        self.check(other);
        difference_rows(&mut self.words, &other.words)
    }

    /// `self −= row` for a raw word row of the same width; returns `true`
    /// if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from [`num_words`](Self::num_words).
    pub fn difference_with_row(&mut self, row: &[u64]) -> bool {
        difference_rows(&mut self.words, row)
    }

    /// Overwrites `self` with `other`'s contents.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        self.check(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Overwrites `self` with a raw word row of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from [`num_words`](Self::num_words).
    pub fn copy_from_row(&mut self, row: &[u64]) {
        self.words.copy_from_slice(row);
        debug_assert_row_hygiene(&self.words, self.nbits);
    }

    /// Overwrites `self` with `other`'s contents, reporting word-granular
    /// whether anything actually changed — the dirty-detection primitive
    /// the fused solver uses to skip transfers whose input is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn copy_from_changed(&mut self, other: &BitSet) -> bool {
        self.check(other);
        copy_row_changed(&mut self.words, &other.words)
    }

    /// Flips every bit in `0..capacity`.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
        debug_assert_row_hygiene(&self.words, self.nbits);
    }

    /// Returns `true` if every bit of `other` is in `self`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| b & !a == 0)
    }

    /// Returns `true` if the sets share no bit.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & b == 0)
    }

    /// Iterates over the set bits in increasing order, skipping zero words
    /// wholesale (shared with
    /// [`BitMatrix::row_iter`](crate::BitMatrix::row_iter)).
    pub fn iter(&self) -> BitIter<'_> {
        BitIter::new(&self.words)
    }

    /// Checks that `other` has the same capacity, as the binary operations
    /// require, returning a typed [`ShapeMismatch`] instead of panicking.
    /// This is the checked counterpart of the assertion the panicking
    /// operations use; both are active in release builds.
    #[inline]
    pub fn shape_check(&self, other: &BitSet) -> Result<(), ShapeMismatch> {
        if self.nbits == other.nbits {
            Ok(())
        } else {
            Err(ShapeMismatch {
                context: "matching bit-set capacity",
                expected: self.nbits,
                found: other.nbits,
            })
        }
    }

    /// Checked [`union_with`](Self::union_with): `self ∪= other`, or a
    /// [`ShapeMismatch`] if the capacities differ. `Ok(true)` means `self`
    /// changed.
    pub fn try_union_with(&mut self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.union_with(other))
    }

    /// Checked [`intersect_with`](Self::intersect_with).
    pub fn try_intersect_with(&mut self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.intersect_with(other))
    }

    /// Checked [`difference_with`](Self::difference_with).
    pub fn try_difference_with(&mut self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.difference_with(other))
    }

    /// Checked [`is_superset`](Self::is_superset).
    pub fn try_is_superset(&self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.is_superset(other))
    }

    #[inline]
    fn check(&self, other: &BitSet) {
        assert_eq!(
            self.nbits, other.nbits,
            "bit-set capacity mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }

    /// Clears padding bits beyond `nbits` in the last word.
    fn trim(&mut self) {
        let used = self.nbits % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet{{")?;
        for (i, bit) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{bit}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects bits into a set sized to the largest element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let bits: Vec<usize> = iter.into_iter().collect();
        let nbits = bits.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(nbits);
        for b in bits {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        BitSet::new(10).contains(10);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn checked_ops_return_shape_mismatch() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        let err = a.try_union_with(&b).unwrap_err();
        assert_eq!(err.expected, 10);
        assert_eq!(err.found, 11);
        assert!(err.to_string().contains("capacity"));
        assert!(a.try_intersect_with(&b).is_err());
        assert!(a.try_difference_with(&b).is_err());
        assert!(a.try_is_superset(&b).is_err());

        let mut c = BitSet::new(11);
        c.insert(3);
        assert_eq!(c.try_union_with(&b), Ok(false));
        assert_eq!(c.try_is_superset(&b), Ok(true));
        assert_eq!(c.try_difference_with(&b), Ok(false));
    }

    #[test]
    fn lattice_ops_report_changes() {
        let mut a = BitSet::new(70);
        a.insert(1);
        let mut b = BitSet::new(70);
        b.insert(1);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
        let only_one = [1usize].into_iter().collect::<BitSet>().resized(70);
        assert!(a.intersect_with(&only_one));
        assert!(!a.intersect_with(&only_one));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    impl BitSet {
        /// Test helper: returns a copy resized to `nbits`.
        fn resized(&self, nbits: usize) -> BitSet {
            let mut s = BitSet::new(nbits);
            for b in self.iter() {
                s.insert(b);
            }
            s
        }
    }

    #[test]
    fn full_and_complement_respect_capacity() {
        let mut s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        s.complement();
        assert!(s.is_empty());
        s.complement();
        assert_eq!(s.count(), 67);
        assert_eq!(s.iter().last(), Some(66));
    }

    #[test]
    fn difference_superset_disjoint() {
        let a: BitSet = [1usize, 2, 3].into_iter().collect::<BitSet>().resized(10);
        let b: BitSet = [2usize].into_iter().collect::<BitSet>().resized(10);
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for b in [0, 63, 64, 127, 128, 199] {
            s.insert(b);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn debug_format() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(7);
        assert_eq!(format!("{s:?}"), "BitSet{3, 7}");
        assert_eq!(format!("{:?}", BitSet::new(4)), "BitSet{}");
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = BitSet::full(20);
        let b = BitSet::new(20);
        a.copy_from(&b);
        assert!(a.is_empty());
    }

    /// Test helper: the raw padding bits above `nbits` in the last word.
    fn padding_bits(s: &BitSet) -> u64 {
        let used = s.capacity() % WORD_BITS;
        if used == 0 {
            0
        } else {
            s.words().last().copied().unwrap_or(0) & !((1u64 << used) - 1)
        }
    }

    #[test]
    fn trailing_bits_stay_zero_after_complement_and_kernels() {
        // Odd capacity so the last word has 61 padding bits.
        let mut a = BitSet::full(67);
        let mut b = BitSet::new(67);
        b.insert(66);
        a.complement();
        assert_eq!(padding_bits(&a), 0);
        a.complement(); // full again
        assert_eq!(padding_bits(&a), 0);

        // Every row kernel on trimmed operands stays trimmed.
        let mut row = a.words().to_vec();
        assert!(!union_rows(&mut row, b.words()));
        assert_eq!(row.last().unwrap() & !((1u64 << 3) - 1), 0);
        assert!(intersect_rows(&mut row, b.words()));
        assert_eq!(row.last().unwrap() & !((1u64 << 3) - 1), 0);
        assert!(difference_rows(&mut row, b.words()));
        assert!(row_is_empty(&row));
        assert!(copy_row_changed(&mut row, a.words()));
        assert_eq!(count_row(&row), 67);
        assert_eq!(row.last().unwrap() & !((1u64 << 3) - 1), 0);

        // And the BitSet wrappers preserve count()/is_empty() honesty.
        a.intersect_with(&b);
        assert_eq!(a.count(), 1);
        a.difference_with(&b);
        assert!(a.is_empty());
        assert_eq!(padding_bits(&a), 0);
    }

    #[test]
    fn row_kernels_match_set_ops() {
        let a: BitSet = [1usize, 64, 66].into_iter().collect::<BitSet>().resized(70);
        let b: BitSet = [1usize, 2, 64].into_iter().collect::<BitSet>().resized(70);

        let mut via_set = a.clone();
        via_set.union_with(&b);
        let mut via_row = a.clone();
        assert!(via_row.union_with_row(b.words()));
        assert_eq!(via_set, via_row);

        let mut via_set = a.clone();
        via_set.intersect_with(&b);
        let mut via_row = a.clone();
        assert!(via_row.intersect_with_row(b.words()));
        assert_eq!(via_set, via_row);

        let mut via_set = a.clone();
        via_set.difference_with(&b);
        let mut via_row = a.clone();
        assert!(via_row.difference_with_row(b.words()));
        assert_eq!(via_set, via_row);

        let mut copied = BitSet::new(70);
        copied.copy_from_row(a.words());
        assert_eq!(copied, a);
        assert!(row_contains(a.words(), 66));
        assert!(!row_contains(a.words(), 2));
    }

    #[test]
    fn from_row_and_reset() {
        let a: BitSet = [0usize, 65].into_iter().collect::<BitSet>().resized(70);
        let round_trip = BitSet::from_row(a.words(), 70);
        assert_eq!(round_trip, a);

        let mut s = BitSet::full(128);
        assert!(!s.reset(64)); // shrink: reuses the allocation
        assert_eq!(s.capacity(), 64);
        assert!(s.is_empty());
        assert!(s.reset(1024)); // growth: must reallocate
        assert_eq!(s.num_words(), 16);
        assert!(s.is_empty());
    }

    #[test]
    fn word_skipping_iter_matches_naive_scan() {
        let mut s = BitSet::new(512);
        for b in [0, 1, 63, 64, 191, 448, 511] {
            s.insert(b);
        }
        let naive: Vec<usize> = (0..s.capacity()).filter(|&b| s.contains(b)).collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), naive);
        // All-zero middle words are skipped, not scanned bit-by-bit, but
        // the result is identical either way.
        assert_eq!(BitIter::new(s.words()).collect::<Vec<_>>(), naive);
        assert_eq!(BitIter::new(&[]).next(), None);
    }

    #[test]
    fn word_skipping_iter_matches_naive_on_random_universes() {
        // Property test over seeded random sets and matrix rows: the
        // word-skipping iterator agrees with the naive per-bit scan for
        // every capacity and density, including all-empty and all-full.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            // splitmix64 — in-tree PRNG, no dependencies.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for trial in 0..200 {
            let nbits = (next() % 300 + 1) as usize;
            let mut s = BitSet::new(nbits);
            match trial % 5 {
                0 => {}              // empty
                1 => s.insert_all(), // full
                _ => {
                    // Random density in (0, 1).
                    let denom = next() % 7 + 2;
                    for b in 0..nbits {
                        if next() % denom == 0 {
                            s.insert(b);
                        }
                    }
                }
            }
            let naive: Vec<usize> = (0..nbits).filter(|&b| s.contains(b)).collect();
            assert_eq!(
                s.iter().collect::<Vec<_>>(),
                naive,
                "trial {trial}, nbits {nbits}"
            );
            assert_eq!(s.iter().count(), s.count(), "trial {trial}");
        }
    }

    #[test]
    fn unrolled_row_kernels_match_scalar_reference_across_odd_widths() {
        // Property test: the 4-words-per-iteration kernels agree with a
        // naive one-word-at-a-time reference — result *and* changed flag —
        // across row lengths around the unroll boundary (0..=11 words,
        // covering empty, tail-only, exact-multiple and mixed shapes).
        fn reference(dst: &mut [u64], src: &[u64], op: impl Fn(u64, u64) -> u64) -> bool {
            let mut changed = false;
            for (a, &b) in dst.iter_mut().zip(src) {
                let new = op(*a, b);
                changed |= new != *a;
                *a = new;
            }
            changed
        }
        let ops: [(&str, fn(u64, u64) -> u64); 4] = [
            ("union", |a, b| a | b),
            ("intersect", |a, b| a & b),
            ("difference", |a, b| a & !b),
            ("copy", |_, b| b),
        ];
        let kernels: [fn(&mut [u64], &[u64]) -> bool; 4] = [
            union_rows,
            intersect_rows,
            difference_rows,
            copy_row_changed,
        ];
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            // splitmix64 — in-tree PRNG, no dependencies.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let widths: Vec<usize> = (0..=11usize)
            .chain([
                WIDE_ROW_WORDS - 1, // widest plain-unroll row
                WIDE_ROW_WORDS,     // first tiled row
                WIDE_ROW_WORDS + 1,
                2 * TILE_WORDS - 1, // tile boundary ± 1
                2 * TILE_WORDS,
                2 * TILE_WORDS + 1,
                4 * TILE_WORDS + 7, // multi-tile with scalar tail
            ])
            .collect();
        for words in widths {
            for trial in 0..50 {
                let src: Vec<u64> = (0..words).map(|_| next()).collect();
                let base: Vec<u64> = (0..words)
                    .map(|_| match trial % 4 {
                        0 => 0,
                        1 => !0,
                        _ => next(),
                    })
                    .collect();
                // Every trial also exercises the unchanged case.
                for same in [false, true] {
                    for ((name, op), kernel) in ops.iter().zip(kernels) {
                        let mut expect = base.clone();
                        let want = reference(&mut expect, &src, op);
                        let mut got = base.clone();
                        let flag = kernel(&mut got, &src);
                        assert_eq!(got, expect, "{name}, {words} words, trial {trial}");
                        assert_eq!(flag, want, "{name} changed flag, {words} words");
                        if same {
                            // Re-applying is idempotent and reports no change.
                            let flag2 = kernel(&mut got, &src);
                            let want2 = reference(&mut expect, &src, op);
                            assert_eq!(got, expect, "{name} idempotent, {words} words");
                            assert_eq!(flag2, want2, "{name} idempotent flag");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_wide_kernel_matches_scalar_reference_directly() {
        // The tiled kernel is also correct below its dispatch threshold
        // (pure-remainder shapes) and across tile boundaries; exercise it
        // directly rather than through `zip_rows_changed`'s width dispatch.
        fn reference(dst: &mut [u64], src: &[u64], op: impl Fn(u64, u64) -> u64) -> bool {
            let mut changed = false;
            for (a, &b) in dst.iter_mut().zip(src) {
                let new = op(*a, b);
                changed |= new != *a;
                *a = new;
            }
            changed
        }
        let ops: [(&str, fn(u64, u64) -> u64); 4] = [
            ("union", |a, b| a | b),
            ("intersect", |a, b| a & b),
            ("difference", |a, b| a & !b),
            ("copy", |_, b| b),
        ];
        let mut state = 0x0fed_cba9_8765_4321u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for words in [0usize, 1, 5, 31, 32, 33, 63, 64, 65, 96, 135] {
            for trial in 0..20 {
                let src: Vec<u64> = (0..words).map(|_| next()).collect();
                let base: Vec<u64> = (0..words)
                    .map(|_| match trial % 4 {
                        0 => 0,
                        1 => !0,
                        _ => next(),
                    })
                    .collect();
                for (name, op) in ops {
                    let mut expect = base.clone();
                    let want = reference(&mut expect, &src, op);
                    let mut got = base.clone();
                    let flag = zip_rows_changed_tiled(&mut got, &src, op);
                    assert_eq!(got, expect, "{name}, {words} words, trial {trial}");
                    assert_eq!(flag, want, "{name} changed flag, {words} words");
                    // Idempotent re-application reports the reference flag.
                    let flag2 = zip_rows_changed_tiled(&mut got, &src, op);
                    let want2 = reference(&mut expect, &src, op);
                    assert_eq!(got, expect, "{name} idempotent, {words} words");
                    assert_eq!(flag2, want2, "{name} idempotent flag, {words} words");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn unrolled_kernels_reject_mismatched_lengths() {
        let mut d = [0u64; 5];
        let _ = union_rows(&mut d, &[0u64; 4]);
    }

    #[test]
    fn copy_from_changed_detects_dirty_words() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        b.insert(129);
        assert!(a.copy_from_changed(&b));
        assert!(!a.copy_from_changed(&b)); // now identical
        b.insert(0); // dirt in a different word
        assert!(a.copy_from_changed(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 129]);
    }
}
