//! A dense, fixed-capacity bit set packed into 64-bit words.

use std::fmt;

use crate::error::ShapeMismatch;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of small integers, stored one bit each.
///
/// All binary operations require both operands to have the same capacity
/// (the analyses always operate within one universe of expressions), and
/// mutating operations report whether they changed the set so fixpoint
/// solvers can detect convergence.
///
/// ```
/// use lcm_dataflow::BitSet;
///
/// let mut a = BitSet::new(130);
/// a.insert(0);
/// a.insert(129);
/// let mut b = BitSet::new(130);
/// b.insert(129);
/// assert!(a.is_superset(&b));
/// a.intersect_with(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![129]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for bits `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(WORD_BITS)],
            nbits,
        }
    }

    /// Creates a full set (all of `0..nbits` present).
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::new(nbits);
        s.insert_all();
        s
    }

    /// The capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// The number of backing words (the unit of the complexity counters).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Tests membership.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= capacity`.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        self.words[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
    }

    /// Inserts a bit; returns `true` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= capacity`.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let was_absent = *word & mask == 0;
        *word |= mask;
        was_absent
    }

    /// Removes a bit; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= capacity`.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let was_present = *word & mask != 0;
        *word &= !mask;
        was_present
    }

    /// Inserts every bit in `0..capacity`.
    pub fn insert_all(&mut self) {
        for w in &mut self.words {
            *w = !0;
        }
        self.trim();
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Counts the set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        self.check(other);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ∩= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        self.check(other);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self −= other` (clears every bit present in `other`); returns
    /// `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        self.check(other);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Overwrites `self` with `other`'s contents.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        self.check(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Overwrites `self` with `other`'s contents, reporting word-granular
    /// whether anything actually changed — the dirty-detection primitive
    /// the fused solver uses to skip transfers whose input is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn copy_from_changed(&mut self, other: &BitSet) -> bool {
        self.check(other);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            changed |= *a != b;
            *a = b;
        }
        changed
    }

    /// Flips every bit in `0..capacity`.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Returns `true` if every bit of `other` is in `self`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| b & !a == 0)
    }

    /// Returns `true` if the sets share no bit.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & b == 0)
    }

    /// Iterates over the set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }

    /// Checks that `other` has the same capacity, as the binary operations
    /// require, returning a typed [`ShapeMismatch`] instead of panicking.
    /// This is the checked counterpart of the assertion the panicking
    /// operations use; both are active in release builds.
    #[inline]
    pub fn shape_check(&self, other: &BitSet) -> Result<(), ShapeMismatch> {
        if self.nbits == other.nbits {
            Ok(())
        } else {
            Err(ShapeMismatch {
                context: "matching bit-set capacity",
                expected: self.nbits,
                found: other.nbits,
            })
        }
    }

    /// Checked [`union_with`](Self::union_with): `self ∪= other`, or a
    /// [`ShapeMismatch`] if the capacities differ. `Ok(true)` means `self`
    /// changed.
    pub fn try_union_with(&mut self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.union_with(other))
    }

    /// Checked [`intersect_with`](Self::intersect_with).
    pub fn try_intersect_with(&mut self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.intersect_with(other))
    }

    /// Checked [`difference_with`](Self::difference_with).
    pub fn try_difference_with(&mut self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.difference_with(other))
    }

    /// Checked [`is_superset`](Self::is_superset).
    pub fn try_is_superset(&self, other: &BitSet) -> Result<bool, ShapeMismatch> {
        self.shape_check(other)?;
        Ok(self.is_superset(other))
    }

    #[inline]
    fn check(&self, other: &BitSet) {
        assert_eq!(
            self.nbits, other.nbits,
            "bit-set capacity mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }

    /// Clears padding bits beyond `nbits` in the last word.
    fn trim(&mut self) {
        let used = self.nbits % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet{{")?;
        for (i, bit) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{bit}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects bits into a set sized to the largest element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let bits: Vec<usize> = iter.into_iter().collect();
        let nbits = bits.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(nbits);
        for b in bits {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        BitSet::new(10).contains(10);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn checked_ops_return_shape_mismatch() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        let err = a.try_union_with(&b).unwrap_err();
        assert_eq!(err.expected, 10);
        assert_eq!(err.found, 11);
        assert!(err.to_string().contains("capacity"));
        assert!(a.try_intersect_with(&b).is_err());
        assert!(a.try_difference_with(&b).is_err());
        assert!(a.try_is_superset(&b).is_err());

        let mut c = BitSet::new(11);
        c.insert(3);
        assert_eq!(c.try_union_with(&b), Ok(false));
        assert_eq!(c.try_is_superset(&b), Ok(true));
        assert_eq!(c.try_difference_with(&b), Ok(false));
    }

    #[test]
    fn lattice_ops_report_changes() {
        let mut a = BitSet::new(70);
        a.insert(1);
        let mut b = BitSet::new(70);
        b.insert(1);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
        let only_one = [1usize].into_iter().collect::<BitSet>().resized(70);
        assert!(a.intersect_with(&only_one));
        assert!(!a.intersect_with(&only_one));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    impl BitSet {
        /// Test helper: returns a copy resized to `nbits`.
        fn resized(&self, nbits: usize) -> BitSet {
            let mut s = BitSet::new(nbits);
            for b in self.iter() {
                s.insert(b);
            }
            s
        }
    }

    #[test]
    fn full_and_complement_respect_capacity() {
        let mut s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        s.complement();
        assert!(s.is_empty());
        s.complement();
        assert_eq!(s.count(), 67);
        assert_eq!(s.iter().last(), Some(66));
    }

    #[test]
    fn difference_superset_disjoint() {
        let a: BitSet = [1usize, 2, 3].into_iter().collect::<BitSet>().resized(10);
        let b: BitSet = [2usize].into_iter().collect::<BitSet>().resized(10);
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for b in [0, 63, 64, 127, 128, 199] {
            s.insert(b);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn debug_format() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(7);
        assert_eq!(format!("{s:?}"), "BitSet{3, 7}");
        assert_eq!(format!("{:?}", BitSet::new(4)), "BitSet{}");
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = BitSet::full(20);
        let b = BitSet::new(20);
        a.copy_from(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn copy_from_changed_detects_dirty_words() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        b.insert(129);
        assert!(a.copy_from_changed(&b));
        assert!(!a.copy_from_changed(&b)); // now identical
        b.insert(0); // dirt in a different word
        assert!(a.copy_from_changed(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 129]);
    }
}
