//! Canned **variable-level** analyses (one bit per symbol).
//!
//! The expression-level analyses of lazy code motion live in `lcm-core`
//! (they need the expression universe); the two variable-level problems
//! below are shared by dead-code elimination, the register-pressure
//! metrics and the definite-assignment safety oracle, so they are provided
//! here once.

use lcm_ir::Function;

use crate::problem::{Confluence, Direction, Problem, Solution, Transfer};

/// Variable liveness: backward may-analysis over all symbols.
///
/// `gen` holds the block's upward-exposed uses (including the branch
/// condition), `kill` its definitions; `ins[b]` / `outs[b]` are the
/// variables live at block entry / exit.
///
/// ```
/// use lcm_dataflow::analyses::var_liveness;
/// use lcm_ir::parse_function;
///
/// let f = parse_function(
///     "fn l {
///      entry:
///        x = a + b
///        obs x
///        ret
///      }",
/// )?;
/// let live = var_liveness(&f);
/// let a = f.symbols.get("a").unwrap();
/// let x = f.symbols.get("x").unwrap();
/// assert!(live.ins.contains(f.entry().index(), a.index()));
/// assert!(!live.ins.contains(f.entry().index(), x.index()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn var_liveness(f: &Function) -> Solution {
    let nvars = f.symbols.len();
    let transfer: Vec<Transfer> = f
        .block_ids()
        .map(|b| {
            let mut t = Transfer::identity(nvars);
            let data = f.block(b);
            if let Some(c) = data.term.use_var() {
                t.gen.insert(c.index());
            }
            for instr in data.instrs.iter().rev() {
                if let Some(dst) = instr.def() {
                    t.gen.remove(dst.index());
                    t.kill.insert(dst.index());
                }
                for u in instr.uses() {
                    t.gen.insert(u.index());
                    t.kill.remove(u.index());
                }
            }
            t
        })
        .collect();
    Problem::new(f, nvars, Direction::Backward, Confluence::May, transfer)
        .with_name("var-liveness")
        .solve()
}

/// Definite assignment: forward must-analysis over all symbols.
///
/// `ins[b]` are the variables assigned on **every** path from the entry to
/// `b`'s entry. Used to prove that introduced temporaries are never read
/// before being written.
pub fn definitely_assigned(f: &Function) -> Solution {
    let nvars = f.symbols.len();
    let transfer: Vec<Transfer> = f
        .block_ids()
        .map(|b| {
            let mut t = Transfer::identity(nvars);
            for instr in &f.block(b).instrs {
                if let Some(dst) = instr.def() {
                    t.gen.insert(dst.index());
                }
            }
            t
        })
        .collect();
    Problem::new(f, nvars, Direction::Forward, Confluence::Must, transfer)
        .with_name("definitely-assigned")
        .solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn liveness_through_a_loop() {
        let f = parse_function(
            "fn l {
             entry:
               i = 3
               jmp head
             head:
               br i, body, done
             body:
               s = s + i
               i = i - 1
               jmp head
             done:
               obs s
               ret
             }",
        )
        .unwrap();
        let live = var_liveness(&f);
        let i = f.symbols.get("i").unwrap();
        let s = f.symbols.get("s").unwrap();
        let head = f.block_by_name("head").unwrap();
        assert!(live.ins.contains(head.index(), i.index()));
        assert!(live.ins.contains(head.index(), s.index()));
        assert!(live.ins.contains(f.entry().index(), s.index()));
        assert!(!live.ins.contains(f.entry().index(), i.index())); // defined first
        assert!(live.outs.row_is_empty(f.exit().index()));
    }

    #[test]
    fn definite_assignment_requires_all_paths() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               t = 1
               jmp j
             r:
               u = 2
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let assigned = definitely_assigned(&f);
        let t = f.symbols.get("t").unwrap();
        let u = f.symbols.get("u").unwrap();
        let c = f.symbols.get("c").unwrap();
        let j = f.block_by_name("j").unwrap();
        assert!(!assigned.ins.contains(j.index(), t.index()));
        assert!(!assigned.ins.contains(j.index(), u.index()));
        assert!(!assigned.ins.contains(j.index(), c.index())); // never assigned
        let l = f.block_by_name("l").unwrap();
        assert!(assigned.outs.contains(l.index(), t.index()));
    }
}
