//! Cost counters for dataflow solving.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated while solving a dataflow problem.
///
/// `word_ops` counts 64-bit word operations performed on bit vectors during
/// confluence and transfer — the classical cost measure for bit-vector
/// dataflow, used by the complexity experiment (C1) to compare Lazy Code
/// Motion's four unidirectional passes against the bidirectional
/// Morel–Renvoise system.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SolveStats {
    /// Full sweeps over the block order (round-robin solver) or `1` for
    /// worklist solving.
    pub iterations: usize,
    /// Individual block evaluations (confluence + transfer applications).
    pub node_visits: usize,
    /// 64-bit word operations on bit vectors.
    pub word_ops: u64,
}

impl SolveStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AddAssign for SolveStats {
    fn add_assign(&mut self, rhs: SolveStats) {
        self.iterations += rhs.iterations;
        self.node_visits += rhs.node_visits;
        self.word_ops += rhs.word_ops;
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations, {} node visits, {} word ops",
            self.iterations, self.node_visits, self.word_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = SolveStats {
            iterations: 1,
            node_visits: 2,
            word_ops: 3,
        };
        a += SolveStats {
            iterations: 10,
            node_visits: 20,
            word_ops: 30,
        };
        assert_eq!(a.iterations, 11);
        assert_eq!(a.node_visits, 22);
        assert_eq!(a.word_ops, 33);
        assert!(a.to_string().contains("11 iterations"));
    }
}
