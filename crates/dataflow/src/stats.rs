//! Cost counters for dataflow solving.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated while solving a dataflow problem.
///
/// `word_ops` counts 64-bit word operations performed on bit vectors during
/// confluence and transfer — the classical cost measure for bit-vector
/// dataflow, used by the complexity experiment (C1) to compare Lazy Code
/// Motion's four unidirectional passes against the bidirectional
/// Morel–Renvoise system. `node_revisits` and `allocations` measure the two
/// real-machine costs the asymptotic story hides: how often the iteration
/// order forces a block to be re-evaluated, and how many heap allocations
/// the solver state itself required (near zero when a
/// [`SolverScratch`](crate::SolverScratch) is reused across solves).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SolveStats {
    /// Full sweeps over the block order (round-robin solver) or `1` for
    /// worklist solving.
    pub iterations: usize,
    /// Individual block evaluations (confluence + transfer applications).
    pub node_visits: usize,
    /// Block evaluations beyond the first per block — the re-visits a
    /// better iteration order (SCC-condensed priority) avoids.
    pub node_revisits: usize,
    /// 64-bit word operations on bit vectors.
    pub word_ops: u64,
    /// Heap allocations (backing-store growths plus solution exports)
    /// performed for solver state during this solve.
    pub allocations: u64,
}

impl SolveStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AddAssign for SolveStats {
    fn add_assign(&mut self, rhs: SolveStats) {
        self.iterations += rhs.iterations;
        self.node_visits += rhs.node_visits;
        self.node_revisits += rhs.node_revisits;
        self.word_ops += rhs.word_ops;
        self.allocations += rhs.allocations;
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations, {} node visits ({} revisits), {} word ops, {} allocations",
            self.iterations, self.node_visits, self.node_revisits, self.word_ops, self.allocations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = SolveStats {
            iterations: 1,
            node_visits: 2,
            node_revisits: 1,
            word_ops: 3,
            allocations: 4,
        };
        a += SolveStats {
            iterations: 10,
            node_visits: 20,
            node_revisits: 5,
            word_ops: 30,
            allocations: 40,
        };
        assert_eq!(a.iterations, 11);
        assert_eq!(a.node_visits, 22);
        assert_eq!(a.node_revisits, 6);
        assert_eq!(a.word_ops, 33);
        assert_eq!(a.allocations, 44);
        assert!(a.to_string().contains("11 iterations"));
        assert!(a.to_string().contains("6 revisits"));
        assert!(a.to_string().contains("44 allocations"));
    }
}
