//! Regenerates every figure and theorem validation of the paper.
//!
//! ```sh
//! cargo run -p lcm-bench --bin experiments --release -- all
//! cargo run -p lcm-bench --bin experiments --release -- f1 f2 f3 f4 f5 t1 t2 t3 c1 c2 c3 e1 a1
//! cargo run -p lcm-bench --bin experiments --release -- bench [--quick] [--check [--gate <pct>]]
//! ```
//!
//! The experiment ids follow EXPERIMENTS.md / DESIGN.md §3. The `bench`
//! subcommand is the C4 perf baseline: it writes the current
//! [`BENCH_CURRENT`] file (schema `lcm-bench-v1`) with
//! solver/pipeline/batch/speculative/lift medians and allocation counts;
//! `--quick` shrinks it to CI-smoke size and `--check` validates the
//! whole committed `BENCH_PR*.json` series against the schema — and
//! prints the newest file against its predecessor — without external
//! tooling. `--gate <pct>` (only with `--check`, off by default) turns
//! the informational comparison into a hard failure when any headline
//! metric regressed past the threshold — opt-in because the committed
//! baselines are wall-clock numbers from potentially different machines.
//!
//! Everything printed is mirrored to `artifacts/experiments_output.txt`
//! (gitignored) so runs leave a reviewable record without checking build
//! output into the repository.

use std::fs::File;
use std::io::Write;
use std::sync::Mutex;

use lcm_bench::{
    compare_algorithms, fused_analysis_cost, lcm_analysis_cost, mr_analysis_cost, num_after,
    sized_corpus,
};
use lcm_cfggen::{corpus, random_dag, shapes, synthetic_profile, GenOptions};
use lcm_core::figures::running_example;
use lcm_core::{
    busy_plan, lazy_edge_plan, lazy_node_plan, metrics, optimize, passes, safety, ExprUniverse,
    GlobalAnalyses, LocalPredicates, PreAlgorithm,
};
use lcm_driver::{BatchEngine, BatchOptions, BatchUnit};
use lcm_interp::{dynamic_occupancy, observationally_equivalent, run, Inputs};

/// Mirror handle for `artifacts/experiments_output.txt`.
static TEE: Mutex<Option<File>> = Mutex::new(None);

/// Writes `s` to stdout and, when open, to the artifacts mirror.
fn tee(s: &str, newline: bool) {
    if newline {
        println!("{s}");
    } else {
        print!("{s}");
    }
    if let Some(f) = TEE.lock().unwrap().as_mut() {
        let r = if newline {
            writeln!(f, "{s}")
        } else {
            write!(f, "{s}")
        };
        r.expect("write to artifacts/experiments_output.txt");
    }
}

/// `print!` that also lands in the artifacts mirror.
macro_rules! o {
    ($($t:tt)*) => { crate::tee(&format!($($t)*), false) };
}

/// `println!` that also lands in the artifacts mirror.
macro_rules! oln {
    () => { crate::tee("", true) };
    ($($t:tt)*) => { crate::tee(&format!($($t)*), true) };
}

/// Opens the gitignored mirror file; on failure the run degrades to
/// stdout-only with a warning rather than aborting.
fn open_tee() {
    let dir = std::path::Path::new("artifacts");
    let open = std::fs::create_dir_all(dir)
        .and_then(|()| File::create(dir.join("experiments_output.txt")));
    match open {
        Ok(f) => *TEE.lock().unwrap() = Some(f),
        Err(e) => eprintln!(
            "experiments: cannot open artifacts/experiments_output.txt ({e}); stdout only"
        ),
    }
}

const IDS: &[&str] = &[
    "f1", "f2", "f3", "f4", "f5", "t1", "t2", "t3", "c1", "c2", "c3", "c5", "e1", "a1",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        let mut quick = false;
        let mut check = false;
        let mut gate: Option<f64> = None;
        let mut rest = args[1..].iter();
        while let Some(a) = rest.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--check" => check = true,
                "--gate" => {
                    let Some(pct) = rest.next().and_then(|v| v.parse::<f64>().ok()) else {
                        eprintln!("experiments bench: --gate needs a numeric percentage");
                        std::process::exit(2);
                    };
                    if !pct.is_finite() || pct < 0.0 {
                        eprintln!("experiments bench: --gate percentage must be >= 0");
                        std::process::exit(2);
                    }
                    gate = Some(pct);
                }
                other => {
                    eprintln!(
                        "experiments bench: unknown flag `{other}` \
                         (expected --quick, --check, --gate <pct>)"
                    );
                    std::process::exit(2);
                }
            }
        }
        if gate.is_some() && !check {
            eprintln!("experiments bench: --gate only makes sense with --check");
            std::process::exit(2);
        }
        if check {
            bench_check(gate);
        } else {
            bench(quick);
        }
        return;
    }
    for a in &args {
        if a != "all" && !IDS.contains(&a.as_str()) {
            eprintln!(
                "experiments: unknown id `{a}` (expected: all {})",
                IDS.join(" ")
            );
            std::process::exit(2);
        }
    }
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| run_all || args.iter().any(|a| a == id);
    open_tee();

    if want("f1") {
        f1();
    }
    if want("f2") {
        f2();
    }
    if want("f3") {
        f3();
    }
    if want("f4") {
        f4();
    }
    if want("f5") {
        f5();
    }
    if want("t1") {
        t1();
    }
    if want("t2") {
        t2();
    }
    if want("t3") {
        t3();
    }
    if want("c1") {
        c1();
    }
    if want("c2") {
        c2();
    }
    if want("c3") {
        c3();
    }
    if want("c5") {
        c5();
    }
    if want("e1") {
        e1();
    }
    if want("a1") {
        a1();
    }
}

fn header(id: &str, title: &str) {
    oln!("\n================================================================");
    oln!("{id}: {title}");
    oln!("================================================================");
}

/// F1 — the running example flow graph.
fn f1() {
    header(
        "F1",
        "running example (reconstruction of the paper's figure)",
    );
    oln!("{}", running_example());
}

/// F2 — busy code motion of the running example.
fn f2() {
    header("F2", "busy code motion of the running example");
    let f = running_example();
    let uni = ExprUniverse::of(&f);
    let local = LocalPredicates::compute(&f, &uni);
    let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
    let plan = busy_plan(&f, &uni, &local, &ga);
    o!("{}", lcm_core::report::plan_report(&f, &uni, &plan));
    oln!("\n{}", optimize(&f, PreAlgorithm::Busy).unwrap().function);
}

/// F3 — predicate tables: local properties, availability, anticipability,
/// earliestness.
fn f3() {
    header("F3", "safety analyses of the running example");
    let f = running_example();
    let uni = ExprUniverse::of(&f);
    let local = LocalPredicates::compute(&f, &uni);
    let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
    o!("{}", lcm_core::report::safety_table(&f, &uni, &local, &ga));
    oln!();
    o!("{}", lcm_core::report::earliest_report(&f, &uni, &ga));
}

/// F4 — the delay/latest cascade of the node formulation.
fn f4() {
    header("F4", "DELAY / LATEST / ISOLATED on the running example");
    let f = running_example();
    let node = lazy_node_plan(&f, true).unwrap();
    o!("{}", lcm_core::report::node_cascade_table(&node));
}

/// F5 — the final lazy transformation (edge and node results).
fn f5() {
    header("F5", "lazy code motion of the running example");
    let f = running_example();
    let uni = ExprUniverse::of(&f);
    let local = LocalPredicates::compute(&f, &uni);
    let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
    let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
    o!("{}", lcm_core::report::plan_report(&f, &uni, &lazy.plan));
    o!(
        "{}",
        lcm_core::report::delete_report(&f, &uni, &lazy.delete)
    );
    let out = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    oln!("\n{}", out.function);
    let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
    oln!(
        "temporary live points: busy = {}, lazy = {}",
        metrics::live_points(&busy.function, &busy.transform.temp_vars()),
        metrics::live_points(&out.function, &out.transform.temp_vars()),
    );
}

/// T1 — admissibility/correctness sweep.
fn t1() {
    header(
        "T1",
        "admissibility: observational equivalence + definite assignment + safe insertions",
    );
    let opts = GenOptions::default();
    let seeds = 0xC0DEu64;
    let programs = corpus(seeds, 500, &opts);
    let input_sets: Vec<Inputs> = (0..4)
        .map(|k| {
            Inputs::new()
                .set("a", 3 * k - 1)
                .set("b", 7 - k)
                .set("c", k % 2)
                .set("d", -k)
        })
        .collect();
    let mut checks = 0u64;
    for f in &programs {
        let uni = ExprUniverse::of(f);
        let local = LocalPredicates::compute(f, &uni);
        let ga = GlobalAnalyses::compute(f, &uni, &local).unwrap();
        let lazy = lazy_edge_plan(f, &uni, &local, &ga).unwrap();
        safety::check_plan_safety(f, &uni, &local, &ga, &lazy.plan).expect("safe insertions");
        for alg in PreAlgorithm::ALL {
            let o = optimize(f, alg).unwrap();
            safety::check_definite_assignment(&o.function, &o.transform.temp_vars())
                .expect("definite assignment");
            for inputs in &input_sets {
                assert!(observationally_equivalent(
                    f,
                    &o.function,
                    inputs,
                    1_000_000
                ));
                checks += 1;
            }
        }
    }
    oln!(
        "seed {seeds:#x}: {} programs x {} algorithms x {} inputs = {} equivalence checks, all passed",
        programs.len(),
        PreAlgorithm::ALL.len(),
        input_sets.len(),
        checks
    );
}

/// T2 — computational optimality.
fn t2() {
    header(
        "T2",
        "computational optimality: per-path and dynamic evaluation counts",
    );
    // Exhaustive per-path check on DAGs.
    let mut dags = 0;
    let mut paths = 0u64;
    for seed in 0..200u64 {
        let mut f = random_dag(seed, &GenOptions::sized(12));
        passes::lcse(&mut f);
        let exprs = f.expr_universe();
        let Some(orig) = metrics::path_eval_counts(&f, &exprs, 20_000) else {
            continue;
        };
        let busy = optimize(&f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let b = metrics::path_eval_counts(&busy.function, &exprs, 20_000).unwrap();
        let l = metrics::path_eval_counts(&lazy.function, &exprs, 20_000).unwrap();
        assert_eq!(b, l, "busy == lazy, path by path");
        assert!(l.iter().zip(&orig).all(|(n, o)| n <= o));
        dags += 1;
        paths += l.len() as u64;
    }
    oln!("DAG sweep: {dags} programs, {paths} paths: lazy == busy <= original on every path");

    // Aggregate dynamic counts incl. the Morel–Renvoise gap.
    let inputs = Inputs::new()
        .set("a", 5)
        .set("b", -3)
        .set("c", 1)
        .set("d", 9);
    let mut o_total = 0u64;
    let mut l_total = 0u64;
    let mut m_total = 0u64;
    let mut mr_missed = 0usize;
    let programs = corpus(0xDA7A, 300, &GenOptions::default());
    for f in &programs {
        let mut f = f.clone();
        passes::lcse(&mut f);
        let exprs = f.expr_universe();
        let o = run(&f, &inputs, 2_000_000).total_evals_of(&exprs);
        let l = run(
            &optimize(&f, PreAlgorithm::LazyEdge).unwrap().function,
            &inputs,
            2_000_000,
        )
        .total_evals_of(&exprs);
        let m = run(
            &optimize(&f, PreAlgorithm::MorelRenvoise).unwrap().function,
            &inputs,
            2_000_000,
        )
        .total_evals_of(&exprs);
        assert!(l <= o && m >= l && m <= o);
        o_total += o;
        l_total += l;
        m_total += m;
        if m > l {
            mr_missed += 1;
        }
    }
    oln!(
        "dynamic sweep ({} programs): original {o_total} evals, morel-renvoise {m_total}, lazy {l_total}",
        programs.len()
    );
    oln!(
        "lazy removes {:.1}% of candidate evaluations; MR removes {:.1}%; MR strictly misses redundancies on {} / {} programs",
        100.0 * (o_total - l_total) as f64 / o_total as f64,
        100.0 * (o_total - m_total) as f64 / o_total as f64,
        mr_missed,
        programs.len()
    );

    // Static net effect (deletions − insertions) across the corpus. Raw
    // deletion counts are not comparable — MR sometimes inserts-and-deletes
    // where LCM retains the occurrence as the definition, which is
    // count-neutral — so we compare the net number of computations removed.
    let mut lazy_net = 0i64;
    let mut mr_net = 0i64;
    let mut lazy_wins = 0usize;
    let mut mr_wins = 0usize;
    for f in &programs {
        let mut f = f.clone();
        passes::lcse(&mut f);
        let l = optimize(&f, PreAlgorithm::LazyEdge)
            .unwrap()
            .transform
            .stats;
        let m = optimize(&f, PreAlgorithm::MorelRenvoise)
            .unwrap()
            .transform
            .stats;
        let ln = l.deletions as i64 - l.insertions as i64;
        let mn = m.deletions as i64 - m.insertions as i64;
        lazy_net += ln;
        mr_net += mn;
        if ln > mn {
            lazy_wins += 1;
        }
        if mn > ln {
            mr_wins += 1;
        }
    }
    oln!(
        "static net sites removed (deletions − insertions): lazy {lazy_net} vs MR {mr_net}          (lazy ahead on {lazy_wins}, MR on {mr_wins} programs — static counts are not the          optimality measure: an edge insertion appears once per edge while MR's block-end          insertion covers several paths with one site; the per-path counts above are the          theorem's metric)"
    );

    // The critical-edge chain: the shape MR cannot serve at all.
    oln!("\none_armed_chain (all redundancy behind critical edges):");
    oln!(
        "{:>6} {:>12} {:>12} {:>12}",
        "n",
        "orig evals",
        "lazy evals",
        "mr evals"
    );
    for n in [4usize, 16, 64] {
        let f = shapes::one_armed_chain(n);
        let exprs = f.expr_universe();
        let inputs = Inputs::new().set("a", 1).set("b", 2).set("c", 1);
        let o = run(&f, &inputs, 1_000_000).total_evals_of(&exprs);
        let l = run(
            &optimize(&f, PreAlgorithm::LazyEdge).unwrap().function,
            &inputs,
            1_000_000,
        )
        .total_evals_of(&exprs);
        let m = run(
            &optimize(&f, PreAlgorithm::MorelRenvoise).unwrap().function,
            &inputs,
            1_000_000,
        )
        .total_evals_of(&exprs);
        oln!("{n:>6} {o:>12} {l:>12} {m:>12}");
    }
}

/// T3 — lifetime optimality.
fn t3() {
    header(
        "T3",
        "lifetime optimality: temporary live ranges and occupancy",
    );
    oln!("pressure_chain sweep (live points of the introduced temporaries):");
    oln!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "n",
        "bcm",
        "alcm",
        "lcm-edge",
        "lcm-node"
    );
    for n in [2usize, 4, 8, 16, 32, 64] {
        let f = shapes::pressure_chain(n);
        let mut row = Vec::new();
        for alg in [
            PreAlgorithm::Busy,
            PreAlgorithm::AlmostLazyNode,
            PreAlgorithm::LazyEdge,
            PreAlgorithm::LazyNode,
        ] {
            let o = optimize(&f, alg).unwrap();
            row.push(metrics::live_points(&o.function, &o.transform.temp_vars()));
        }
        oln!(
            "{:>6} {:>10} {:>10} {:>10} {:>10}",
            n,
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }

    let inputs = Inputs::new().set("a", 2).set("b", 3).set("c", 1);
    let programs = corpus(0x11FE, 300, &GenOptions::default());
    let (mut busy_pts, mut lazy_pts) = (0u64, 0u64);
    let (mut busy_occ, mut lazy_occ) = (0u64, 0u64);
    let mut strict = 0usize;
    for f in &programs {
        let busy = optimize(f, PreAlgorithm::Busy).unwrap();
        let lazy = optimize(f, PreAlgorithm::LazyEdge).unwrap();
        let bp = metrics::live_points(&busy.function, &busy.transform.temp_vars());
        let lp = metrics::live_points(&lazy.function, &lazy.transform.temp_vars());
        assert!(lp <= bp);
        if lp < bp {
            strict += 1;
        }
        busy_pts += bp;
        lazy_pts += lp;
        busy_occ += dynamic_occupancy(
            &busy.function,
            &inputs,
            1_000_000,
            &busy.transform.temp_vars(),
        );
        lazy_occ += dynamic_occupancy(
            &lazy.function,
            &inputs,
            1_000_000,
            &lazy.transform.temp_vars(),
        );
    }
    oln!(
        "\nrandom sweep ({} programs): static live points busy {busy_pts} vs lazy {lazy_pts} ({:.2}x)",
        programs.len(),
        busy_pts as f64 / lazy_pts.max(1) as f64,
    );
    oln!(
        "dynamic occupancy busy {busy_occ} vs lazy {lazy_occ} ({:.2}x); lazy strictly better on {strict} programs, never worse",
        busy_occ as f64 / lazy_occ.max(1) as f64,
    );
}

/// C1 — complexity: unidirectional LCM vs bidirectional Morel–Renvoise.
fn c1() {
    header(
        "C1",
        "analysis cost: LCM's unidirectional passes vs Morel-Renvoise's bidirectional system",
    );
    oln!(
        "{:>8} {:>9} | {:>10} {:>12} {:>12} | {:>10} {:>12} {:>12} | {:>8}",
        "blocks",
        "exprs",
        "lcm sweeps",
        "lcm visits",
        "lcm wordops",
        "mr sweeps",
        "mr visits",
        "mr wordops",
        "ratio"
    );
    for size in [20usize, 50, 100, 200, 400, 800] {
        let programs = sized_corpus(size, 10);
        let mut blocks = 0usize;
        let mut exprs = 0usize;
        let mut lcm_total = lcm_dataflow_zero();
        let mut mr_total = lcm_dataflow_zero();
        for f in &programs {
            blocks += f.num_blocks();
            exprs += ExprUniverse::of(f).len();
            lcm_total += lcm_analysis_cost(f);
            mr_total += mr_analysis_cost(f);
        }
        let n = programs.len();
        oln!(
            "{:>8} {:>9} | {:>10} {:>12} {:>12} | {:>10} {:>12} {:>12} | {:>8.2}",
            blocks / n,
            exprs / n,
            lcm_total.iterations / n,
            lcm_total.node_visits / n,
            lcm_total.word_ops / n as u64,
            mr_total.iterations / n,
            mr_total.node_visits / n,
            mr_total.word_ops / n as u64,
            mr_total.word_ops as f64 / lcm_total.word_ops.max(1) as f64,
        );
    }
    oln!(
        "\n(lcm sweeps aggregates availability + anticipability + LATER; mr sweeps\n\
         aggregates availability + partial availability + the bidirectional\n\
         PPIN/PPOUT iteration. `ratio` is MR word-ops / LCM word-ops.)"
    );

    oln!("\nper-workload static comparison:");
    for (name, f) in lcm_bench::workloads() {
        oln!("  {name} ({} blocks):", f.num_blocks());
        oln!(
            "    {:<16} {:>8} {:>8} {:>8} {:>12}",
            "algorithm",
            "inserts",
            "deletes",
            "temps",
            "live points"
        );
        for row in compare_algorithms(&f) {
            oln!(
                "    {:<16} {:>8} {:>8} {:>8} {:>12}",
                row.algorithm,
                row.insertions,
                row.deletions,
                row.temps,
                row.live_points
            );
        }
    }
}

fn lcm_dataflow_zero() -> lcm_dataflow::SolveStats {
    lcm_dataflow::SolveStats::new()
}

/// C2 — the fused pipeline (shared CfgView + change-driven worklist) vs
/// the seed per-analysis round-robin path, same three analyses.
fn c2() {
    header(
        "C2",
        "fused pipeline vs per-analysis round-robin (same fixpoints, fewer visits)",
    );
    oln!(
        "{:>8} {:>9} | {:>12} {:>12} | {:>12} {:>12} | {:>7} {:>7}",
        "blocks",
        "exprs",
        "rr visits",
        "rr wordops",
        "fu visits",
        "fu wordops",
        "v-ratio",
        "w-ratio"
    );
    for size in [20usize, 50, 100, 200, 400, 800] {
        let programs = sized_corpus(size, 10);
        let mut blocks = 0usize;
        let mut exprs = 0usize;
        let mut rr = lcm_dataflow_zero();
        let mut fused = lcm_dataflow_zero();
        for f in &programs {
            blocks += f.num_blocks();
            exprs += ExprUniverse::of(f).len();
            rr += lcm_analysis_cost(f);
            fused += fused_analysis_cost(f).total();
        }
        let n = programs.len();
        oln!(
            "{:>8} {:>9} | {:>12} {:>12} | {:>12} {:>12} | {:>7.2} {:>7.2}",
            blocks / n,
            exprs / n,
            rr.node_visits / n,
            rr.word_ops / n as u64,
            fused.node_visits / n,
            fused.word_ops / n as u64,
            rr.node_visits as f64 / fused.node_visits.max(1) as f64,
            rr.word_ops as f64 / fused.word_ops.max(1) as f64,
        );
    }
    oln!("\nscaling shapes (single functions):");
    oln!(
        "{:<20} {:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "workload",
        "blocks",
        "rr visits",
        "rr wordops",
        "fu visits",
        "fu wordops"
    );
    for (name, f) in lcm_bench::workloads() {
        let rr = lcm_analysis_cost(&f);
        let fu = fused_analysis_cost(&f).total();
        assert!(
            fu.node_visits <= rr.node_visits,
            "{name}: worklist should never visit more nodes"
        );
        oln!(
            "{:<20} {:>8} | {:>12} {:>12} | {:>12} {:>12}",
            name,
            f.num_blocks(),
            rr.node_visits,
            rr.word_ops,
            fu.node_visits,
            fu.word_ops
        );
    }
    oln!(
        "\n(rr = seed path: three independent round-robin solves, orderings and\n\
         adjacency recomputed per solve. fu = fused: one CfgView, change-driven\n\
         worklist. Fixpoints are identical — asserted per function in the\n\
         solver-equivalence test suite.)"
    );
}

/// C3 — the parallel batch driver: thread-count sweep, byte-identical
/// output across thread counts, and plan-cache deduplication.
fn c3() {
    header(
        "C3",
        "batch driver: thread sweep, determinism, and plan-cache dedup",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let make_units = |fns: Vec<lcm_ir::Function>, prefix: &str| -> Vec<BatchUnit> {
        fns.into_iter()
            .enumerate()
            .map(|(i, mut f)| {
                f.name = format!("{prefix}{i}");
                BatchUnit {
                    file: None,
                    profile: None,
                    function: f,
                }
            })
            .collect()
    };
    let run_once = |jobs: usize, use_cache: bool, units: &[BatchUnit]| {
        let mut engine = BatchEngine::new(BatchOptions {
            jobs,
            use_cache,
            ..BatchOptions::default()
        });
        let t0 = std::time::Instant::now();
        let result = engine.run(units.to_vec());
        (t0.elapsed(), result)
    };

    // Thread sweep: same corpus, cache off (pure compute), best of three.
    // stdout of `lcmopt batch` is byte-identical by construction; the
    // assert re-checks that here on the rendered report.
    let corpus = make_units(sized_corpus(300, 32), "f");
    oln!(
        "thread sweep over {} generated functions (~300 blocks each), cache off, best of 3",
        corpus.len()
    );
    oln!("machine: {cores} core(s) available");
    oln!(
        "{:>6} {:>12} {:>10} {:>12}",
        "jobs",
        "wall ms",
        "speedup",
        "output"
    );
    let mut baseline_text: Option<String> = None;
    let mut baseline_ms = 0.0f64;
    for jobs in [1usize, 2, 4, 8] {
        let mut best = std::time::Duration::MAX;
        let mut text = String::new();
        for _ in 0..3 {
            let (t, r) = run_once(jobs, false, &corpus);
            assert_eq!(r.totals.failed, 0);
            best = best.min(t);
            text = lcm_driver::report::render_text(&r);
        }
        let ms = best.as_secs_f64() * 1e3;
        let verdict = match &baseline_text {
            None => {
                baseline_text = Some(text);
                baseline_ms = ms;
                "baseline"
            }
            Some(b) => {
                assert_eq!(
                    b, &text,
                    "batch output must be byte-identical at jobs={jobs}"
                );
                "identical"
            }
        };
        oln!(
            "{jobs:>6} {ms:>12.1} {:>9.2}x {verdict:>12}",
            baseline_ms / ms
        );
    }
    oln!("(speedup is bounded by the cores available on this machine)");

    // Cache dedup: 8 distinct bodies replicated 4x under different names.
    // The content-addressed cache computes each body once and serves the
    // other 24 units as hits; a warm second batch computes nothing.
    let distinct = sized_corpus(300, 8);
    let mut dups = Vec::new();
    for rep in 0..4 {
        let named = make_units(distinct.clone(), &format!("g{rep}_"));
        dups.extend(named);
    }
    let (t_off, r_off) = run_once(cores, false, &dups);
    let mut engine = BatchEngine::new(BatchOptions {
        jobs: cores,
        ..BatchOptions::default()
    });
    let t0 = std::time::Instant::now();
    let r_on = engine.run(dups.clone());
    let t_on = t0.elapsed();
    let t1 = std::time::Instant::now();
    let r_warm = engine.run(dups);
    let t_warm = t1.elapsed();
    assert_eq!(
        lcm_driver::report::render_text(&r_off),
        lcm_driver::report::render_text(&r_on),
        "the cache must never change the output"
    );
    oln!(
        "\ncache dedup over {} units ({} distinct bodies x 4 names):",
        r_off.totals.functions,
        distinct.len()
    );
    oln!(
        "  cache off:  {} computed, {:>8.1} ms",
        r_off.totals.computed,
        t_off.as_secs_f64() * 1e3
    );
    oln!(
        "  cache on:   {} computed, {} hits, {:>8.1} ms (identical output)",
        r_on.totals.computed,
        r_on.totals.cache.hits,
        t_on.as_secs_f64() * 1e3
    );
    oln!(
        "  warm rerun: {} computed, {} hits, {:>8.1} ms (hits revalidated at the fast tier)",
        r_warm.totals.computed,
        r_warm.totals.cache.hits - r_on.totals.cache.hits,
        t_warm.as_secs_f64() * 1e3
    );
}

/// C5 — profile-guided speculative PRE (min-cut) against LCM and BCM on
/// weighted corpora. Profiles are *measured*: each function runs once on a
/// sampled "training" input and the interpreter's edge counts become its
/// profile, so the speculative planner optimizes a distribution that
/// actually occurred. A second, held-out input then shows the cross-input
/// cost of betting on that distribution.
fn c5() {
    use lcm_core::{optimize_speculative, validate::sample_inputs, EdgeWeights};
    use lcm_ir::Profile;
    use std::cmp::Ordering;

    header(
        "C5",
        "speculative PRE via min-cut: LCM vs BCM vs spec on weighted corpora",
    );
    const FUEL: u64 = 200_000;
    let fns = corpus(0xC5, 120, &GenOptions::default());
    let mut state = 0xC5u64;
    let (mut measured, mut skipped) = (0usize, 0usize);
    // Total dynamic candidate evaluations: [original, bcm, lcm, spec].
    let (mut profiled, mut heldout) = ([0u64; 4], [0u64; 4]);
    let (mut wins, mut ties, mut losses) = (0usize, 0usize, 0usize);
    let (mut candidates, mut speculated) = (0usize, 0usize);
    for f in &fns {
        let train = sample_inputs(f, &mut state);
        let test = sample_inputs(f, &mut state);
        let base_train = run(f, &train, FUEL);
        let base_test = run(f, &test, FUEL);
        if !base_train.completed() || !base_test.completed() {
            skipped += 1;
            continue;
        }
        // A completed run's edge counts conserve flow: an exact profile.
        let profile = Profile::from_weights(f, &base_train.edge_visits);
        let Ok(w) = EdgeWeights::from_profile(f, &profile) else {
            skipped += 1;
            continue;
        };
        let bcm = optimize(f, PreAlgorithm::Busy).expect("bcm");
        let lcm = optimize(f, PreAlgorithm::LazyEdge).expect("lcm");
        let spec = optimize_speculative(f, &w).expect("spec");
        let s = spec.spec.expect("speculative runs record stats");
        candidates += s.candidates;
        speculated += s.speculated;
        let on = |g: &lcm_ir::Function, inputs: &Inputs| run(g, inputs, FUEL).total_evals();
        profiled[0] += base_train.total_evals();
        profiled[1] += on(&bcm.function, &train);
        profiled[2] += on(&lcm.function, &train);
        profiled[3] += on(&spec.function, &train);
        let (ho_lcm, ho_spec) = (on(&lcm.function, &test), on(&spec.function, &test));
        heldout[0] += base_test.total_evals();
        heldout[1] += on(&bcm.function, &test);
        heldout[2] += ho_lcm;
        heldout[3] += ho_spec;
        match ho_spec.cmp(&ho_lcm) {
            Ordering::Less => wins += 1,
            Ordering::Equal => ties += 1,
            Ordering::Greater => losses += 1,
        }
        measured += 1;
    }
    oln!(
        "{measured} of {} functions measured ({skipped} skipped: incomplete run)",
        fns.len()
    );
    oln!("speculation: {candidates} candidates, {speculated} adopted");
    oln!();
    oln!("total dynamic candidate evaluations over the corpus:");
    oln!(
        "{:>22} {:>10} {:>10} {:>10} {:>10}",
        "input",
        "original",
        "bcm",
        "lcm",
        "spec"
    );
    oln!(
        "{:>22} {:>10} {:>10} {:>10} {:>10}",
        "profiled (training)",
        profiled[0],
        profiled[1],
        profiled[2],
        profiled[3]
    );
    oln!(
        "{:>22} {:>10} {:>10} {:>10} {:>10}",
        "held-out (fresh)",
        heldout[0],
        heldout[1],
        heldout[2],
        heldout[3]
    );
    oln!();
    oln!("held-out, per function vs lcm: {wins} better, {ties} equal, {losses} worse");
    oln!("speculation optimizes the *profiled* distribution; the held-out");
    oln!("row is the honest cross-input cost of betting on it.");
}

/// E1 — the lazy strength reduction extension.
fn e1() {
    use lcm_core::strength::{candidate_mults, strength_reduce};
    header(
        "E1",
        "lazy strength reduction (the authors' companion extension)",
    );
    // The canonical induction loop, swept over trip counts.
    oln!("induction loop `addr = i * 12` with n iterations:");
    oln!(
        "{:>8} {:>12} {:>12} {:>10}",
        "n",
        "mults before",
        "mults after",
        "updates"
    );
    for n in [4i64, 16, 64, 256] {
        let f = lcm_ir::parse_function(&format!(
            "fn addresses {{
             entry:
               i = 0
               n = {n}
               jmp body
             body:
               addr = i * 12
               obs addr
               i = i + 1
               c = i < n
               br c, body, done
             done:
               ret
             }}"
        ))
        .expect("valid fixture");
        let res = strength_reduce(&f);
        let before = run(&f, &Inputs::new(), 10_000_000);
        let after = run(&res.function, &Inputs::new(), 10_000_000);
        assert_eq!(before.trace, after.trace);
        oln!(
            "{:>8} {:>12} {:>12} {:>10}",
            n,
            candidate_mults(&before, &res.candidates),
            candidate_mults(&after, &res.candidates),
            res.stats.updates
        );
    }

    // Random corpus: aggregate dynamic multiplication counts.
    let inputs = Inputs::new().set("a", 7).set("b", -2).set("c", 1);
    let programs = corpus(0x57E6, 300, &GenOptions::default());
    let mut before_total = 0u64;
    let mut after_total = 0u64;
    let mut reduced_on = 0usize;
    for f in &programs {
        let res = strength_reduce(f);
        let b = candidate_mults(&run(f, &inputs, 1_000_000), &res.candidates);
        let a = candidate_mults(&run(&res.function, &inputs, 1_000_000), &res.candidates);
        assert!(a <= b);
        before_total += b;
        after_total += a;
        if a < b {
            reduced_on += 1;
        }
    }
    oln!(
        "\nrandom sweep ({} programs, seed 0x57e6): candidate multiplications {before_total} -> {after_total} ({:.1}% removed)",
        programs.len(),
        100.0 * (before_total - after_total) as f64 / before_total.max(1) as f64,
    );
    oln!("reduced on {reduced_on} programs, never increased on any");
}

/// A1 — ablations: isolation pruning and solver strategy.
fn a1() {
    header(
        "A1",
        "ablations: isolation pruning; worklist vs round-robin solver",
    );
    // Isolation: plan sizes and temporary live ranges with/without.
    let programs = corpus(0xAB1A, 200, &GenOptions::default());
    let mut with_ins = 0usize;
    let mut without_ins = 0usize;
    let mut with_points = 0u64;
    let mut without_points = 0u64;
    for f in &programs {
        let with = optimize(f, PreAlgorithm::LazyNode).unwrap();
        let without = optimize(f, PreAlgorithm::AlmostLazyNode).unwrap();
        with_ins += with.transform.stats.insertions;
        without_ins += without.transform.stats.insertions;
        with_points += metrics::live_points(&with.function, &with.transform.temp_vars());
        without_points += metrics::live_points(&without.function, &without.transform.temp_vars());
    }
    oln!(
        "isolation pruning over {} programs: insertions {} (with) vs {} (without, ALCM); temp live points {} vs {}",
        programs.len(),
        with_ins,
        without_ins,
        with_points,
        without_points
    );

    // Solver strategy: identical fixpoints, different visit counts.
    use lcm_dataflow::{Confluence, Direction, Problem, Transfer};
    let mut rr_visits = 0usize;
    let mut wl_visits = 0usize;
    for f in lcm_bench::sized_corpus(150, 10) {
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let transfer: Vec<Transfer> = local
            .antloc
            .iter()
            .zip(&local.kill)
            .map(|(g, k)| Transfer {
                gen: g.clone(),
                kill: k.clone(),
            })
            .collect();
        let p = Problem::new(
            &f,
            uni.len(),
            Direction::Backward,
            Confluence::Must,
            transfer,
        );
        let rr = p.solve();
        let wl = p.solve_worklist();
        assert_eq!(rr.ins, wl.ins);
        rr_visits += rr.stats.node_visits;
        wl_visits += wl.stats.node_visits;
    }
    oln!(
        "anticipability on 10 programs of ~150 blocks: round-robin {} node visits, worklist {} node visits (identical fixpoints)",
        rr_visits, wl_visits
    );
}

// ---------------------------------------------------------------------------
// `experiments bench` — the committed perf baseline series (BENCH_PR*.json)
// ---------------------------------------------------------------------------

/// Median of a sample (ns). Odd-length-agnostic: upper median.
fn median_ns(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Runs the dataflow/pipeline/batch benchmarks and writes the
/// machine-readable baseline to [`BENCH_CURRENT`] in the working directory.
///
/// `quick` shrinks the corpus and repetition counts to CI-smoke size; the
/// committed baseline is produced by a non-quick run. The numbers are
/// medians of repeated whole-corpus sweeps, divided down to per-operation
/// nanoseconds; allocation counts come straight from
/// [`lcm_dataflow::SolveStats::allocations`], which the solver increments
/// on every scratch growth event and result-export clone.
fn bench(quick: bool) {
    use lcm_core::{anticipability_problem, availability_problem, lcm, lcm_in};
    use lcm_dataflow::{CfgView, SolveStrategy, SolverScratch};
    use std::time::Instant;

    let (n_fns, reps, batch_reps) = if quick { (12, 3, 1) } else { (64, 11, 3) };
    let block_size = 30;
    let fns = sized_corpus(block_size, n_fns);
    oln!(
        "bench: {} functions of ~{} blocks, {} timing reps{}",
        fns.len(),
        block_size,
        reps,
        if quick { " (quick)" } else { "" }
    );

    // Prebuild everything outside the timed region: the solves are the op.
    let pre: Vec<_> = fns
        .iter()
        .map(|f| {
            let uni = ExprUniverse::of(f);
            let local = LocalPredicates::compute(f, &uni);
            (f, uni, local)
        })
        .collect();
    let probs: Vec<_> = pre
        .iter()
        .map(|(f, uni, local)| {
            (
                availability_problem(f, uni, local),
                anticipability_problem(f, uni, local),
                CfgView::new(f),
            )
        })
        .collect();

    // Per-strategy solve cost (one op = one analysis solve) and the
    // revisit counters that justify the SCC schedule.
    let mut scratch = SolverScratch::new();
    let mut solve_ns = Vec::new();
    let mut revisits = Vec::new();
    for strategy in SolveStrategy::ALL {
        let mut samples = Vec::new();
        let mut revs = 0u64;
        for rep in 0..reps {
            let t0 = Instant::now();
            let mut r = 0u64;
            for (avail, antic, view) in &probs {
                r += avail
                    .solve_with(strategy, view, &mut scratch)
                    .stats
                    .node_revisits as u64;
                r += antic
                    .solve_with(strategy, view, &mut scratch)
                    .stats
                    .node_revisits as u64;
            }
            samples.push(t0.elapsed().as_nanos() as f64 / (2 * probs.len()) as f64);
            if rep == 0 {
                revs = r;
            }
        }
        solve_ns.push((strategy.name(), median_ns(samples)));
        revisits.push((strategy.name(), revs));
    }

    // Fused pipeline: reused worker scratch vs a fresh scratch per call.
    let mut reused_samples = Vec::new();
    let mut fresh_samples = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        for f in &fns {
            lcm_in(f, &mut scratch).unwrap();
        }
        reused_samples.push(t0.elapsed().as_nanos() as f64 / fns.len() as f64);
        let t0 = Instant::now();
        for f in &fns {
            lcm(f).unwrap();
        }
        fresh_samples.push(t0.elapsed().as_nanos() as f64 / fns.len() as f64);
    }

    // Allocation counts: a cold scratch across the corpus pays growth on
    // the leading functions, then settles at the 6-per-function floor
    // (two export clones per solve, three solves); fresh scratches pay
    // full construction every time.
    let mut cold = SolverScratch::new();
    let per_fn: Vec<u64> = fns
        .iter()
        .map(|f| lcm_in(f, &mut cold).unwrap().stats.total().allocations)
        .collect();
    let reused_total: u64 = per_fn.iter().sum();
    let fresh_total: u64 = fns
        .iter()
        .map(|f| lcm(f).unwrap().stats.total().allocations)
        .sum();
    let warm_floor = 6u64;

    // Batch throughput, cache off: all cores vs one.
    let units: Vec<BatchUnit> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut f = f.clone();
            f.name = format!("f{i}");
            BatchUnit {
                file: None,
                profile: None,
                function: f,
            }
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let throughput = |jobs: usize| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..batch_reps {
            let mut engine = BatchEngine::new(BatchOptions {
                jobs,
                use_cache: false,
                ..BatchOptions::default()
            });
            let t0 = Instant::now();
            let r = engine.run(units.clone());
            assert_eq!(r.totals.failed, 0);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        units.len() as f64 / best
    };
    let batch_fps = throughput(cores);

    // The multi-thread sweep: same corpus, cache off, fixed job counts so
    // the committed series tracks the scaling *shape* across PRs even when
    // the machines differ. Its `j1` entry is the one canonical jobs=1
    // throughput — PR 9 measured (and committed) the same configuration
    // twice, once here and once as the batch row's
    // `jobs1_functions_per_second`; the duplicate is retired.
    let sweep: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&jobs| (jobs, throughput(jobs)))
        .collect();
    oln!("batch sweep (cache off, functions/second):");
    for (jobs, fps) in &sweep {
        oln!("  jobs {jobs}: {fps:>10.1}");
    }

    // Incremental vs fresh on a *watch-shaped* workload: a module of K
    // functions re-optimized across R revisions, each revision a seeded
    // content edit to exactly one function. That is the shape `lcmopt
    // watch` and the daemon actually see — one file changes, the rest of
    // the module rides along — so the warm engine answers K-1 units per
    // revision from the zero-dirty output memo and delta-solves the one
    // edited function (widening through universe growth instead of
    // falling back), while the cold baseline pays K fresh solves. The
    // corpus is larger-bodied than the batch one: solver cost is what the
    // delta path saves, and on small functions it vanishes under the
    // pipeline's fixed tail (validation, cleanup, printing) — which the
    // row now reports separately as solve vs tail nanoseconds.
    let (inc_block_size, inc_n_fns, inc_revs) = if quick { (120, 6, 6) } else { (240, 24, 24) };
    let inc_corpus = sized_corpus(inc_block_size, inc_n_fns);
    let inc_opts = BatchOptions {
        jobs: 1,
        use_cache: false,
        ..BatchOptions::default()
    };
    let mut cur: Vec<_> = inc_corpus
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut f = f.clone();
            f.name = format!("f{i}");
            f
        })
        .collect();
    let module_of = |fns: &[lcm_ir::Function]| {
        let mut m = lcm_ir::Module::default();
        for f in fns {
            m.push(f.clone()).expect("unique names");
        }
        m
    };
    let base_m = module_of(&cur);
    let mut rng = lcm_cfggen::seeded(0x1BC9);
    let revisions: Vec<lcm_ir::Module> = (0..inc_revs)
        .map(|r| {
            lcm_cfggen::mutate_function(&mut cur[r % inc_n_fns], &mut rng, 0.0);
            module_of(&cur)
        })
        .collect();
    let inc_units = inc_revs * inc_n_fns;
    let mut fresh_best = f64::MAX;
    let mut delta_best = f64::MAX;
    let (mut delta_hits, mut delta_rows) = (0u64, 0u64);
    let mut watch_classes = lcm_driver::EditClassCounters::default();
    let mut phases = lcm_core::PhaseNanos::default();
    for _ in 0..batch_reps.max(2) {
        let t0 = Instant::now();
        for m in &revisions {
            let mut engine = BatchEngine::new(inc_opts);
            let r = engine.run_module_incremental(m);
            assert!(r.iter().all(|u| u.outcome.is_ok()));
        }
        fresh_best = fresh_best.min(t0.elapsed().as_secs_f64());

        let mut engine = BatchEngine::new(inc_opts);
        engine.run_module_incremental(&base_m); // warm-up: retain fixpoints
        let t0 = Instant::now();
        for m in &revisions {
            let r = engine.run_module_incremental(m);
            assert!(r.iter().all(|u| u.outcome.is_ok()));
        }
        delta_best = delta_best.min(t0.elapsed().as_secs_f64());
        (delta_hits, delta_rows) = engine.incremental_session();
        watch_classes = engine.edit_classes();
        phases = engine.incremental_phases();
    }
    // The answers must agree, revision by revision, before the ratio
    // means anything.
    {
        let mut warm = BatchEngine::new(inc_opts);
        warm.run_module_incremental(&base_m);
        for (r, m) in revisions.iter().enumerate() {
            let mut cold = BatchEngine::new(inc_opts);
            assert_eq!(
                lcm_driver::report::render_incremental_text(&warm.run_module_incremental(m)),
                lcm_driver::report::render_incremental_text(&cold.run_module_incremental(m)),
                "delta re-optimization diverged from fresh at revision {r}"
            );
        }
    }
    let inc_fresh_fps = inc_units as f64 / fresh_best;
    let inc_delta_fps = inc_units as f64 / delta_best;
    let full_rows: u64 = inc_revs as u64
        * base_m
            .iter()
            .map(|f| 3 * f.num_blocks() as u64)
            .sum::<u64>();
    oln!(
        "incremental re-optimization (watch-shaped, {inc_n_fns} functions x {inc_revs} revisions): \
         fresh {inc_fresh_fps:.1} fn/s vs warm {inc_delta_fps:.1} fn/s ({:.2}x); \
         {delta_hits} delta hits, {delta_rows} of {full_rows} block rows re-solved; \
         warm split: solve {:.1} ms / tail {:.1} ms; edits: {watch_classes}",
        inc_delta_fps / inc_fresh_fps,
        phases.solve_ns as f64 / 1e6,
        phases.tail_ns as f64 / 1e6,
    );

    // The edit-class ledger: a seeded random-edit sweep over one-function
    // revisions with PR 9's edit mix (20% shape edits), classifying every
    // edit by the path that answered it. PR 9 forced a full solve on
    // every universe-shifting content edit *and* every shape edit (~25%
    // of random edits); now only the unmapped shape edits (parallel-edge
    // rewrites and multi-block changes) fall back, and the ledger is the
    // honest measurement of that residue.
    let sweep_fns = if quick { 8 } else { 16 };
    let sweep_steps = if quick { 48 } else { 192 };
    let mut sweep_engine = BatchEngine::new(inc_opts);
    let mut sweep_cur: Vec<_> = sized_corpus(30, sweep_fns)
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut f = f.clone();
            f.name = format!("s{i}");
            f
        })
        .collect();
    for f in &sweep_cur {
        sweep_engine.run_module_incremental(&module_of(std::slice::from_ref(f)));
    }
    let mut rng = lcm_cfggen::seeded(0x5EE0_C1A5);
    for step in 0..sweep_steps {
        let idx = step % sweep_fns;
        lcm_cfggen::mutate_function(&mut sweep_cur[idx], &mut rng, 0.2);
        let r =
            sweep_engine.run_module_incremental(&module_of(std::slice::from_ref(&sweep_cur[idx])));
        assert!(r.iter().all(|u| u.outcome.is_ok()));
    }
    let classes = sweep_engine.edit_classes();
    let edited = (classes.total() - classes.zero_dirty).max(1);
    let fallback_rate = classes.fallback as f64 / edited as f64;
    oln!(
        "edit-class ledger ({edited} random edits, 20% shape): {classes}; \
         fallback rate {:.1}% (PR 9 fell back on every universe shift and shape edit, ~25%)",
        fallback_rate * 100.0
    );

    // The row-kernel split: per-word cost of the fused union kernel below
    // and above the tiled-dispatch threshold. Narrow rows (the common
    // case) take the plain 4-word unroll; wide rows (>= 2048-bit
    // universes) take the tiled variant with per-lane change accumulators.
    let kernel_ns = |words: usize| -> f64 {
        let src: Vec<u64> = (0..words as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let mut dst = vec![0u64; words];
        let kernel_reps = 4_000_000 / words.max(1);
        let mut samples = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut changed = 0u64;
            for _ in 0..kernel_reps {
                dst[0] = std::hint::black_box(0);
                changed += u64::from(lcm_dataflow::union_rows(&mut dst, &src));
            }
            std::hint::black_box(changed);
            samples.push(t0.elapsed().as_nanos() as f64 / (kernel_reps * words) as f64);
        }
        median_ns(samples)
    };
    let narrow_words = lcm_dataflow::WIDE_ROW_WORDS / 2;
    let wide_words = lcm_dataflow::WIDE_ROW_WORDS * 8;
    let kernel_narrow_ns = kernel_ns(narrow_words);
    let kernel_wide_ns = kernel_ns(wide_words);
    oln!(
        "row kernel (ns/word): unrolled ({narrow_words} words) {kernel_narrow_ns:.3}, \
         tiled ({wide_words} words) {kernel_wide_ns:.3}"
    );

    // The `--placement spec` row: the same corpus with synthetic profiles
    // attached, driven through the min-cut speculative planner. The adopt
    // counters are deterministic (seeded corpus, seeded profiles); only
    // the throughput is machine-dependent.
    let weighted: Vec<BatchUnit> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut f = f.clone();
            f.name = format!("w{i}");
            let profile = synthetic_profile(&f, i as u64);
            BatchUnit {
                file: None,
                profile: Some(profile),
                function: f,
            }
        })
        .collect();
    let (mut spec_candidates, mut spec_speculated) = (0usize, 0usize);
    let mut spec_best = f64::MAX;
    for _ in 0..batch_reps {
        let mut engine = BatchEngine::new(BatchOptions {
            jobs: cores,
            placement: lcm_core::PreAlgorithm::Speculative,
            use_cache: false,
            ..BatchOptions::default()
        });
        let t0 = Instant::now();
        let r = engine.run(weighted.clone());
        assert_eq!(r.totals.failed, 0);
        spec_candidates = r.totals.spec.candidates;
        spec_speculated = r.totals.spec.speculated;
        spec_best = spec_best.min(t0.elapsed().as_secs_f64());
    }
    let spec_fps = weighted.len() as f64 / spec_best;

    // Frontend throughput: lift a flat three-address listing into module
    // IR and run the full pipeline on every lifted function. The listing
    // is the memory-loop shape (a loop-invariant load), so the row also
    // keeps the memory-aware TRANSP machinery on the measured path.
    let lift_fns = fns.len();
    let mut listing = String::new();
    for i in 0..lift_fns {
        listing.push_str(&format!(
            "fn l{i}\ni = 3\ns = load p\nt = s + i\nobs t\ni = i - 1\nif i goto 1\nret\n"
        ));
    }
    let mut lift_samples = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let lifted = lcm_ir::lift_module(&listing).expect("benchmark listing lifts");
        for f in lifted.module.functions() {
            lcm_core::optimize_pipeline(f, lcm_core::PreAlgorithm::LazyEdge)
                .expect("benchmark lift corpus optimizes");
        }
        lift_samples.push(t0.elapsed().as_secs_f64() / lift_fns as f64);
    }
    lift_samples.sort_by(f64::total_cmp);
    let lift_fps = 1.0 / lift_samples[lift_samples.len() / 2];

    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"lcm-bench-v1\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!(
        "  \"corpus\": {{ \"functions\": {}, \"blocks_per_function\": {block_size}, \"timing_reps\": {reps} }},\n",
        fns.len()
    ));
    j.push_str("  \"solve_ns_per_op\": { ");
    for (i, (name, ns)) in solve_ns.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{name}\": {ns:.1}"));
    }
    j.push_str(" },\n  \"node_revisits\": { ");
    for (i, (name, r)) in revisits.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{name}\": {r}"));
    }
    j.push_str(" },\n");
    j.push_str(&format!(
        "  \"pipeline_ns_per_function\": {{ \"reused_scratch\": {:.1}, \"fresh_scratch\": {:.1} }},\n",
        median_ns(reused_samples),
        median_ns(fresh_samples)
    ));
    j.push_str(&format!(
        "  \"allocations\": {{ \"warm_floor_per_function\": {warm_floor}, \"cold_first_function\": {}, \"reused_scratch_total\": {reused_total}, \"fresh_scratch_total\": {fresh_total} }},\n",
        per_fn[0]
    ));
    j.push_str(&format!(
        "  \"batch\": {{ \"jobs\": {cores}, \"functions_per_second\": {batch_fps:.1} }},\n"
    ));
    j.push_str("  \"batch_sweep\": { ");
    for (i, (jobs, fps)) in sweep.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"j{jobs}\": {fps:.1}"));
    }
    j.push_str(" },\n");
    j.push_str(&format!(
        "  \"incremental\": {{ \"functions\": {inc_n_fns}, \"revisions\": {inc_revs}, \"fresh_fps\": {inc_fresh_fps:.1}, \"delta_fps\": {inc_delta_fps:.1}, \"delta_speedup\": {:.2}, \"delta_hits\": {delta_hits}, \"delta_rows\": {delta_rows}, \"full_rows\": {full_rows}, \"solve_ns\": {}, \"tail_ns\": {}, \"zero_dirty\": {} }},\n",
        inc_delta_fps / inc_fresh_fps,
        phases.solve_ns,
        phases.tail_ns,
        watch_classes.zero_dirty
    ));
    j.push_str(&format!(
        "  \"edit_classes\": {{ \"edited\": {edited}, \"content\": {}, \"universe_grow\": {}, \"universe_shrink\": {}, \"shape_mapped\": {}, \"fallback\": {}, \"fallback_rate\": {fallback_rate:.3} }},\n",
        classes.content,
        classes.universe_grow,
        classes.universe_shrink,
        classes.shape_mapped,
        classes.fallback
    ));
    j.push_str(&format!(
        "  \"row_kernel\": {{ \"unrolled_words\": {narrow_words}, \"unrolled_ns_per_word\": {kernel_narrow_ns:.3}, \"tiled_words\": {wide_words}, \"tiled_ns_per_word\": {kernel_wide_ns:.3} }},\n"
    ));
    j.push_str(&format!(
        "  \"speculative\": {{ \"jobs\": {cores}, \"functions_per_second\": {spec_fps:.1}, \"candidates\": {spec_candidates}, \"speculated\": {spec_speculated} }},\n"
    ));
    j.push_str(&format!(
        "  \"lift\": {{ \"functions\": {lift_fns}, \"lift_optimize_functions_per_second\": {lift_fps:.1} }}\n}}\n"
    ));
    std::fs::write(BENCH_CURRENT, &j).unwrap_or_else(|e| panic!("write {BENCH_CURRENT}: {e}"));
    o!("{j}");
    oln!("bench: wrote {BENCH_CURRENT}");
}

/// The baseline file this tree's `bench` writes. Each perf-relevant PR
/// contributes its own `BENCH_PR<n>.json`; the committed files form a
/// series that `--check` validates as a whole. (PR 7 shipped no baseline
/// — the daemon PR was perf-neutral on these metrics — so the series
/// jumps PR 6 -> PR 8 and `--check` names the hole.)
const BENCH_CURRENT: &str = "BENCH_PR10.json";

/// The committed baseline series: every `BENCH_PR<n>.json` in the working
/// directory, sorted by PR number.
fn bench_series() -> Vec<(u64, String)> {
    let mut found = Vec::new();
    if let Ok(dir) = std::fs::read_dir(".") {
        for entry in dir.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(pr) = name
                .strip_prefix("BENCH_PR")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                found.push((pr, name));
            }
        }
    }
    found.sort();
    found
}

/// Schema-validates one baseline file: required keys present, metrics
/// positive, and the warm-scratch allocation floor at its designed value.
/// Sections that newer PRs introduced (`speculative` from PR 6, `lift`
/// from PR 8, `batch_sweep` and `incremental` from PR 9) are required
/// only of the newest file of the series — `newest` — since older
/// committed baselines legitimately predate them.
fn bench_check_file(name: &str, newest: bool) {
    let text = match std::fs::read_to_string(name) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench --check: cannot read {name}: {e}");
            std::process::exit(1);
        }
    };
    let fail = |msg: String| {
        eprintln!("bench --check: {name}: {msg}");
        std::process::exit(1);
    };
    if !text.contains("\"schema\": \"lcm-bench-v1\"") {
        fail("missing or wrong schema tag (want \"lcm-bench-v1\")".into());
    }
    for section in [
        "corpus",
        "solve_ns_per_op",
        "node_revisits",
        "pipeline_ns_per_function",
        "allocations",
        "batch",
    ] {
        if !text.contains(&format!("\"{section}\":")) {
            fail(format!("missing section \"{section}\""));
        }
    }
    for key in [
        "rr",
        "wl",
        "scc",
        "reused_scratch",
        "fresh_scratch",
        "functions_per_second",
        "reused_scratch_total",
        "fresh_scratch_total",
    ] {
        match num_after(&text, key) {
            Some(v) if v > 0.0 => {}
            Some(v) => fail(format!("\"{key}\" must be positive, found {v}")),
            None => fail(format!("missing numeric \"{key}\"")),
        }
    }
    // The canonical jobs=1 throughput: `batch_sweep.j1` since PR 10.
    // PR 9 carried it under both spellings; baselines before the sweep
    // carry only the batch row's `jobs1_functions_per_second`.
    match num_after(&text, "j1").or_else(|| num_after(&text, "jobs1_functions_per_second")) {
        Some(v) if v > 0.0 => {}
        other => fail(format!(
            "jobs=1 throughput (\"j1\" or \"jobs1_functions_per_second\") \
             must be positive, found {other:?}"
        )),
    }
    match num_after(&text, "warm_floor_per_function") {
        Some(v) if (v - 6.0).abs() < f64::EPSILON => {}
        other => fail(format!(
            "\"warm_floor_per_function\" must be 6 (2 export clones x 3 solves), found {other:?}"
        )),
    }
    if newest {
        if !text.contains("\"speculative\":") {
            fail("newest baseline must carry the \"speculative\" section".into());
        }
        match num_after(&text, "candidates") {
            Some(v) if v > 0.0 => {}
            other => fail(format!(
                "\"candidates\" must be positive in the speculative row, found {other:?}"
            )),
        }
        if num_after(&text, "speculated").is_none() {
            fail("missing numeric \"speculated\" in the speculative row".into());
        }
        if !text.contains("\"lift\":") {
            fail("newest baseline must carry the \"lift\" section".into());
        }
        match num_after(&text, "lift_optimize_functions_per_second") {
            Some(v) if v > 0.0 => {}
            other => fail(format!(
                "\"lift_optimize_functions_per_second\" must be positive, found {other:?}"
            )),
        }
        if !text.contains("\"batch_sweep\":") {
            fail("newest baseline must carry the \"batch_sweep\" section".into());
        }
        for key in ["j1", "j2", "j4", "j8"] {
            match num_after(&text, key) {
                Some(v) if v > 0.0 => {}
                other => fail(format!(
                    "\"{key}\" must be a positive throughput in the batch sweep, found {other:?}"
                )),
            }
        }
        if !text.contains("\"incremental\":") {
            fail("newest baseline must carry the \"incremental\" section".into());
        }
        for key in ["fresh_fps", "delta_fps"] {
            match num_after(&text, key) {
                Some(v) if v > 0.0 => {}
                other => fail(format!(
                    "\"{key}\" must be positive in the incremental row, found {other:?}"
                )),
            }
        }
        if num_after(&text, "delta_hits").is_none() {
            fail("missing numeric \"delta_hits\" in the incremental row".into());
        }
        match num_after(&text, "delta_speedup") {
            Some(v) if v > 0.0 => {}
            other => fail(format!(
                "\"delta_speedup\" must be positive in the incremental row, found {other:?}"
            )),
        }
        for key in ["solve_ns", "tail_ns"] {
            match num_after(&text, key) {
                Some(v) if v > 0.0 => {}
                other => fail(format!(
                    "\"{key}\" must be positive in the incremental row, found {other:?}"
                )),
            }
        }
        if !text.contains("\"edit_classes\":") {
            fail("newest baseline must carry the \"edit_classes\" ledger".into());
        }
        for key in ["edited", "fallback_rate"] {
            if num_after(&text, key).is_none() {
                fail(format!(
                    "missing numeric \"{key}\" in the edit-class ledger"
                ));
            }
        }
        if !text.contains("\"row_kernel\":") {
            fail("newest baseline must carry the \"row_kernel\" section".into());
        }
        for key in ["unrolled_ns_per_word", "tiled_ns_per_word"] {
            match num_after(&text, key) {
                Some(v) if v > 0.0 => {}
                other => fail(format!(
                    "\"{key}\" must be positive in the row-kernel section, found {other:?}"
                )),
            }
        }
    }
}

/// Validates the whole committed `BENCH_PR*.json` series against the
/// `lcm-bench-v1` schema, then prints the newest file's headline metrics
/// against its immediate predecessor. The comparison is informational —
/// these are wall-clock numbers from whatever machine produced each file
/// — but it keeps a landing baseline reviewed against the previous PR's
/// instead of silently replacing it. With `gate = Some(pct)` the
/// comparison becomes enforcing: any headline metric more than `pct`
/// percent worse than the predecessor fails the run. Exits non-zero on
/// the first schema violation, on a gate breach, or when no baseline
/// exists at all.
fn bench_check(gate: Option<f64>) {
    let series = bench_series();
    if series.is_empty() {
        eprintln!("bench --check: no BENCH_PR*.json found (run `experiments bench` first)");
        std::process::exit(1);
    }
    for (i, (_, name)) in series.iter().enumerate() {
        bench_check_file(name, i == series.len() - 1);
    }
    let (_, newest) = &series[series.len() - 1];
    let prs: Vec<u64> = series.iter().map(|(pr, _)| *pr).collect();
    if let Some(p) = lcm_bench::series_predecessor(&prs) {
        let (_, prev) = series
            .iter()
            .find(|(pr, _)| *pr == p.predecessor)
            .expect("predecessor comes from the series");
        let new_text = std::fs::read_to_string(newest).expect("validated above");
        let prev_text = std::fs::read_to_string(prev).expect("validated above");
        // The series may have holes (a re-anchor PR commits no baseline);
        // name the actual predecessor and the hole rather than implying
        // the files are consecutive.
        if p.gaps.is_empty() {
            println!(
                "bench --check: {newest} vs {prev} (immediate predecessor; \
                 informational; machines may differ):"
            );
        } else {
            let absent: Vec<String> = p.gaps.iter().map(|g| format!("PR{g}")).collect();
            println!(
                "bench --check: {newest} vs {prev} — predecessor = PR{} \
                 (series gap: {} absent, no baseline committed; \
                 informational; machines may differ):",
                p.predecessor,
                absent.join(", ")
            );
        }
        for key in ["scc", "reused_scratch", "functions_per_second"] {
            if let (Some(n), Some(p)) = (num_after(&new_text, key), num_after(&prev_text, key)) {
                println!("  {key}: {p} -> {n} ({:+.1}%)", (n / p - 1.0) * 100.0);
            }
        }
        // jobs=1 is compared through its canonical spelling on each side.
        let jobs1 =
            |t: &str| num_after(t, "j1").or_else(|| num_after(t, "jobs1_functions_per_second"));
        if let (Some(n), Some(p)) = (jobs1(&new_text), jobs1(&prev_text)) {
            println!("  jobs=1 (j1): {p} -> {n} ({:+.1}%)", (n / p - 1.0) * 100.0);
        }
        if let (Some(n), Some(p)) = (
            num_after(&new_text, "delta_speedup"),
            num_after(&prev_text, "delta_speedup"),
        ) {
            println!(
                "  delta_speedup: {p} -> {n} ({:+.1}%)",
                (n / p - 1.0) * 100.0
            );
        }
        if new_text.contains("\"edit_classes\":") {
            let g = |k: &str| num_after(&new_text, k).unwrap_or(0.0);
            println!(
                "  edit classes ({} edited): {} content, {} universe-grow, \
                 {} universe-shrink, {} shape-mapped, {} fallback \
                 ({:.1}% fallback rate)",
                g("edited"),
                g("content"),
                g("universe_grow"),
                g("universe_shrink"),
                g("shape_mapped"),
                g("fallback"),
                g("fallback_rate") * 100.0
            );
        }
        if let Some(pct) = gate {
            let violations = lcm_bench::gate_regressions(&new_text, &prev_text, pct);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!(
                        "bench --check --gate {pct}: {} regressed {:.1}% \
                         ({} -> {}, threshold {pct}%)",
                        v.key, v.worse_pct, v.previous, v.current
                    );
                }
                std::process::exit(1);
            }
            println!("bench --check: gate {pct}% passed ({newest} vs {prev})");
        }
    } else if let Some(pct) = gate {
        println!("bench --check: gate {pct}% vacuously passed (single-entry series)");
    }
    println!(
        "bench --check: {} file(s) conform to lcm-bench-v1; newest is {newest}",
        series.len()
    );
}
