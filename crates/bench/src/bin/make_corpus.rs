//! Prints the deterministic workload suite as one module on stdout.
//!
//! ```sh
//! cargo run -p lcm-bench --bin make_corpus > corpus.lcm
//! lcmopt batch corpus.lcm
//! ```
//!
//! Used by ci.sh's batch smoke stage to exercise `lcmopt batch` on the
//! same programs the benchmarks measure.

use lcm_ir::Module;

fn main() {
    let mut m = Module::default();
    for (name, mut f) in lcm_bench::workloads() {
        f.name = name.to_string();
        m.push(f).expect("workload names are unique");
    }
    println!("{m}");
}
