//! Shared workloads and measurement helpers for the benchmark suite and
//! the `experiments` binary (see EXPERIMENTS.md for the experiment index).

use lcm_cfggen::{corpus, shapes, GenOptions};
use lcm_core::{
    lazy_edge_plan, lcm, morel_renvoise_plan, optimize, passes, ExprUniverse, GlobalAnalyses,
    LocalPredicates, PipelineStats, PreAlgorithm,
};
use lcm_dataflow::SolveStats;
use lcm_ir::Function;

/// The deterministic workload suite used by benches and experiments.
pub fn workloads() -> Vec<(&'static str, Function)> {
    vec![
        ("diamond_chain_64", shapes::diamond_chain(64)),
        ("pressure_chain_64", shapes::pressure_chain(64)),
        ("loop_invariant_4x8", shapes::loop_invariant(4, 8)),
        ("ladder_64", shapes::ladder(64)),
        ("soup_256", shapes::wide_expression_soup(256)),
        ("gen_medium", {
            let mut f = lcm_cfggen::structured(0x5EED, &GenOptions::sized(300));
            passes::lcse(&mut f);
            f
        }),
        ("gen_large", {
            let mut f = lcm_cfggen::structured(0x5EED + 1, &GenOptions::sized(1500));
            passes::lcse(&mut f);
            f
        }),
    ]
}

/// Generated programs of a given size (for scaling sweeps), LCSE-normalised.
pub fn sized_corpus(size: usize, count: usize) -> Vec<Function> {
    corpus(0xBE9C_0000 + size as u64, count, &GenOptions::sized(size))
        .into_iter()
        .map(|mut f| {
            passes::lcse(&mut f);
            f
        })
        .collect()
}

/// Cost of the full LCM analysis stack (availability, anticipability,
/// LATER) in solver statistics, on the seed round-robin path.
pub fn lcm_analysis_cost(f: &Function) -> SolveStats {
    let uni = ExprUniverse::of(f);
    let local = LocalPredicates::compute(f, &uni);
    let ga = GlobalAnalyses::compute(f, &uni, &local).expect("benchmark analyses converge");
    let lazy = lazy_edge_plan(f, &uni, &local, &ga).expect("benchmark analyses converge");
    let mut stats = ga.stats;
    stats += lazy.stats;
    stats
}

/// Cost of the same analysis stack on the fused pipeline (shared
/// [`CfgView`](lcm_dataflow::CfgView), change-driven worklist solver),
/// broken out per analysis.
pub fn fused_analysis_cost(f: &Function) -> PipelineStats {
    lcm(f).expect("benchmark analyses converge").stats
}

/// Cost of the Morel–Renvoise system (availability, partial availability,
/// bidirectional PPIN/PPOUT) in solver statistics.
pub fn mr_analysis_cost(f: &Function) -> SolveStats {
    let uni = ExprUniverse::of(f);
    let local = LocalPredicates::compute(f, &uni);
    morel_renvoise_plan(f, &uni, &local)
        .expect("benchmark analyses converge")
        .stats
}

/// The resolved comparison target for the newest file of a `BENCH_PR*`
/// baseline series — see [`series_predecessor`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeriesPredecessor {
    /// The newest PR number in the series.
    pub newest: u64,
    /// The PR number the newest baseline should be compared against: the
    /// highest *committed* number below it, which is not necessarily
    /// `newest - 1`.
    pub predecessor: u64,
    /// PR numbers strictly between `predecessor` and `newest` with no
    /// committed baseline (re-anchor or perf-neutral PRs), in order.
    pub gaps: Vec<u64>,
}

/// Resolves which committed baseline the newest `BENCH_PR<n>.json` should
/// be compared against. The series is allowed to have holes — a re-anchor
/// PR or a perf-neutral PR commits no baseline — and the comparison must
/// name the *actual* predecessor and call out the hole explicitly, rather
/// than implying the files are consecutive.
///
/// Returns `None` when the series has fewer than two distinct entries
/// (nothing to compare against).
pub fn series_predecessor(prs: &[u64]) -> Option<SeriesPredecessor> {
    let mut sorted: Vec<u64> = prs.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let [.., predecessor, newest] = sorted[..] else {
        return None;
    };
    Some(SeriesPredecessor {
        newest,
        predecessor,
        gaps: (predecessor + 1..newest).collect(),
    })
}

/// Extracts the number following `"key":` in `text`, if any. The baseline
/// files are flat enough (schema `lcm-bench-v1`, unique key names) that a
/// textual scan is exact — no JSON parser in the dependency tree.
pub fn num_after(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One metric of the newest baseline that regressed past the gate
/// threshold relative to its committed predecessor.
#[derive(Clone, PartialEq, Debug)]
pub struct GateViolation {
    /// The metric key in the `lcm-bench-v1` schema.
    pub key: &'static str,
    /// The predecessor baseline's value.
    pub previous: f64,
    /// The newest baseline's value.
    pub current: f64,
    /// Signed percentage change, oriented so that positive is *worse*
    /// (more nanoseconds, fewer functions per second).
    pub worse_pct: f64,
}

/// The headline metrics the regression gate watches, with their
/// direction: `true` means lower is better (latency-like), `false` means
/// higher is better (throughput-like).
const GATED_KEYS: [(&str, bool); 4] = [
    ("scc", true),
    ("reused_scratch", true),
    ("functions_per_second", false),
    // The canonical jobs=1 throughput lives in `batch_sweep.j1`; baselines
    // up to PR 9 also carried a duplicate `jobs1_functions_per_second`
    // measurement in the batch row, retired in PR 10.
    ("j1", false),
];

/// Compares the newest baseline's headline metrics against its
/// predecessor and returns every metric that got worse by more than
/// `pct` percent. Metrics missing from either file are skipped — older
/// baselines legitimately predate some sections — so the gate never
/// fails on schema evolution, only on measured regressions.
///
/// This is opt-in tooling (`experiments bench --check --gate <pct>`):
/// the numbers are wall-clock medians from whatever machines produced
/// the two files, so the caller decides when a same-machine comparison
/// makes the gate meaningful.
pub fn gate_regressions(newest: &str, predecessor: &str, pct: f64) -> Vec<GateViolation> {
    let mut violations = Vec::new();
    for (key, lower_is_better) in GATED_KEYS {
        let (Some(prev), Some(cur)) = (num_after(predecessor, key), num_after(newest, key)) else {
            continue;
        };
        if prev <= 0.0 {
            continue;
        }
        let worse_pct = if lower_is_better {
            (cur / prev - 1.0) * 100.0
        } else {
            (prev / cur - 1.0) * 100.0
        };
        if worse_pct > pct {
            violations.push(GateViolation {
                key,
                previous: prev,
                current: cur,
                worse_pct,
            });
        }
    }
    violations
}

/// One row of the algorithm-comparison table.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Static insertions.
    pub insertions: usize,
    /// Static deletions (occurrences replaced by temp reads).
    pub deletions: usize,
    /// Temporaries introduced.
    pub temps: usize,
    /// Live points of the temporaries (static register-pressure measure).
    pub live_points: u64,
}

/// Runs every algorithm on `f` and tabulates the static outcomes.
pub fn compare_algorithms(f: &Function) -> Vec<ComparisonRow> {
    PreAlgorithm::ALL
        .into_iter()
        .map(|alg| {
            let o = optimize(f, alg).expect("benchmark optimization succeeds");
            ComparisonRow {
                algorithm: alg.name(),
                insertions: o.transform.stats.insertions,
                deletions: o.transform.stats.deletions,
                temps: o.transform.stats.temps,
                live_points: lcm_core::metrics::live_points(&o.function, &o.transform.temp_vars()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_wellformed() {
        for (name, f) in workloads() {
            lcm_ir::verify(&f).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn cost_helpers_return_nonzero_work() {
        let f = shapes::diamond_chain(8);
        let lcm = lcm_analysis_cost(&f);
        let mr = mr_analysis_cost(&f);
        assert!(lcm.word_ops > 0);
        assert!(mr.word_ops > 0);
    }

    #[test]
    fn series_predecessor_reports_gaps() {
        // The PR4 -> PR6 situation: PR5 was a re-anchor and committed no
        // baseline, so the newest file's predecessor is PR4 and the gap
        // must be named.
        let p = series_predecessor(&[4, 6]).unwrap();
        assert_eq!(p.newest, 6);
        assert_eq!(p.predecessor, 4);
        assert_eq!(p.gaps, vec![5]);

        // Consecutive series: no gap.
        let p = series_predecessor(&[4, 5, 6]).unwrap();
        assert_eq!((p.predecessor, p.newest), (5, 6));
        assert!(p.gaps.is_empty());

        // Wide hole, unsorted input, duplicates.
        let p = series_predecessor(&[9, 2, 2, 9, 4]).unwrap();
        assert_eq!((p.predecessor, p.newest), (4, 9));
        assert_eq!(p.gaps, vec![5, 6, 7, 8]);

        // Fewer than two distinct entries: nothing to compare.
        assert_eq!(series_predecessor(&[]), None);
        assert_eq!(series_predecessor(&[6]), None);
        assert_eq!(series_predecessor(&[6, 6]), None);
    }

    #[test]
    fn gate_flags_only_metrics_past_the_threshold() {
        let prev = r#"{ "solve_ns_per_op": { "scc": 100.0 },
            "pipeline_ns_per_function": { "reused_scratch": 200.0 },
            "batch": { "functions_per_second": 1000.0 },
            "batch_sweep": { "j1": 400.0 } }"#;
        // scc regressed 20% (latency up), batch throughput regressed 25%
        // (fps down); reused_scratch improved; jobs=1 within noise.
        let newest = r#"{ "solve_ns_per_op": { "scc": 120.0 },
            "pipeline_ns_per_function": { "reused_scratch": 150.0 },
            "batch": { "functions_per_second": 800.0 },
            "batch_sweep": { "j1": 396.0 } }"#;

        let v = gate_regressions(newest, prev, 10.0);
        let keys: Vec<&str> = v.iter().map(|g| g.key).collect();
        assert_eq!(keys, vec!["scc", "functions_per_second"]);
        assert!((v[0].worse_pct - 20.0).abs() < 1e-9, "{:?}", v[0]);
        assert!((v[1].worse_pct - 25.0).abs() < 1e-9, "{:?}", v[1]);

        // A looser gate passes everything.
        assert!(gate_regressions(newest, prev, 30.0).is_empty());
        // A tighter gate also catches the 1% jobs1 drift.
        let tight = gate_regressions(newest, prev, 0.5);
        assert_eq!(tight.len(), 3);

        // Keys missing on either side are skipped, not violations.
        let sparse = r#"{ "solve_ns_per_op": { "scc": 500.0 } }"#;
        assert_eq!(gate_regressions(sparse, prev, 10.0).len(), 1);
        assert!(gate_regressions(prev, sparse, 10.0).is_empty());
    }

    #[test]
    fn num_after_scans_flat_json() {
        let text = r#"{ "a": 1.5, "b": -2, "nested": { "c": 33 } }"#;
        assert_eq!(num_after(text, "a"), Some(1.5));
        assert_eq!(num_after(text, "b"), Some(-2.0));
        assert_eq!(num_after(text, "c"), Some(33.0));
        assert_eq!(num_after(text, "missing"), None);
    }

    #[test]
    fn comparison_covers_all_algorithms() {
        let rows = compare_algorithms(&shapes::diamond_chain(4));
        assert_eq!(rows.len(), PreAlgorithm::ALL.len());
        assert!(rows.iter().any(|r| r.algorithm == "lcm-edge"));
    }
}
