//! Turning placement decisions into rewritten IR.
//!
//! Every PRE algorithm in this crate reduces to a [`PlacementPlan`]: a set
//! of program points (edges, block tops, block bottoms) at which `t := e`
//! initialisations are inserted. This module derives everything else
//! soundly and uniformly from the plan:
//!
//! 1. **Temp availability** (`TAVIN`/`TAVOUT`) — a forward must-analysis
//!    over the *planned* program determines at which block entries the
//!    temporary provably holds the expression's current value.
//! 2. **Deletion** — an upward-exposed occurrence is replaced by the
//!    temporary exactly when the temp is available at its block's entry:
//!    `DELETE[b] = ANTLOC[b] ∩ TAVIN[b]`. This is sound for *any* plan, so
//!    busy code motion, lazy code motion and Morel–Renvoise all share it.
//! 3. **Retention** (`TLIVE`) — a backward may-analysis decides which
//!    surviving occurrences must also *define* the temporary
//!    (`t := e; v := t`) because a replaced occurrence downstream consumes
//!    it; occurrences whose value is not needed stay untouched. This
//!    realises the paper's isolation reasoning: an insertion or definition
//!    that would only feed itself is never materialised.
//!
//! The result is verified by [`crate::safety`]'s definite-assignment check
//! in the test suite and by interpreter equivalence in the integration
//! tests.

use lcm_dataflow::BitSet;
use lcm_ir::{graph, BlockId, EdgeId, EdgeList, Expr, Function, Instr, Rvalue, Var};

use crate::predicates::LocalPredicates;
use crate::universe::ExprUniverse;

/// Where a PRE algorithm wants `t := e` initialisations.
///
/// All bit sets are indexed by universe position. Unused placement kinds
/// stay empty (the edge-based algorithms use `edge_inserts` +
/// `entry_insert`; the node-based formulation uses `block_top_inserts`;
/// Morel–Renvoise uses `block_bottom_inserts`).
#[derive(Clone, Debug)]
pub struct PlacementPlan {
    /// Name of the producing algorithm (for reports).
    pub algorithm: &'static str,
    /// The edge numbering `edge_inserts` is indexed by. Must be a snapshot
    /// of the same function the plan is applied to.
    pub edges: EdgeList,
    /// Insertions on control-flow edges.
    pub edge_inserts: Vec<BitSet>,
    /// Insertions on the virtual entry edge (the very top of the entry
    /// block, before any instruction).
    pub entry_insert: BitSet,
    /// Insertions at the top of a block.
    pub block_top_inserts: Vec<BitSet>,
    /// Insertions at the bottom of a block (before its terminator).
    pub block_bottom_inserts: Vec<BitSet>,
}

impl PlacementPlan {
    /// An empty plan (no insertions) for `f` over `uni`.
    pub fn empty(algorithm: &'static str, f: &Function, uni: &ExprUniverse) -> Self {
        let edges = EdgeList::new(f);
        let nb = f.num_blocks();
        PlacementPlan {
            algorithm,
            edge_inserts: vec![uni.empty_set(); edges.len()],
            edges,
            entry_insert: uni.empty_set(),
            block_top_inserts: vec![uni.empty_set(); nb],
            block_bottom_inserts: vec![uni.empty_set(); nb],
        }
    }

    /// Total number of planned `t := e` initialisations.
    pub fn num_insertions(&self) -> usize {
        self.edge_inserts
            .iter()
            .chain(self.block_top_inserts.iter())
            .chain(self.block_bottom_inserts.iter())
            .chain(std::iter::once(&self.entry_insert))
            .map(BitSet::count)
            .sum()
    }

    /// The set of expressions this plan inserts anywhere.
    pub fn inserted_exprs(&self, uni: &ExprUniverse) -> BitSet {
        let mut all = uni.empty_set();
        for s in self
            .edge_inserts
            .iter()
            .chain(self.block_top_inserts.iter())
            .chain(self.block_bottom_inserts.iter())
        {
            all.union_with(s);
        }
        all.union_with(&self.entry_insert);
        all
    }
}

/// Temp availability at block entries/exits under a plan.
#[derive(Clone, Debug)]
pub struct TempAvailability {
    /// `TAVIN[b]`: at `b`'s entry (before top insertions) the temp holds
    /// `e`'s current value on every path.
    pub ins: Vec<BitSet>,
    /// `TAVOUT[b]`: ditto at `b`'s exit (after bottom insertions).
    pub outs: Vec<BitSet>,
}

/// Computes temp availability for `plan` (forward, must, round-robin over
/// reverse postorder).
pub fn temp_availability(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    plan: &PlacementPlan,
) -> TempAvailability {
    let n = f.num_blocks();
    let mut ins = vec![uni.full_set(); n];
    let mut outs = vec![uni.full_set(); n];
    ins[f.entry().index()] = plan.entry_insert.clone();
    let order = graph::reverse_postorder(f);
    loop {
        let mut changed = false;
        for &b in &order {
            let bi = b.index();
            if b != f.entry() {
                let mut acc = uni.full_set();
                for &eid in plan.edges.incoming(b) {
                    let e = plan.edges.edge(eid);
                    let mut v = outs[e.from.index()].clone();
                    v.union_with(&plan.edge_inserts[eid.index()]);
                    acc.intersect_with(&v);
                }
                ins[bi] = acc;
            }
            // out = bottom ∪ comp ∪ ((in ∪ top) − kill)
            let mut out = ins[bi].clone();
            out.union_with(&plan.block_top_inserts[bi]);
            out.difference_with(&local.kill[bi]);
            out.union_with(&local.comp[bi]);
            out.union_with(&plan.block_bottom_inserts[bi]);
            if out != outs[bi] {
                outs[bi] = out;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    TempAvailability { ins, outs }
}

/// The replaced occurrences implied by a plan: `DELETE[b] = ANTLOC[b] ∩
/// (TAVIN[b] ∪ block-top inserts)`.
pub fn deletions(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    plan: &PlacementPlan,
    tav: &TempAvailability,
) -> Vec<BitSet> {
    let _ = uni;
    f.block_ids()
        .map(|b| {
            let bi = b.index();
            let mut d = tav.ins[bi].clone();
            d.union_with(&plan.block_top_inserts[bi]);
            d.intersect_with(&local.antloc[bi]);
            d
        })
        .collect()
}

/// Backward liveness of the temporaries: `TLIVEIN[b]` holds where the
/// temp's value at `b`'s entry is consumed by a replaced occurrence before
/// any redefinition.
pub fn temp_liveness(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    plan: &PlacementPlan,
    delete: &[BitSet],
) -> TempLiveness {
    let n = f.num_blocks();
    let mut ins = vec![uni.empty_set(); n];
    let mut outs = vec![uni.empty_set(); n];
    // DEF[b]: a definition point of t inside b covering the entry-to-exit
    // span: top/bottom inserts or a downward-exposed occurrence.
    let defs: Vec<BitSet> = f
        .block_ids()
        .map(|b| {
            let bi = b.index();
            let mut d = local.comp[bi].clone();
            d.union_with(&plan.block_top_inserts[bi]);
            d.union_with(&plan.block_bottom_inserts[bi]);
            d
        })
        .collect();
    let order = graph::postorder(f);
    loop {
        let mut changed = false;
        for &b in &order {
            let bi = b.index();
            let mut out = uni.empty_set();
            for &eid in plan.edges.outgoing(b) {
                let e = plan.edges.edge(eid);
                let mut v = ins[e.to.index()].clone();
                v.difference_with(&plan.edge_inserts[eid.index()]);
                out.union_with(&v);
            }
            outs[bi] = out;
            let mut inn = outs[bi].clone();
            inn.difference_with(&defs[bi]);
            inn.union_with(&delete[bi]);
            if inn != ins[bi] {
                ins[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    TempLiveness { ins, outs }
}

/// Result of [`temp_liveness`].
#[derive(Clone, Debug)]
pub struct TempLiveness {
    /// Live at block entry.
    pub ins: Vec<BitSet>,
    /// Live at block exit.
    pub outs: Vec<BitSet>,
}

/// Counters describing what [`apply_plan`] did.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TransformStats {
    /// `t := e` instructions inserted (edges + tops + bottoms + entry).
    pub insertions: usize,
    /// Occurrences rewritten to a plain `v := t` (computations removed).
    pub deletions: usize,
    /// Occurrences that now also define the temporary (`t := e; v := t`).
    pub retained_defs: usize,
    /// Critical edges split to host insertions.
    pub edges_split: usize,
    /// Temporaries created (one per expression with activity).
    pub temps: usize,
}

/// Merging, for aggregating many functions' rewrites (the batch driver).
impl std::ops::AddAssign for TransformStats {
    fn add_assign(&mut self, rhs: TransformStats) {
        self.insertions += rhs.insertions;
        self.deletions += rhs.deletions;
        self.retained_defs += rhs.retained_defs;
        self.edges_split += rhs.edges_split;
        self.temps += rhs.temps;
    }
}

/// The rewritten function plus bookkeeping.
#[derive(Clone, Debug)]
pub struct TransformResult {
    /// The transformed function. Its symbol table extends the original's,
    /// so `Var`/`Expr` values remain comparable across the pair.
    pub function: Function,
    /// `(universe index, temp)` for every materialised temporary.
    pub temps: Vec<(usize, Var)>,
    /// What happened.
    pub stats: TransformStats,
    /// Which algorithm produced the plan.
    pub algorithm: &'static str,
}

impl TransformResult {
    /// The temporary variables introduced, in universe order.
    pub fn temp_vars(&self) -> Vec<Var> {
        self.temps.iter().map(|&(_, v)| v).collect()
    }
}

/// Applies `plan` to (a clone of) `f`, returning the transformed function.
///
/// The plan's [`EdgeList`] must be a snapshot of `f` as passed here; the
/// local predicates must likewise describe `f`.
///
/// # Panics
///
/// Panics if the plan's edge list disagrees with `f`'s current edges.
pub fn apply_plan(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    plan: &PlacementPlan,
) -> TransformResult {
    assert_eq!(
        plan.edges,
        EdgeList::new(f),
        "plan edge snapshot is stale for this function"
    );
    let tav = temp_availability(f, uni, local, plan);
    let delete = deletions(f, uni, local, plan, &tav);
    let tlive = temp_liveness(f, uni, local, plan, &delete);

    let mut out = f.clone();
    let mut stats = TransformStats::default();

    // Materialise a temp for every expression the plan touches.
    let mut active = plan.inserted_exprs(uni);
    for d in &delete {
        active.union_with(d);
    }
    let mut temp_of: Vec<Option<Var>> = vec![None; uni.len()];
    let mut temps = Vec::new();
    for idx in active.iter() {
        let t = out.fresh_temp();
        temp_of[idx] = Some(t);
        temps.push((idx, t));
        stats.temps += 1;
    }

    // 1. Rewrite block bodies (pure instruction-list surgery).
    for b in f.block_ids() {
        rewrite_block(
            &mut out,
            uni,
            b,
            &delete[b.index()],
            &tlive.outs[b.index()],
            &temp_of,
            &mut stats,
        );
    }

    // 2. Entry / block-top / block-bottom insertions.
    let make_init = |idx: usize, temp_of: &[Option<Var>]| Instr::Assign {
        dst: temp_of[idx].expect("active expression has a temp"),
        rv: Rvalue::Expr(uni.expr(idx)),
    };
    for b in f.block_ids() {
        let bi = b.index();
        let mut tops: Vec<Instr> = Vec::new();
        if b == f.entry() {
            tops.extend(plan.entry_insert.iter().map(|idx| make_init(idx, &temp_of)));
        }
        tops.extend(
            plan.block_top_inserts[bi]
                .iter()
                .map(|idx| make_init(idx, &temp_of)),
        );
        if !tops.is_empty() {
            stats.insertions += tops.len();
            let body = &mut out.block_mut(b).instrs;
            tops.extend(body.iter().copied());
            *body = tops;
        }
        let bottoms: Vec<Instr> = plan.block_bottom_inserts[bi]
            .iter()
            .map(|idx| make_init(idx, &temp_of))
            .collect();
        stats.insertions += bottoms.len();
        out.block_mut(b).instrs.extend(bottoms);
    }

    // 3. Edge insertions (may split critical edges; done last so the block
    //    ids used above stay valid).
    let preds = out.preds();
    let blocks_before = out.num_blocks();
    for (eid, edge) in plan.edges.iter() {
        let instrs: Vec<Instr> = plan.edge_inserts[eid.index()]
            .iter()
            .map(|idx| make_init(idx, &temp_of))
            .collect();
        if instrs.is_empty() {
            continue;
        }
        stats.insertions += instrs.len();
        out.insert_on_edge(&preds, edge.from, edge.succ_index, &instrs);
    }
    stats.edges_split = out.num_blocks() - blocks_before;

    TransformResult {
        function: out,
        temps,
        stats,
        algorithm: plan.algorithm,
    }
}

/// Rewrites one block's occurrences of active expressions.
#[allow(clippy::too_many_arguments)]
fn rewrite_block(
    out: &mut Function,
    uni: &ExprUniverse,
    b: BlockId,
    delete: &BitSet,
    tliveout: &BitSet,
    temp_of: &[Option<Var>],
    stats: &mut TransformStats,
) {
    let instrs = out.block(b).instrs.clone();

    // Backward prescan: does the value produced by the occurrence at
    // position `i` have a consumer below it (later occurrence in the same
    // kill-free segment, or live-out of the block)?
    let mut needs_def = vec![false; instrs.len()];
    let mut later_use: BitSet = tliveout.clone();
    for (i, instr) in instrs.iter().enumerate().rev() {
        // The destination kill applies *after* the right-hand side, so in
        // the backward direction it is processed first.
        if let Some(dst) = instr.def() {
            for &idx in uni.killed_by(dst) {
                later_use.remove(idx);
            }
        }
        if instr.kills_memory() {
            later_use.difference_with(uni.mem_mask());
        }
        if let Instr::Assign {
            rv: Rvalue::Expr(e),
            ..
        } = instr
        {
            if let Some(idx) = uni.index_of(*e) {
                if temp_of[idx].is_some() {
                    needs_def[i] = later_use.contains(idx);
                    later_use.insert(idx);
                }
            }
        }
    }

    // Forward rewrite.
    let mut have_temp = delete.clone();
    let mut rewritten = Vec::with_capacity(instrs.len() + 4);
    for (i, instr) in instrs.iter().enumerate() {
        match *instr {
            Instr::Assign {
                dst,
                rv: Rvalue::Expr(e),
            } => {
                match uni
                    .index_of(e)
                    .and_then(|idx| temp_of[idx].map(|t| (idx, t)))
                {
                    Some((idx, t)) => {
                        if have_temp.contains(idx) {
                            // Fully redundant here: use the temp.
                            rewritten.push(Instr::Assign {
                                dst,
                                rv: Rvalue::Operand(t.into()),
                            });
                            stats.deletions += 1;
                        } else if needs_def[i] {
                            // Keep the computation but let it define the temp.
                            rewritten.push(Instr::Assign {
                                dst: t,
                                rv: Rvalue::Expr(e),
                            });
                            rewritten.push(Instr::Assign {
                                dst,
                                rv: Rvalue::Operand(t.into()),
                            });
                            have_temp.insert(idx);
                            stats.retained_defs += 1;
                        } else {
                            // Isolated: nothing downstream wants the value.
                            rewritten.push(*instr);
                        }
                    }
                    None => rewritten.push(*instr),
                }
            }
            _ => rewritten.push(*instr),
        }
        if let Some(dst) = instr.def() {
            for &idx in uni.killed_by(dst) {
                have_temp.remove(idx);
            }
        }
        // A memory write invalidates every load temp: the next occurrence
        // of any `Mem` expression must recompute, not read a stale temp.
        if instr.kills_memory() {
            have_temp.difference_with(uni.mem_mask());
        }
    }
    out.block_mut(b).instrs = rewritten;
}

/// Convenience wrapper bundling the edge id with the insertion set, for
/// reporting.
pub fn insertions_by_edge(plan: &PlacementPlan) -> Vec<(EdgeId, &BitSet)> {
    plan.edges
        .iter()
        .map(|(id, _)| (id, &plan.edge_inserts[id.index()]))
        .filter(|(_, s)| !s.is_empty())
        .collect()
}

/// The full expression `e` as rewritten IR would initialise it (for tests
/// and debugging).
pub fn init_instr_for(uni: &ExprUniverse, idx: usize, t: Var) -> (Var, Expr) {
    (t, uni.expr(idx))
}
