//! Safety oracles: checks that transformations only do what classic PRE is
//! allowed to do.
//!
//! Two independent checks back the paper's admissibility theorem (T1):
//!
//! * [`check_definite_assignment`] — in the *transformed* program, every
//!   read of an introduced temporary is dominated by assignments on **all**
//!   paths (no path can observe an uninitialised temp).
//! * [`check_plan_safety`] — in the *original* program, every planned
//!   insertion point is safe (down-safe or up-safe): the inserted
//!   computation cannot be one that some path never executed before.

use std::error::Error;
use std::fmt;

use lcm_dataflow::{analyses, row_contains, BitSet};
use lcm_ir::{BlockId, Function, Var};

use crate::analyses::GlobalAnalyses;
use crate::predicates::LocalPredicates;
use crate::transform::PlacementPlan;
use crate::universe::ExprUniverse;

/// A violation found by one of the safety checks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SafetyError {
    /// A tracked variable may be read before any assignment.
    MaybeUnassigned {
        /// Block containing the offending read.
        block: BlockId,
        /// Instruction index within the block (`usize::MAX` for the
        /// terminator).
        instr: usize,
        /// The variable read.
        var: Var,
    },
    /// An insertion is planned at a point that is neither down-safe nor
    /// up-safe.
    UnsafeInsertion {
        /// Description of the insertion point.
        at: String,
        /// Universe index of the offending expression.
        expr: usize,
    },
    /// A *speculative* plan inserts an expression that is not provably
    /// side-effect-free at a classically unsafe point — the one thing
    /// speculation is never allowed to do (a hoisted division could fault
    /// on a path that never divided).
    SideEffectingSpeculation {
        /// Description of the insertion point.
        at: String,
        /// Universe index of the offending expression.
        expr: usize,
    },
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyError::MaybeUnassigned { block, instr, var } => {
                write!(
                    f,
                    "variable {var:?} may be read unassigned at {block}[{instr}]"
                )
            }
            SafetyError::UnsafeInsertion { at, expr } => {
                write!(f, "insertion of expression #{expr} at {at} is unsafe")
            }
            SafetyError::SideEffectingSpeculation { at, expr } => {
                write!(
                    f,
                    "speculative insertion of expression #{expr} at {at} is not \
                     side-effect-free"
                )
            }
        }
    }
}

impl Error for SafetyError {}

/// Checks that every read of a variable in `tracked` is preceded by
/// assignments to it on **every** path from the entry.
///
/// # Errors
///
/// Returns the first potentially-unassigned read found.
pub fn check_definite_assignment(f: &Function, tracked: &[Var]) -> Result<(), SafetyError> {
    if tracked.is_empty() {
        return Ok(());
    }
    let mut is_tracked = vec![false; f.symbols.len()];
    for &v in tracked {
        is_tracked[v.index()] = true;
    }
    let solution = analyses::definitely_assigned(f);

    for b in f.block_ids() {
        let mut assigned = solution.ins.row_set(b.index());
        let data = f.block(b);
        for (i, instr) in data.instrs.iter().enumerate() {
            for used in instr.uses() {
                if is_tracked[used.index()] && !assigned.contains(used.index()) {
                    return Err(SafetyError::MaybeUnassigned {
                        block: b,
                        instr: i,
                        var: used,
                    });
                }
            }
            if let Some(dst) = instr.def() {
                assigned.insert(dst.index());
            }
        }
        if let Some(cond) = data.term.use_var() {
            if is_tracked[cond.index()] && !assigned.contains(cond.index()) {
                return Err(SafetyError::MaybeUnassigned {
                    block: b,
                    instr: usize::MAX,
                    var: cond,
                });
            }
        }
    }
    Ok(())
}

/// Checks that every insertion in `plan` sits at a safe point of the
/// function the plan was computed for: down-safe (the expression is
/// anticipated there) or up-safe (it is available there). Classic PRE
/// forbids anything else.
///
/// # Errors
///
/// Returns the first unsafe insertion found.
pub fn check_plan_safety(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
    plan: &PlacementPlan,
) -> Result<(), SafetyError> {
    let _ = (uni, local);
    let safe_between = |avail_before: &[u64], antic_after: &[u64], set: &BitSet, at: String| {
        for e in set.iter() {
            if !row_contains(antic_after, e) && !row_contains(avail_before, e) {
                return Err(SafetyError::UnsafeInsertion { at, expr: e });
            }
        }
        Ok(())
    };

    // Virtual entry edge: nothing is available above the entry.
    for e in plan.entry_insert.iter() {
        if !ga.antic.ins.contains(f.entry().index(), e) {
            return Err(SafetyError::UnsafeInsertion {
                at: "entry".to_string(),
                expr: e,
            });
        }
    }
    for (eid, edge) in plan.edges.iter() {
        safe_between(
            ga.avail.outs.row(edge.from.index()),
            ga.antic.ins.row(edge.to.index()),
            &plan.edge_inserts[eid.index()],
            edge.to_string(),
        )?;
    }
    for b in f.block_ids() {
        let bi = b.index();
        safe_between(
            ga.avail.ins.row(bi),
            ga.antic.ins.row(bi),
            &plan.block_top_inserts[bi],
            format!("top of {b}"),
        )?;
        safe_between(
            ga.avail.outs.row(bi),
            ga.antic.outs.row(bi),
            &plan.block_bottom_inserts[bi],
            format!("bottom of {b}"),
        )?;
    }
    Ok(())
}

/// The admissibility rule for **speculative** plans: every insertion must
/// either be classically safe (down-safe or up-safe, as in
/// [`check_plan_safety`]) or hoist an expression that is provably
/// [`side_effect_free`](lcm_ir::Expr::side_effect_free). This is the
/// validator's independent re-check of the speculation invariant — it
/// derives the side-effect class from the expression itself, not from
/// anything the planner recorded.
///
/// # Errors
///
/// Returns the first insertion that is both classically unsafe and not
/// side-effect-free.
pub fn check_speculative_plan_safety(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
    plan: &PlacementPlan,
) -> Result<(), SafetyError> {
    let _ = local;
    let check =
        |avail_before: &[u64], antic_after: &[u64], set: &BitSet, at: &dyn Fn() -> String| {
            for e in set.iter() {
                if !row_contains(antic_after, e)
                    && !row_contains(avail_before, e)
                    && !uni.expr(e).side_effect_free()
                {
                    return Err(SafetyError::SideEffectingSpeculation { at: at(), expr: e });
                }
            }
            Ok(())
        };

    let no_avail = vec![0u64; ga.avail.outs.row(0).len()];
    check(
        &no_avail,
        ga.antic.ins.row(f.entry().index()),
        &plan.entry_insert,
        &|| "entry".to_string(),
    )?;
    for (eid, edge) in plan.edges.iter() {
        check(
            ga.avail.outs.row(edge.from.index()),
            ga.antic.ins.row(edge.to.index()),
            &plan.edge_inserts[eid.index()],
            &|| edge.to_string(),
        )?;
    }
    for b in f.block_ids() {
        let bi = b.index();
        check(
            ga.avail.ins.row(bi),
            ga.antic.ins.row(bi),
            &plan.block_top_inserts[bi],
            &|| format!("top of {b}"),
        )?;
        check(
            ga.avail.outs.row(bi),
            ga.antic.outs.row(bi),
            &plan.block_bottom_inserts[bi],
            &|| format!("bottom of {b}"),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn definite_assignment_accepts_dominating_defs() {
        let f = parse_function(
            "fn ok {
             entry:
               t = a + b
               br c, l, r
             l:
               x = t
               jmp j
             r:
               y = t
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let t = f.symbols.get("t").unwrap();
        check_definite_assignment(&f, &[t]).unwrap();
    }

    #[test]
    fn definite_assignment_rejects_one_sided_defs() {
        let f = parse_function(
            "fn bad {
             entry:
               br c, l, r
             l:
               t = a + b
               jmp j
             r:
               jmp j
             j:
               x = t
               obs x
               ret
             }",
        )
        .unwrap();
        let t = f.symbols.get("t").unwrap();
        let err = check_definite_assignment(&f, &[t]).unwrap_err();
        match err {
            SafetyError::MaybeUnassigned { var, .. } => assert_eq!(var, t),
            other => panic!("unexpected {other:?}"),
        }
        // Untracked variables are not reported.
        check_definite_assignment(&f, &[]).unwrap();
    }

    #[test]
    fn definite_assignment_checks_branch_conditions() {
        let f = parse_function(
            "fn cond {
             entry:
               br t, l, l
             l:
               t = 1
               ret
             }",
        )
        .unwrap();
        let t = f.symbols.get("t").unwrap();
        let err = check_definite_assignment(&f, &[t]).unwrap_err();
        assert!(matches!(err, SafetyError::MaybeUnassigned { instr, .. } if instr == usize::MAX));
    }

    #[test]
    fn plan_safety_flags_non_anticipated_insertions() {
        use crate::transform::PlacementPlan;
        let f = parse_function(
            "fn p {
             entry:
               br c, l, r
             l:
               a = 1
               x = a + b
               jmp j
             r:
               jmp j
             j:
               obs x
               ret
             }",
        )
        .unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let mut plan = PlacementPlan::empty("test", &f, &uni);
        // Inserting a + b at the entry is unsafe: the l path kills a before
        // ever computing a + b with its entry value.
        plan.entry_insert.insert(0);
        let err = check_plan_safety(&f, &uni, &local, &ga, &plan).unwrap_err();
        assert!(matches!(err, SafetyError::UnsafeInsertion { .. }));
        assert!(err.to_string().contains("unsafe"));
    }
}
