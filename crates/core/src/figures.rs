//! The paper's running example, reconstructed.
//!
//! The exact node numbering of the PLDI'92 hand-drawn figures is not
//! recoverable from the paper's title alone, so [`running_example`] is a
//! faithful reconstruction exhibiting every phenomenon the original
//! figures illustrate (see DESIGN.md §3 and EXPERIMENTS.md F1–F5):
//!
//! * a **partially redundant** computation of `a + b`: computed on the
//!   `compute` arm and unconditionally inside the loop — redundant along
//!   one path, not the other, and loop-carried;
//! * a **busy-vs-lazy lifetime gap**: BCM hoists `a + b` to the very top
//!   of the function, LCM only to the `skip` arm (and reuses the `compute`
//!   arm's existing computation);
//! * a decrement `i - 1` that **cannot profitably move** (it is killed by
//!   its own destination each iteration): BCM churns — inserting before the
//!   loop and on the back edge — while LCM leaves it exactly in place;
//! * an **isolated** computation of `c | d` in the tail: the naive lazy
//!   placement (ALCM, no isolation analysis) inserts a useless
//!   initialisation in front of it, which the ISOLATED analysis suppresses;
//! * a **post-kill recomputation** of `a + b` in the tail that no safe
//!   motion can touch.

use lcm_ir::{BlockId, Function, FunctionBuilder};

/// Builds the reconstructed running example. See the [module
/// docs](self) for the phenomena it encodes.
///
/// ```text
///        entry                i, a, b, c, d, p are inputs
///          │
///        cond ──p──► compute: x = a+b ─┐
///          │                           │
///          └────► skip ───────────────►▼
///                                   preloop
///                                      │
///                                   loop:  y = a+b; i = i-1   ◄─┐
///                                      │ └──────────────────────┘
///                                      ▼
///                                   tail:  a = a+1; z = a+b; w = c|d
/// ```
pub fn running_example() -> Function {
    let mut b = FunctionBuilder::new("running_example");
    let cond = b.create_block("cond");
    let compute = b.create_block("compute");
    let skip = b.create_block("skip");
    let preloop = b.create_block("preloop");
    let lop = b.create_block("loop");
    let tail = b.create_block("tail");

    b.jump(cond);

    b.switch_to(cond);
    b.branch("p", compute, skip);

    b.switch_to(compute);
    b.assign_bin("x", "+", "a", "b").expect("operator");
    b.observe("x");
    b.jump(preloop);

    b.switch_to(skip);
    b.jump(preloop);

    b.switch_to(preloop);
    b.jump(lop);

    b.switch_to(lop);
    b.assign_bin("y", "+", "a", "b").expect("operator");
    b.observe("y");
    b.assign_bin("i", "-", "i", 1).expect("operator");
    b.branch("i", lop, tail);

    b.switch_to(tail);
    b.assign_bin("a", "+", "a", 1).expect("operator");
    b.assign_bin("z", "+", "a", "b").expect("operator");
    b.observe("z");
    b.assign_bin("w", "|", "c", "d").expect("operator");
    b.observe("w");
    b.jump_exit();

    let f = b.finish();
    debug_assert!(lcm_ir::verify(&f).is_ok());
    f
}

/// Block ids of the running example's named blocks, for assertions and
/// table rendering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunningExampleBlocks {
    /// The branch block.
    pub cond: BlockId,
    /// The arm computing `a + b`.
    pub compute: BlockId,
    /// The empty arm.
    pub skip: BlockId,
    /// The loop pre-header.
    pub preloop: BlockId,
    /// The loop (header and body in one block).
    pub lop: BlockId,
    /// The post-loop tail.
    pub tail: BlockId,
}

impl RunningExampleBlocks {
    /// Looks the blocks up by name in (a transformed copy of) the example.
    ///
    /// # Panics
    ///
    /// Panics if a label is missing (i.e. `f` is not derived from
    /// [`running_example`]).
    pub fn of(f: &Function) -> Self {
        let get = |n: &str| f.block_by_name(n).unwrap_or_else(|| panic!("no block {n}"));
        RunningExampleBlocks {
            cond: get("cond"),
            compute: get("compute"),
            skip: get("skip"),
            preloop: get("preloop"),
            lop: get("loop"),
            tail: get("tail"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyses::GlobalAnalyses;
    use crate::bcm::busy_plan;
    use crate::lcm_edge::lazy_edge_plan;
    use crate::lcm_node::lazy_node_plan;
    use crate::metrics::live_points;
    use crate::predicates::LocalPredicates;
    use crate::transform::apply_plan;
    use crate::universe::ExprUniverse;

    fn expr_index(f: &Function, uni: &ExprUniverse, text: &str) -> usize {
        uni.iter()
            .find(|(_, e)| f.display_expr(*e) == text)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no expression {text}"))
    }

    #[test]
    fn the_example_exhibits_the_papers_phenomena() {
        let f = running_example();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let blocks = RunningExampleBlocks::of(&f);
        let ab = expr_index(&f, &uni, "a + b");
        let dec = expr_index(&f, &uni, "i - 1");

        // BCM hoists a+b to the entry top and churns on i-1.
        let bcm = busy_plan(&f, &uni, &local, &ga);
        assert!(bcm.entry_insert.contains(ab));
        assert!(bcm.entry_insert.contains(dec));
        let back_edge = ga
            .edges
            .iter()
            .find(|(_, e)| e.from == blocks.lop && e.to == blocks.lop)
            .map(|(id, _)| id)
            .unwrap();
        assert!(bcm.edge_inserts[back_edge.index()].contains(dec));

        // LCM inserts a+b only on the skip arm and leaves i-1 alone.
        let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        assert!(lazy.plan.entry_insert.is_empty());
        let skip_out = ga.edges.outgoing(blocks.skip)[0];
        assert!(lazy.plan.edge_inserts[skip_out.index()].contains(ab));
        for (eid, _) in ga.edges.iter() {
            assert!(
                !lazy.plan.edge_inserts[eid.index()].contains(dec),
                "LCM must not move i - 1"
            );
        }
        // The in-loop computation of a+b is deleted, compute's stays.
        assert!(lazy.delete[blocks.lop.index()].contains(ab));
        assert!(!lazy.delete[blocks.compute.index()].contains(ab));
        // The post-kill recomputation in the tail is untouched.
        assert!(!lazy.delete[blocks.tail.index()].contains(ab));
    }

    #[test]
    fn lazy_lifetimes_beat_busy_lifetimes_on_the_example() {
        let f = running_example();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();

        let busy = apply_plan(&f, &uni, &local, &busy_plan(&f, &uni, &local, &ga));
        let lazy = apply_plan(
            &f,
            &uni,
            &local,
            &lazy_edge_plan(&f, &uni, &local, &ga).unwrap().plan,
        );
        let busy_points = live_points(&busy.function, &busy.temp_vars());
        let lazy_points = live_points(&lazy.function, &lazy.temp_vars());
        assert!(
            lazy_points < busy_points,
            "lazy {lazy_points} must beat busy {busy_points}"
        );
    }

    #[test]
    fn isolation_suppresses_the_tail_insertion() {
        let f = running_example();
        let alcm = lazy_node_plan(&f, false).unwrap();
        let lcm = lazy_node_plan(&f, true).unwrap();
        let g = &lcm.function;
        let uni = &lcm.universe;
        let cd = expr_index(g, uni, "c | d");
        let tail = g.block_by_name("tail").unwrap();
        assert!(
            alcm.plan.block_top_inserts[tail.index()].contains(cd),
            "ALCM inserts uselessly in front of the isolated computation"
        );
        assert!(
            !lcm.plan.block_top_inserts[tail.index()].contains(cd),
            "ISOLATED must suppress the useless insertion"
        );
    }
}
