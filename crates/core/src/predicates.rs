//! Local (per-block) predicates: ANTLOC, COMP, TRANSP.
//!
//! These are the paper's three local properties of a block `n` with respect
//! to a candidate expression `e`:
//!
//! * **ANTLOC** (*locally anticipatable*) — `n` contains an occurrence of
//!   `e` that is *upward exposed*: no operand of `e` is assigned earlier in
//!   the block, so the occurrence computes the value `e` has on entry.
//! * **COMP** (*locally available*) — `n` contains an occurrence of `e`
//!   that is *downward exposed*: no operand of `e` is assigned later in the
//!   block, so on exit the block "has just computed" `e`.
//! * **TRANSP** (*transparent*) — `n` assigns to no operand of `e`, so the
//!   value of `e` is the same on entry and exit.
//!
//! A single instruction `a = a + b` is an occurrence (the right-hand side
//! is evaluated first) and then a kill: the block has ANTLOC but not COMP
//! and not TRANSP for `a + b`.
//!
//! For `load` expressions TRANSP is additionally *alias-aware*: under the
//! base- and field-insensitive model, every `store` and every non-pure
//! `call` may write any heap cell, so each such instruction kills **all**
//! `Mem` expressions ([`ExprUniverse::mem_mask`]). The kill applies at the
//! killer's program point exactly like a destination kill: a load occurring
//! before an in-block store keeps ANTLOC, one after it loses it.

use lcm_dataflow::BitSet;
use lcm_ir::{BlockId, Function, Instr, Rvalue};

use crate::universe::ExprUniverse;

/// The local predicate bit vectors of every block, indexed by
/// [`BlockId`] and universe position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalPredicates {
    /// `ANTLOC[b]`: expressions with an upward-exposed occurrence in `b`.
    pub antloc: Vec<BitSet>,
    /// `COMP[b]`: expressions with a downward-exposed occurrence in `b`.
    pub comp: Vec<BitSet>,
    /// `TRANSP[b]`: expressions not killed by `b`.
    pub transp: Vec<BitSet>,
    /// `¬TRANSP[b]`, precomputed: the *kill* sets fed to the dataflow
    /// framework.
    pub kill: Vec<BitSet>,
}

impl LocalPredicates {
    /// Computes the local predicates of every block of `f` over `universe`.
    pub fn compute(f: &Function, universe: &ExprUniverse) -> Self {
        let n = f.num_blocks();
        let mut antloc = vec![universe.empty_set(); n];
        let mut comp = vec![universe.empty_set(); n];
        let mut transp = vec![universe.full_set(); n];
        for b in f.block_ids() {
            scan_block(f, universe, b, &mut antloc, &mut comp, &mut transp);
        }
        let kill = transp
            .iter()
            .map(|t| {
                let mut k = t.clone();
                k.complement();
                k
            })
            .collect();
        LocalPredicates {
            antloc,
            comp,
            transp,
            kill,
        }
    }

    /// Recomputes the predicates of a single block in place — the
    /// incremental path's "dirty block" repair. Equivalent to a full
    /// [`compute`](Self::compute) restricted to `b`; the other blocks'
    /// rows are untouched.
    pub fn recompute_block(&mut self, f: &Function, universe: &ExprUniverse, b: BlockId) {
        let i = b.index();
        self.antloc[i] = universe.empty_set();
        self.comp[i] = universe.empty_set();
        self.transp[i] = universe.full_set();
        scan_block(
            f,
            universe,
            b,
            &mut self.antloc,
            &mut self.comp,
            &mut self.transp,
        );
        self.kill[i] = self.transp[i].clone();
        self.kill[i].complement();
    }

    /// Renders one block's predicates, e.g. for figure tables.
    pub fn display_block(&self, f: &Function, universe: &ExprUniverse, b: BlockId) -> String {
        format!(
            "ANTLOC={} COMP={} TRANSP={}",
            universe.display_set(f, &self.antloc[b.index()]),
            universe.display_set(f, &self.comp[b.index()]),
            universe.display_set(f, &self.transp[b.index()]),
        )
    }
}

fn scan_block(
    f: &Function,
    universe: &ExprUniverse,
    b: BlockId,
    antloc: &mut [BitSet],
    comp: &mut [BitSet],
    transp: &mut [BitSet],
) {
    let i = b.index();
    // `killed_so_far[e]`: some operand of e was assigned earlier in the block.
    let mut killed_so_far = universe.empty_set();
    // `avail_now[e]`: e was computed in the block and not killed since.
    let mut avail_now = universe.empty_set();
    for instr in &f.block(b).instrs {
        if let Instr::Assign {
            rv: Rvalue::Expr(e),
            ..
        } = instr
        {
            if let Some(idx) = universe.index_of(*e) {
                if !killed_so_far.contains(idx) {
                    antloc[i].insert(idx);
                }
                avail_now.insert(idx);
            }
        }
        // The destination (if any) kills every expression mentioning it —
        // after the right-hand side has been evaluated. One packed mask per
        // variable turns the kill into three word sweeps over the whole
        // universe instead of a per-expression loop.
        if let Some(dst) = instr.def() {
            if let Some(mask) = universe.kill_mask(dst) {
                killed_so_far.union_with(mask);
                avail_now.difference_with(mask);
                transp[i].difference_with(mask);
            }
        }
        // Memory writers kill every load (may-alias, base/field-insensitive).
        if instr.kills_memory() {
            let mask = universe.mem_mask();
            killed_so_far.union_with(mask);
            avail_now.difference_with(mask);
            transp[i].difference_with(mask);
        }
    }
    comp[i] = avail_now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    fn predicates_of(text: &str) -> (Function, ExprUniverse, LocalPredicates) {
        let f = parse_function(text).unwrap();
        let uni = ExprUniverse::of(&f);
        let preds = LocalPredicates::compute(&f, &uni);
        (f, uni, preds)
    }

    #[test]
    fn plain_occurrence_is_antloc_and_comp() {
        let (f, _, p) = predicates_of("fn a {\nentry:\n  x = a + b\n  ret\n}");
        let e = f.entry().index();
        assert!(p.antloc[e].contains(0));
        assert!(p.comp[e].contains(0));
        assert!(p.transp[e].contains(0));
        assert!(!p.kill[e].contains(0));
    }

    #[test]
    fn kill_before_occurrence_clears_antloc() {
        let (f, _, p) = predicates_of(
            "fn k {
             entry:
               a = 1
               x = a + b
               ret
             }",
        );
        let e = f.entry().index();
        assert!(!p.antloc[e].contains(0)); // killed before the occurrence
        assert!(p.comp[e].contains(0)); // but downward exposed
        assert!(!p.transp[e].contains(0));
    }

    #[test]
    fn kill_after_occurrence_clears_comp() {
        let (f, _, p) = predicates_of(
            "fn k {
             entry:
               x = a + b
               a = 1
               ret
             }",
        );
        let e = f.entry().index();
        assert!(p.antloc[e].contains(0));
        assert!(!p.comp[e].contains(0));
        assert!(!p.transp[e].contains(0));
    }

    #[test]
    fn self_killing_occurrence() {
        // a = a + b: upward exposed, then killed by its own destination.
        let (f, _, p) = predicates_of("fn s {\nentry:\n  a = a + b\n  ret\n}");
        let e = f.entry().index();
        assert!(p.antloc[e].contains(0));
        assert!(!p.comp[e].contains(0));
        assert!(!p.transp[e].contains(0));
    }

    #[test]
    fn antloc_and_comp_with_distinct_occurrences() {
        // The paper's "both ANTLOC and COMP with TRANSP false" case: an
        // upward-exposed occurrence, a kill, then another occurrence.
        let (f, _, p) = predicates_of(
            "fn b {
             entry:
               x = a + b
               a = 2
               y = a + b
               ret
             }",
        );
        let e = f.entry().index();
        assert!(p.antloc[e].contains(0));
        assert!(p.comp[e].contains(0));
        assert!(!p.transp[e].contains(0));
    }

    #[test]
    fn store_kills_loads_positionally() {
        // Load, store, load: the first load is upward exposed, the second
        // is downward exposed, the block is not transparent for the load.
        let (f, uni, p) = predicates_of(
            "fn m {
             entry:
               x = load p
               store q, 1
               y = load p
               ret
             }",
        );
        let e = f.entry().index();
        let load = uni
            .index_of(lcm_ir::Expr::Mem(lcm_ir::Operand::Var(
                f.symbols.get("p").unwrap(),
            )))
            .unwrap();
        assert!(p.antloc[e].contains(load));
        assert!(p.comp[e].contains(load));
        assert!(!p.transp[e].contains(load));
        assert!(p.kill[e].contains(load));
    }

    #[test]
    fn impure_call_kills_loads_but_pure_does_not() {
        let (f, uni, p) = predicates_of(
            "fn c {
             entry:
               x = load p
               m = call min(x, 1)
               jmp other
             other:
               call poke(q, 2)
               ret
             }",
        );
        let load = uni
            .index_of(lcm_ir::Expr::Mem(lcm_ir::Operand::Var(
                f.symbols.get("p").unwrap(),
            )))
            .unwrap();
        let e = f.entry().index();
        // The pure `min` call leaves the load transparent...
        assert!(p.transp[e].contains(load));
        assert!(p.comp[e].contains(load));
        // ...but the impure `poke` kills it.
        let other = f.block_by_name("other").unwrap().index();
        assert!(!p.transp[other].contains(load));
    }

    #[test]
    fn unrelated_blocks_are_transparent() {
        let (f, _, p) = predicates_of(
            "fn t {
             entry:
               x = a + b
               jmp other
             other:
               q = 5
               obs q
               ret
             }",
        );
        let other = f.block_by_name("other").unwrap().index();
        assert!(!p.antloc[other].contains(0));
        assert!(!p.comp[other].contains(0));
        assert!(p.transp[other].contains(0));
    }

    #[test]
    fn display_block_is_readable() {
        let (f, uni, p) = predicates_of("fn d {\nentry:\n  x = a + b\n  ret\n}");
        let s = p.display_block(&f, &uni, f.entry());
        assert!(s.contains("ANTLOC={a + b}"));
        assert!(s.contains("TRANSP={a + b}"));
    }
}
