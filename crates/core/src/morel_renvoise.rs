//! The Morel–Renvoise (1979) partial-redundancy elimination — the
//! **bidirectional** baseline that Lazy Code Motion was designed to
//! replace.
//!
//! The placement predicates `PPIN`/`PPOUT` ("placement possible at
//! entry/exit") satisfy a mutually recursive system that mixes forward and
//! backward dependences and therefore cannot be staged into independent
//! unidirectional sweeps:
//!
//! ```text
//! PPIN[b]  = PAVIN[b] ∩ (ANTLOC[b] ∪ (TRANSP[b] ∩ PPOUT[b]))
//!                      ∩ ⋂ over preds p of (PPOUT[p] ∪ AVOUT[p])
//!            (∅ at the entry block)
//! PPOUT[b] = ⋂ over succs s of PPIN[s]          (∅ at the exit block)
//!
//! INSERT[b] = PPOUT[b] ∩ ¬AVOUT[b] ∩ (¬PPIN[b] ∪ ¬TRANSP[b])   (at b's end)
//! DELETE[b] = ANTLOC[b] ∩ PPIN[b]
//! ```
//!
//! Besides being harder to reason about, the bidirectional system is
//! weaker: insertions happen only at block *ends*, so redundancies whose
//! optimal insertion point is a critical edge are missed — the situation
//! the paper's edge/node placement handles. The complexity experiment (C1)
//! additionally measures its costlier convergence.

use lcm_dataflow::{BitSet, SolveStats, SolverDiverged};
use lcm_ir::{graph, Function};

use crate::analyses;
use crate::predicates::LocalPredicates;
use crate::transform::PlacementPlan;
use crate::universe::ExprUniverse;

/// The Morel–Renvoise fixpoint and derived placement.
#[derive(Clone, Debug)]
pub struct MorelRenvoiseResult {
    /// `PPIN[b]`.
    pub ppin: Vec<BitSet>,
    /// `PPOUT[b]`.
    pub ppout: Vec<BitSet>,
    /// Placement plan: insertions at block bottoms only.
    pub plan: PlacementPlan,
    /// `DELETE[b] = ANTLOC[b] ∩ PPIN[b]` — the deletions the equations
    /// promise; the transform layer re-derives them from availability and
    /// the tests assert agreement.
    pub delete: Vec<BitSet>,
    /// Bidirectional sweeps needed to converge plus the word ops spent
    /// (including the prerequisite availability / partial-availability
    /// passes).
    pub stats: SolveStats,
}

/// Runs Morel–Renvoise PRE on `f`.
///
/// The bidirectional `PPIN`/`PPOUT` system is solved as a greatest
/// fixpoint: every accepted sweep strictly shrinks at least one of the
/// `2·n·|universe|` tracked bits, so `2·n·|universe| + 2` sweeps bound any
/// monotone run. Exceeding the bound (possible only with corrupted
/// predicates) reports [`SolverDiverged`] instead of spinning.
pub fn morel_renvoise_plan(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Result<MorelRenvoiseResult, SolverDiverged> {
    let avail = analyses::availability(f, uni, local)?;
    let pavail = analyses::partial_availability(f, uni, local)?;
    let mut stats = avail.stats;
    stats += pavail.stats;

    let n = f.num_blocks();
    let preds = f.preds();
    let order = graph::reverse_postorder(f);
    let words = uni.empty_set().num_words() as u64;

    // Greatest fixpoint: start from the full set everywhere except the
    // boundaries and shrink.
    let mut ppin = vec![uni.full_set(); n];
    let mut ppout = vec![uni.full_set(); n];
    ppin[f.entry().index()] = uni.empty_set();
    ppout[f.exit().index()] = uni.empty_set();

    // `stats.iterations` already counts the prerequisite availability
    // sweeps, so the divergence bound tracks its own counter.
    let sweep_bound = 2 * n * uni.len() + 2;
    let mut sweeps = 0usize;
    loop {
        if sweeps >= sweep_bound {
            return Err(SolverDiverged {
                analysis: "morel-renvoise",
                sweeps: sweep_bound,
            });
        }
        sweeps += 1;
        stats.iterations += 1;
        let mut changed = false;
        for &b in &order {
            let bi = b.index();
            stats.node_visits += 1;
            // PPOUT first (it feeds PPIN of the same block).
            if b != f.exit() {
                let mut acc = uni.full_set();
                for s in f.succs(b) {
                    acc.intersect_with(&ppin[s.index()]);
                    stats.word_ops += words;
                }
                if acc != ppout[bi] {
                    ppout[bi] = acc;
                    changed = true;
                }
            }
            if b != f.entry() {
                // PAVIN ∩ (ANTLOC ∪ (TRANSP ∩ PPOUT)) ∩ ⋂(PPOUT[p] ∪ AVOUT[p])
                let mut v = local.transp[bi].clone();
                v.intersect_with(&ppout[bi]);
                v.union_with(&local.antloc[bi]);
                v.intersect_with_row(pavail.ins.row(bi));
                stats.word_ops += 3 * words;
                for &p in &preds[bi] {
                    let mut from_pred = ppout[p.index()].clone();
                    from_pred.union_with_row(avail.outs.row(p.index()));
                    v.intersect_with(&from_pred);
                    stats.word_ops += 3 * words;
                }
                if v != ppin[bi] {
                    ppin[bi] = v;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // INSERT at block bottoms; DELETE as promised by the equations.
    let mut plan = PlacementPlan::empty("morel-renvoise", f, uni);
    let mut delete = Vec::with_capacity(n);
    for b in f.block_ids() {
        let bi = b.index();
        let mut ins = local.transp[bi].clone();
        ins.intersect_with(&ppin[bi]);
        ins.complement(); // ¬PPIN ∪ ¬TRANSP
        ins.intersect_with(&ppout[bi]);
        ins.difference_with_row(avail.outs.row(bi));
        plan.block_bottom_inserts[bi] = ins;

        let mut d = local.antloc[bi].clone();
        d.intersect_with(&ppin[bi]);
        delete.push(d);
    }

    Ok(MorelRenvoiseResult {
        ppin,
        ppout,
        plan,
        delete,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyses::GlobalAnalyses;
    use crate::lcm_edge::lazy_edge_plan;
    use crate::transform::{apply_plan, deletions, temp_availability};
    use lcm_ir::parse_function;

    fn setup(text: &str) -> (Function, ExprUniverse, LocalPredicates) {
        let f = parse_function(text).unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        (f, uni, local)
    }

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn mr_handles_the_plain_diamond() {
        let (f, uni, local) = setup(DIAMOND);
        let mr = morel_renvoise_plan(&f, &uni, &local).unwrap();
        let r = f.block_by_name("r").unwrap();
        let join = f.block_by_name("join").unwrap();
        // Insertion at the end of the empty arm; join occurrence deleted.
        assert!(mr.plan.block_bottom_inserts[r.index()].contains(0));
        assert!(mr.delete[join.index()].contains(0));
        let result = apply_plan(&f, &uni, &local, &mr.plan);
        lcm_ir::verify(&result.function).unwrap();
        assert_eq!(result.stats.deletions, 1);
    }

    #[test]
    fn mr_promised_deletes_match_availability_deletes() {
        for text in [
            DIAMOND,
            "fn loopy {
             entry:
               i = 9
               jmp body
             body:
               x = a + b
               obs x
               i = i - 1
               br i, body, done
             done:
               obs x
               ret
             }",
        ] {
            let (f, uni, local) = setup(text);
            let mr = morel_renvoise_plan(&f, &uni, &local).unwrap();
            let tav = temp_availability(&f, &uni, &local, &mr.plan);
            let from_tav = deletions(&f, &uni, &local, &mr.plan, &tav);
            assert_eq!(from_tav, mr.delete, "mismatch for {}", f.name);
        }
    }

    #[test]
    fn mr_misses_the_critical_edge_case_lcm_handles() {
        // The partially redundant computation sits behind a critical edge:
        // inserting at the end of `top` would be unsafe (the l path kills
        // b first… no: would be *unprofitable* — it recomputes on the l
        // path), and there is no block whose end covers only the r path.
        // MR therefore cannot delete; LCM splits the edge and can.
        let text = "fn crit {
            entry:
              br c, mid, join
            mid:
              x = a + b
              jmp join
            join:
              y = a + b
              obs y
              ret
            }";
        let (f, uni, local) = setup(text);
        let mr = morel_renvoise_plan(&f, &uni, &local).unwrap();
        let join = f.block_by_name("join").unwrap();
        assert!(
            !mr.delete[join.index()].contains(0),
            "MR should not handle the critical-edge diamond"
        );
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        assert!(
            lazy.delete[join.index()].contains(0),
            "LCM must handle it by edge splitting"
        );
        let result = apply_plan(&f, &uni, &local, &lazy.plan);
        assert!(result.stats.edges_split > 0);
        lcm_ir::verify(&result.function).unwrap();
    }

    #[test]
    fn mr_takes_more_sweeps_than_unidirectional_passes() {
        // Not a theorem, but on a ladder of diamonds the bidirectional
        // system predictably needs several sweeps.
        let f = lcm_cfggen::shapes::ladder(6);
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let mr = morel_renvoise_plan(&f, &uni, &local).unwrap();
        assert!(mr.stats.iterations >= 2);
    }
}
