//! Optimality metrics: per-path evaluation counts (Theorem T2) and static
//! live-range sizes of the introduced temporaries (Theorem T3).

use std::collections::HashMap;

use lcm_dataflow::{analyses, BitSet};
use lcm_ir::{graph, Expr, Function, Instr, Rvalue, Var};

/// For an **acyclic** function, the number of evaluations of each tracked
/// expression summed per entry→exit path, in path-enumeration order.
///
/// Temp initialisations `t := e` count as evaluations of `e`; temp reads
/// `v := t` do not — exactly the cost model of the paper's computational
/// optimality theorem. Returns `None` if the function has a cycle or more
/// than `max_paths` paths.
pub fn path_eval_counts(f: &Function, exprs: &[Expr], max_paths: usize) -> Option<Vec<u64>> {
    let tracked: HashMap<Expr, ()> = exprs.iter().map(|&e| (e, ())).collect();
    let per_block: Vec<u64> = f
        .block_ids()
        .map(|b| {
            f.block(b)
                .instrs
                .iter()
                .filter(|i| match i {
                    Instr::Assign {
                        rv: Rvalue::Expr(e),
                        ..
                    } => tracked.contains_key(e),
                    _ => false,
                })
                .count() as u64
        })
        .collect();
    let mut counts = Vec::new();
    graph::for_each_path(f, max_paths, |path| {
        counts.push(path.iter().map(|b| per_block[b.index()]).sum());
    })?;
    Some(counts)
}

/// Static liveness of a set of variables, at instruction granularity.
///
/// Returns the number of *(program point, variable)* pairs at which one of
/// `vars` is live: the classical register-pressure contribution of the PRE
/// temporaries. Program points are the positions before each instruction
/// and before the terminator of every block.
///
/// ```
/// use lcm_core::metrics::live_points;
/// let f = lcm_ir::parse_function(
///     "fn m {\nentry:\n  t = a + b\n  pad = 0\n  obs t\n  ret\n}",
/// )?;
/// let t = f.symbols.get("t").unwrap();
/// assert_eq!(live_points(&f, &[t]), 2); // before `pad = 0` and `obs t`
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn live_points(f: &Function, vars: &[Var]) -> u64 {
    if vars.is_empty() {
        return 0;
    }
    let nvars = f.symbols.len();
    let mut tracked = BitSet::new(nvars);
    for &v in vars {
        tracked.insert(v.index());
    }

    // Block-level liveness, then an in-block backward walk per point.
    let solution = analyses::var_liveness(f);

    // In-block backward walk counting live tracked vars at each point.
    let mut total = 0u64;
    for b in f.block_ids() {
        let mut live = solution.outs.row_set(b.index());
        let data = f.block(b);
        // Point just before the terminator.
        if let Some(c) = data.term.use_var() {
            live.insert(c.index());
        }
        let mut count_point = |live: &BitSet| {
            let mut overlap = live.clone();
            overlap.intersect_with(&tracked);
            total += overlap.count() as u64;
        };
        count_point(&live);
        for instr in data.instrs.iter().rev() {
            if let Some(dst) = instr.def() {
                live.remove(dst.index());
            }
            for u in instr.uses() {
                live.insert(u.index());
            }
            count_point(&live);
        }
    }
    total
}

/// Total static occurrences of the given expressions in `f` (each
/// `v := e` or `t := e` instruction counts once).
pub fn static_eval_sites(f: &Function, exprs: &[Expr]) -> usize {
    let tracked: HashMap<Expr, ()> = exprs.iter().map(|&e| (e, ())).collect();
    f.expr_occurrences()
        .filter(|(_, _, e)| tracked.contains_key(e))
        .count()
}

/// The loop-nesting depth of every block: the number of natural loops whose
/// body contains it.
pub fn loop_depths(f: &Function) -> Vec<usize> {
    let mut depth = vec![0usize; f.num_blocks()];
    for l in graph::natural_loops(f) {
        for &b in &l.body {
            depth[b.index()] += 1;
        }
    }
    depth
}

/// Static evaluation sites weighted by `10^depth` — the classical static
/// estimate of dynamic cost ("a loop runs ten times"). A hoisting that
/// moves one site out of a doubly nested loop drops the estimate by 99.
pub fn weighted_eval_sites(f: &Function, exprs: &[Expr]) -> u64 {
    let tracked: HashMap<Expr, ()> = exprs.iter().map(|&e| (e, ())).collect();
    let depth = loop_depths(f);
    f.expr_occurrences()
        .filter(|(_, _, e)| tracked.contains_key(e))
        .map(|(b, _, _)| 10u64.saturating_pow(depth[b.index()].min(9) as u32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn path_counts_on_a_diamond() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               x = a + b
               jmp j
             r:
               jmp j
             j:
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        let e = f.expr_universe()[0];
        let counts = path_eval_counts(&f, &[e], 100).unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]); // r path: 1, l path: 2
    }

    #[test]
    fn path_counts_reject_cycles() {
        let f = parse_function(
            "fn c {
             entry:
               jmp h
             h:
               br c, h, d
             d:
               ret
             }",
        )
        .unwrap();
        assert_eq!(path_eval_counts(&f, &[], 100), None);
    }

    #[test]
    fn live_points_measures_def_to_use_distance() {
        let near = parse_function(
            "fn near {
             entry:
               t = a + b
               obs t
               pad0 = 0
               pad1 = 0
               ret
             }",
        )
        .unwrap();
        let far = parse_function(
            "fn far {
             entry:
               t = a + b
               pad0 = 0
               pad1 = 0
               obs t
               ret
             }",
        )
        .unwrap();
        let t_near = near.symbols.get("t").unwrap();
        let t_far = far.symbols.get("t").unwrap();
        assert!(live_points(&far, &[t_far]) > live_points(&near, &[t_near]));
        assert_eq!(live_points(&near, &[]), 0);
    }

    #[test]
    fn live_points_follow_cross_block_ranges() {
        let f = parse_function(
            "fn x {
             entry:
               t = a + b
               jmp mid
             mid:
               pad = 0
               jmp last
             last:
               obs t
               ret
             }",
        )
        .unwrap();
        let t = f.symbols.get("t").unwrap();
        // Live at: before jmp(entry), before pad, before jmp(mid),
        // before obs. (Not after obs.)
        assert_eq!(live_points(&f, &[t]), 4);
    }

    #[test]
    fn loop_depths_and_weighted_sites() {
        let f = parse_function(
            "fn w {
             entry:
               x = a + b
               jmp outer
             outer:
               y = a + b
               br c, inner, done
             inner:
               z = a + b
               br d, inner, outer_latch
             outer_latch:
               jmp outer
             done:
               obs x
               ret
             }",
        )
        .unwrap();
        let depth = loop_depths(&f);
        let get = |n: &str| f.block_by_name(n).unwrap().index();
        assert_eq!(depth[f.entry().index()], 0);
        assert_eq!(depth[get("outer")], 1);
        assert_eq!(depth[get("inner")], 2);
        assert_eq!(depth[get("done")], 0);
        let e = f.expr_universe();
        // 1 (entry) + 10 (outer) + 100 (inner).
        assert_eq!(weighted_eval_sites(&f, &e), 111);
    }

    #[test]
    fn static_sites_count_occurrences() {
        let f = parse_function(
            "fn s {
             entry:
               x = a + b
               y = a + b
               z = a * b
               ret
             }",
        )
        .unwrap();
        let uni = f.expr_universe();
        assert_eq!(static_eval_sites(&f, &uni), 3);
        assert_eq!(static_eval_sites(&f, &uni[..1]), 2);
    }
}
