//! A small in-tree max-flow / min-cut solver (Edmonds–Karp).
//!
//! Speculative PRE ([`speculate`](crate::speculate)) phrases "where do
//! insertions cost the least execution frequency" as a minimum s–t cut.
//! The networks it builds are tiny — two nodes per basic block plus a
//! source and a sink — so the textbook BFS-augmenting-path algorithm is
//! more than fast enough and keeps the workspace dependency-free.
//!
//! Capacities are `u64` with [`INF`] as the "never cut this" sentinel;
//! augmentation saturates rather than overflows, so even adversarial
//! weight profiles cannot wrap.

use std::collections::VecDeque;

/// Effectively infinite capacity: edges that a minimum cut must never
/// sever. Large enough to dominate any sum of real profile weights, small
/// enough that summing a path of them cannot overflow.
pub const INF: u64 = u64::MAX / 4;

/// One directed edge of the residual graph. Edges are stored in pairs —
/// edge `i ^ 1` is the reverse of edge `i` — so residual updates are O(1).
#[derive(Clone, Copy, Debug)]
struct FlowEdge {
    to: u32,
    cap: u64,
}

/// A flow network over dense node indices.
///
/// Build with [`add_edge`](FlowNetwork::add_edge), run
/// [`max_flow`](FlowNetwork::max_flow), then partition with
/// [`min_cut`](FlowNetwork::min_cut): the saturated edges crossing from the
/// source side to the sink side form a minimum cut (max-flow/min-cut
/// theorem).
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Outgoing (residual) edge indices per node.
    adj: Vec<Vec<u32>>,
    /// Edge store; `edges[i ^ 1]` is the reverse of `edges[i]`.
    edges: Vec<FlowEdge>,
}

impl FlowNetwork {
    /// Creates a network with `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); nodes],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` and returns its
    /// index (stable across the solve, usable with
    /// [`in_cut`](FlowNetwork::in_cut)). A zero-capacity reverse edge is
    /// added implicitly.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> usize {
        let idx = self.edges.len();
        self.edges.push(FlowEdge { to: to as u32, cap });
        self.edges.push(FlowEdge {
            to: from as u32,
            cap: 0,
        });
        self.adj[from].push(idx as u32);
        self.adj[to].push(idx as u32 + 1);
        idx
    }

    /// Computes the maximum `s`→`t` flow (Edmonds–Karp: BFS shortest
    /// augmenting paths), mutating residual capacities in place. Returns
    /// the flow value, saturating at [`INF`].
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        let mut total: u64 = 0;
        let mut parent: Vec<Option<u32>> = vec![None; self.adj.len()];
        loop {
            // BFS for an augmenting path in the residual graph.
            parent.iter_mut().for_each(|p| *p = None);
            let mut queue = VecDeque::from([s as u32]);
            'bfs: while let Some(u) = queue.pop_front() {
                for &eid in &self.adj[u as usize] {
                    let e = self.edges[eid as usize];
                    if e.cap == 0 || parent[e.to as usize].is_some() || e.to as usize == s {
                        continue;
                    }
                    parent[e.to as usize] = Some(eid);
                    if e.to as usize == t {
                        break 'bfs;
                    }
                    queue.push_back(e.to);
                }
            }
            if parent[t].is_none() {
                return total;
            }
            // Bottleneck, then augment along the path.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let eid = parent[v].expect("path reaches s") as usize;
                bottleneck = bottleneck.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to as usize;
            }
            let mut v = t;
            while v != s {
                let eid = parent[v].expect("path reaches s") as usize;
                self.edges[eid].cap -= bottleneck;
                self.edges[eid ^ 1].cap = self.edges[eid ^ 1].cap.saturating_add(bottleneck);
                v = self.edges[eid ^ 1].to as usize;
            }
            total = total.saturating_add(bottleneck);
        }
    }

    /// After [`max_flow`](FlowNetwork::max_flow): the set of nodes still
    /// reachable from `s` in the residual graph (`true` = source side).
    /// Forward edges from the source side to the sink side form a minimum
    /// cut.
    pub fn min_cut(&self, s: usize) -> Vec<bool> {
        let mut reachable = vec![false; self.adj.len()];
        reachable[s] = true;
        let mut queue = VecDeque::from([s as u32]);
        while let Some(u) = queue.pop_front() {
            for &eid in &self.adj[u as usize] {
                let e = self.edges[eid as usize];
                if e.cap > 0 && !reachable[e.to as usize] {
                    reachable[e.to as usize] = true;
                    queue.push_back(e.to);
                }
            }
        }
        reachable
    }

    /// Whether the edge returned by [`add_edge`](FlowNetwork::add_edge) as
    /// `idx` crosses the cut described by `reachable` (source side →
    /// sink side).
    pub fn in_cut(&self, idx: usize, reachable: &[bool]) -> bool {
        let from = self.edges[idx ^ 1].to as usize;
        let to = self.edges[idx].to as usize;
        reachable[from] && !reachable[to]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_flow_is_the_bottleneck() {
        // s -3-> a -2-> t
        let mut net = FlowNetwork::new(3);
        let sa = net.add_edge(0, 1, 3);
        let at = net.add_edge(1, 2, 2);
        assert_eq!(net.max_flow(0, 2), 2);
        let cut = net.min_cut(0);
        assert!(!net.in_cut(sa, &cut));
        assert!(net.in_cut(at, &cut));
    }

    #[test]
    fn classic_diamond_min_cut() {
        // s → a (10), s → b (10), a → t (1), b → t (1), a → b (INF).
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        let sa = net.add_edge(s, a, 10);
        let sb = net.add_edge(s, b, 10);
        let at = net.add_edge(a, t, 1);
        let bt = net.add_edge(b, t, 1);
        let ab = net.add_edge(a, b, INF);
        assert_eq!(net.max_flow(s, t), 2);
        let cut = net.min_cut(s);
        // The cheap sink-side edges are cut; the INF edge never is.
        assert!(net.in_cut(at, &cut));
        assert!(net.in_cut(bt, &cut));
        assert!(!net.in_cut(ab, &cut));
        assert!(!net.in_cut(sa, &cut));
        assert!(!net.in_cut(sb, &cut));
    }

    #[test]
    fn disconnected_sink_has_zero_flow_and_source_only_cut() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
        let cut = net.min_cut(0);
        assert_eq!(cut, vec![true, true, false]);
    }

    #[test]
    fn zero_capacity_edges_are_free_to_cut() {
        let mut net = FlowNetwork::new(3);
        let sa = net.add_edge(0, 1, 0);
        let at = net.add_edge(1, 2, 7);
        assert_eq!(net.max_flow(0, 2), 0);
        let cut = net.min_cut(0);
        assert!(net.in_cut(sa, &cut));
        assert!(!net.in_cut(at, &cut));
    }

    #[test]
    fn inf_edges_saturate_instead_of_overflowing() {
        // Two INF edges in series: flow reports INF (saturating), and the
        // min cut severs the (equal-capacity) first edge's partition
        // boundary without panicking.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, INF);
        net.add_edge(1, 2, INF);
        assert_eq!(net.max_flow(0, 2), INF);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(1, 3, 3);
        net.add_edge(0, 2, 4);
        net.add_edge(2, 3, 4);
        assert_eq!(net.max_flow(0, 3), 7);
    }
}
