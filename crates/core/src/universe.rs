//! The expression universe: a dense numbering of the candidate expressions
//! of one function.

use std::collections::HashMap;

use lcm_dataflow::BitSet;
use lcm_ir::{Expr, Function, Var};

/// A dense numbering of the distinct candidate (single-operator)
/// expressions occurring in a function. All bit vectors produced by the
/// analyses in this crate are indexed by universe position.
///
/// ```
/// use lcm_core::ExprUniverse;
/// use lcm_ir::parse_function;
///
/// let f = parse_function(
///     "fn u {
///      entry:
///        x = a + b
///        y = a + b
///        z = a * b
///        ret
///      }",
/// )?;
/// let uni = ExprUniverse::of(&f);
/// assert_eq!(uni.len(), 2);
/// let a_plus_b = f.block(f.entry()).exprs().next().unwrap();
/// assert_eq!(uni.index_of(a_plus_b), Some(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExprUniverse {
    exprs: Vec<Expr>,
    index: HashMap<Expr, usize>,
    /// For each variable, the indices of expressions it is an operand of
    /// (so a definition of the variable kills exactly these expressions).
    killed_by: HashMap<Var, Vec<usize>>,
    /// The same information as packed bit masks, so a definition's effect
    /// on a whole predicate vector is a handful of word operations instead
    /// of a loop over indices.
    kill_masks: HashMap<Var, BitSet>,
    /// The positions of the `Mem` (load) expressions: the alias-aware kill
    /// mask applied at every `store` and non-pure `call` (base- and
    /// field-insensitive, so one mask covers every memory killer).
    mem_mask: BitSet,
}

impl ExprUniverse {
    /// Collects the universe of `f`, in first-occurrence order.
    pub fn of(f: &Function) -> Self {
        Self::from_exprs(f.expr_universe())
    }

    /// Builds a universe from an explicit expression list (deduplicated,
    /// order preserved).
    pub fn from_exprs(exprs: impl IntoIterator<Item = Expr>) -> Self {
        let mut dedup = Vec::new();
        let mut index = HashMap::new();
        for e in exprs {
            if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(e) {
                slot.insert(dedup.len());
                dedup.push(e);
            }
        }
        let mut killed_by: HashMap<Var, Vec<usize>> = HashMap::new();
        for (i, e) in dedup.iter().enumerate() {
            for v in e.vars() {
                let list = killed_by.entry(v).or_default();
                if list.last() != Some(&i) {
                    list.push(i);
                }
            }
        }
        let nbits = dedup.len();
        let kill_masks = killed_by
            .iter()
            .map(|(&v, indices)| {
                let mut mask = BitSet::new(nbits);
                for &i in indices {
                    mask.insert(i);
                }
                (v, mask)
            })
            .collect();
        let mut mem_mask = BitSet::new(nbits);
        for (i, e) in dedup.iter().enumerate() {
            if matches!(e, Expr::Mem(_)) {
                mem_mask.insert(i);
            }
        }
        ExprUniverse {
            exprs: dedup,
            index,
            killed_by,
            kill_masks,
            mem_mask,
        }
    }

    /// Number of distinct candidate expressions.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Returns `true` if the function has no candidate expressions.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// The expression at universe position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn expr(&self, i: usize) -> Expr {
        self.exprs[i]
    }

    /// The universe position of `e`, if it is a member.
    pub fn index_of(&self, e: Expr) -> Option<usize> {
        self.index.get(&e).copied()
    }

    /// Iterates over `(index, expr)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Expr)> + '_ {
        self.exprs.iter().copied().enumerate()
    }

    /// All expressions, in universe order.
    pub fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    /// The universe positions of expressions killed by a definition of `v`.
    pub fn killed_by(&self, v: Var) -> &[usize] {
        self.killed_by.get(&v).map_or(&[], |v| v.as_slice())
    }

    /// The packed-mask form of [`killed_by`](Self::killed_by): `None` when
    /// no expression mentions `v`, so callers can skip the word sweep
    /// entirely for temp-only definitions.
    pub fn kill_mask(&self, v: Var) -> Option<&BitSet> {
        self.kill_masks.get(&v)
    }

    /// The positions of the `Mem` (load) expressions — the kill mask of
    /// every memory-writing instruction (`store`, non-pure `call`) under
    /// the base- and field-insensitive alias model. Empty for functions
    /// without loads, so callers can skip the sweep entirely.
    pub fn mem_mask(&self) -> &BitSet {
        &self.mem_mask
    }

    /// Returns `true` if the universe contains any `Mem` expression.
    pub fn has_mem_exprs(&self) -> bool {
        self.mem_mask.iter().next().is_some()
    }

    /// An empty bit set sized to this universe.
    pub fn empty_set(&self) -> BitSet {
        BitSet::new(self.len())
    }

    /// A full bit set sized to this universe.
    pub fn full_set(&self) -> BitSet {
        BitSet::full(self.len())
    }

    /// Renders the members of `set` (e.g. `{a + b, a * b}`) using `f`'s
    /// variable names.
    pub fn display_set(&self, f: &Function, set: &BitSet) -> String {
        let mut out = String::from("{");
        for (n, i) in set.iter().enumerate() {
            if n > 0 {
                out.push_str(", ");
            }
            out.push_str(&f.display_expr(self.exprs[i]));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn kill_map_is_complete() {
        let f = parse_function(
            "fn k {
             entry:
               x = a + b
               y = a * a
               z = -b
               ret
             }",
        )
        .unwrap();
        let uni = ExprUniverse::of(&f);
        assert_eq!(uni.len(), 3);
        let a = f.symbols.get("a").unwrap();
        let b = f.symbols.get("b").unwrap();
        let x = f.symbols.get("x").unwrap();
        assert_eq!(uni.killed_by(a), &[0, 1]); // a+b, a*a
        assert_eq!(uni.killed_by(b), &[0, 2]); // a+b, -b
        assert!(uni.killed_by(x).is_empty());
    }

    #[test]
    fn kill_masks_mirror_killed_by() {
        let f = parse_function(
            "fn k {
             entry:
               x = a + b
               y = a * a
               z = -b
               ret
             }",
        )
        .unwrap();
        let uni = ExprUniverse::of(&f);
        for name in ["a", "b"] {
            let v = f.symbols.get(name).unwrap();
            let mask = uni.kill_mask(v).unwrap();
            assert_eq!(mask.iter().collect::<Vec<_>>(), uni.killed_by(v));
            assert_eq!(mask.capacity(), uni.len());
        }
        let x = f.symbols.get("x").unwrap();
        assert!(uni.kill_mask(x).is_none());
    }

    #[test]
    fn display_set_names_expressions() {
        let f = parse_function("fn d {\nentry:\n  x = a + b\n  y = a * b\n  ret\n}").unwrap();
        let uni = ExprUniverse::of(&f);
        let mut set = uni.empty_set();
        set.insert(0);
        set.insert(1);
        assert_eq!(uni.display_set(&f, &set), "{a + b, a * b}");
        assert_eq!(uni.display_set(&f, &uni.empty_set()), "{}");
    }

    #[test]
    fn duplicate_operand_killed_once() {
        let f = parse_function("fn s {\nentry:\n  y = a * a\n  ret\n}").unwrap();
        let uni = ExprUniverse::of(&f);
        let a = f.symbols.get("a").unwrap();
        assert_eq!(uni.killed_by(a), &[0]); // listed once despite two operands
    }

    #[test]
    fn mem_mask_covers_exactly_the_loads() {
        let f = parse_function(
            "fn m {
             entry:
               x = a + b
               y = load p
               z = load 5
               ret
             }",
        )
        .unwrap();
        let uni = ExprUniverse::of(&f);
        assert_eq!(uni.len(), 3);
        assert!(uni.has_mem_exprs());
        assert_eq!(uni.mem_mask().iter().collect::<Vec<_>>(), vec![1, 2]);
        // Assigning the address variable also kills the load, via the
        // ordinary operand-kill map.
        let p = f.symbols.get("p").unwrap();
        assert_eq!(uni.killed_by(p), &[1]);
    }

    #[test]
    fn empty_universe() {
        let f = parse_function("fn e {\nentry:\n  x = 5\n  obs x\n  ret\n}").unwrap();
        let uni = ExprUniverse::of(&f);
        assert!(uni.is_empty());
        assert_eq!(uni.empty_set().capacity(), 0);
    }
}
