//! Lazy Code Motion, edge-insertion formulation.
//!
//! This is the block-granularity restatement of the paper's algorithm (the
//! form given in the authors' TOPLAS'94 companion paper and adopted by
//! production compilers): after availability and anticipability, a *third*
//! unidirectional analysis delays the earliest insertion points along the
//! control flow as far as possible:
//!
//! ```text
//! LATERIN[j]  = ∩ over incoming edges (i,j) of LATER(i,j)
//!               (boundary: LATERIN[entry] = EARLIEST of the virtual
//!                entry edge = ANTIN[entry])
//! LATER(i,j)  = EARLIEST(i,j) ∪ (LATERIN[i] ∩ ¬ANTLOC[i])
//! ```
//!
//! `LATERIN[b]` reads "the insertion is still pending at b's entry": it can
//! be postponed to `b` or beyond. Delay stops at uses (`ANTLOC`) and at
//! merges where some other path needs the value earlier. The final
//! placement falls out directly:
//!
//! ```text
//! INSERT(i,j) = LATER(i,j) ∩ ¬LATERIN[j]   (cannot be delayed into j)
//! DELETE[b]   = ANTLOC[b] ∩ ¬LATERIN[b]    (a real insertion covers b)
//! ```
//!
//! Deletion and the isolation-aware rewriting are then carried out by the
//! shared [`transform`](crate::transform) machinery, which recomputes
//! `DELETE` from first principles (temp availability); the equality of the
//! two formulations is asserted in tests and validated on random corpora.

use lcm_dataflow::{
    BitMatrix, BitSet, CfgView, Confluence, Direction, Problem, Solution, SolveStats,
    SolveStrategy, SolverDiverged, SolverScratch, Transfer,
};
use lcm_ir::Function;

use crate::analyses::GlobalAnalyses;
use crate::predicates::LocalPredicates;
use crate::transform::PlacementPlan;
use crate::universe::ExprUniverse;

/// The LATER/LATERIN fixpoint plus the derived insertion/deletion sets.
#[derive(Clone, Debug)]
pub struct LazyEdgeResult {
    /// `LATERIN[b]` per block (one matrix row per block).
    pub laterin: BitMatrix,
    /// `LATER(i,j)` per edge (same numbering as the analyses' edge list).
    pub later: Vec<BitSet>,
    /// The placement plan (edge insertions only).
    pub plan: PlacementPlan,
    /// `DELETE[b] = ANTLOC[b] ∩ ¬LATERIN[b]` — the paper's deletion set,
    /// exposed for comparison with the transform layer's availability-based
    /// deletion (they must agree).
    pub delete: Vec<BitSet>,
    /// Solver statistics for the LATER pass.
    pub stats: SolveStats,
}

/// The LATER/LATERIN dataflow problem — a forward must-problem with
/// per-edge gen = EARLIEST and block transfer `in − ANTLOC` (gen = ∅,
/// kill = ANTLOC) — for callers that pick their own solver.
pub fn later_problem<'f>(
    f: &'f Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
) -> Problem<'f> {
    let transfer: Vec<Transfer> = local
        .antloc
        .iter()
        .map(|antloc| Transfer {
            gen: uni.empty_set(),
            kill: antloc.clone(),
        })
        .collect();
    Problem::new(f, uni.len(), Direction::Forward, Confluence::Must, transfer)
        .with_name("later")
        .with_boundary(ga.earliest_entry.clone())
        .with_edge_gen(ga.edges.clone(), ga.earliest.clone())
}

/// Runs the delay analysis and derives the lazy placement.
pub fn lazy_edge_plan(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
) -> Result<LazyEdgeResult, SolverDiverged> {
    let solution = later_problem(f, uni, local, ga).try_solve()?;
    Ok(derive_placement(f, uni, local, ga, solution))
}

/// The fused-pipeline variant of [`lazy_edge_plan`]: the delay analysis
/// runs on the change-driven worklist solver against a shared [`CfgView`].
/// Same fixpoint, typically cheaper.
pub fn lazy_edge_plan_in(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
    view: &CfgView,
) -> Result<LazyEdgeResult, SolverDiverged> {
    let solution = later_problem(f, uni, local, ga).try_solve_worklist_in(view)?;
    Ok(derive_placement(f, uni, local, ga, solution))
}

/// Like [`lazy_edge_plan_in`], but with an explicit [`SolveStrategy`] and a
/// caller-owned [`SolverScratch`] (normally the one the availability and
/// anticipability solves just used).
///
/// # Errors
///
/// Returns [`SolverDiverged`] if the fixpoint iteration exceeds its budget.
pub fn lazy_edge_plan_with(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
    view: &CfgView,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<LazyEdgeResult, SolverDiverged> {
    let solution = later_problem(f, uni, local, ga).try_solve_with(strategy, view, scratch)?;
    Ok(derive_placement(f, uni, local, ga, solution))
}

pub(crate) fn derive_placement(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
    solution: Solution,
) -> LazyEdgeResult {
    let laterin = solution.ins;

    // LATER(i,j) = EARLIEST(i,j) ∪ (LATERIN[i] ∩ ¬ANTLOC[i]); note the
    // solver's `outs` are exactly LATERIN[i] ∩ ¬ANTLOC[i].
    let mut later = Vec::with_capacity(ga.edges.len());
    let mut plan = PlacementPlan::empty("lcm-edge", f, uni);
    for (eid, edge) in ga.edges.iter() {
        let mut l = solution.outs.row_set(edge.from.index());
        l.union_with(&ga.earliest[eid.index()]);
        // INSERT = LATER − LATERIN[target]
        let mut ins = l.clone();
        ins.difference_with_row(laterin.row(edge.to.index()));
        plan.edge_inserts[eid.index()] = ins;
        later.push(l);
    }
    // Virtual entry edge: LATER(⊥,entry) = EARLIEST(⊥,entry) = LATERIN[entry],
    // so INSERT(⊥,entry) = LATERIN[entry] − LATERIN[entry] = ∅ — laziness
    // provably never inserts above the entry's first instruction.

    let delete = f
        .block_ids()
        .map(|b| {
            let mut d = laterin.row_set(b.index());
            d.complement();
            d.intersect_with(&local.antloc[b.index()]);
            d
        })
        .collect();

    LazyEdgeResult {
        laterin,
        later,
        plan,
        delete,
        stats: solution.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{apply_plan, deletions, temp_availability};
    use lcm_ir::parse_function;

    fn run(
        text: &str,
    ) -> (
        Function,
        ExprUniverse,
        LocalPredicates,
        GlobalAnalyses,
        LazyEdgeResult,
    ) {
        let f = parse_function(text).unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();
        (f, uni, local, ga, lazy)
    }

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn lazy_inserts_on_the_empty_arm_not_at_entry() {
        let (f, _uni, local, _ga, lazy) = run(DIAMOND);
        let r = f.block_by_name("r").unwrap();
        let join = f.block_by_name("join").unwrap();
        // Exactly one insertion: on r→join (delayed from the entry).
        assert_eq!(lazy.plan.num_insertions(), 1);
        let (eid, edge) = lazy
            .plan
            .edges
            .iter()
            .find(|(id, _)| !lazy.plan.edge_inserts[id.index()].is_empty())
            .unwrap();
        assert_eq!((edge.from, edge.to), (r, join));
        assert!(lazy.plan.edge_inserts[eid.index()].contains(0));
        assert!(lazy.plan.entry_insert.is_empty());
        // join's occurrence is deleted; l's is not.
        assert!(lazy.delete[join.index()].contains(0));
        let l = f.block_by_name("l").unwrap();
        assert!(!lazy.delete[l.index()].contains(0));
        let _ = local;
    }

    #[test]
    fn paper_delete_matches_availability_based_delete() {
        for text in [
            DIAMOND,
            "fn loopy {
             entry:
               i = 9
               jmp head
             head:
               br i, body, done
             body:
               x = a + b
               obs x
               i = i - 1
               jmp head
             done:
               y = a + b
               obs y
               ret
             }",
            "fn kills {
             entry:
               x = a + b
               a = x
               br c, l, r
             l:
               y = a + b
               jmp join
             r:
               jmp join
             join:
               z = a + b
               obs z
               ret
             }",
        ] {
            let (f, uni, local, _ga, lazy) = run(text);
            let tav = temp_availability(&f, &uni, &local, &lazy.plan);
            let from_tav = deletions(&f, &uni, &local, &lazy.plan, &tav);
            assert_eq!(from_tav, lazy.delete, "mismatch for {}", f.name);
        }
    }

    #[test]
    fn loop_invariant_is_hoisted_before_a_dowhile_loop() {
        // Classic LCM hoists a loop invariant exactly when it is
        // anticipated at the loop entry — a do-while body qualifies (a
        // zero-trip while loop would not: hoisting there would be unsafe).
        let (f, uni, local, _ga, lazy) = run("fn loopy {
             entry:
               i = 9
               jmp body
             body:
               x = a + b
               obs x
               i = i - 1
               br i, body, done
             done:
               obs x
               ret
             }");
        let idx = uni
            .iter()
            .find(|(_, e)| f.display_expr(*e) == "a + b")
            .map(|(i, _)| i)
            .unwrap();
        // Insertion on entry→body (before the loop), not inside it.
        let body = f.block_by_name("body").unwrap();
        let inserted: Vec<_> = lazy
            .plan
            .edges
            .iter()
            .filter(|(id, _)| lazy.plan.edge_inserts[id.index()].contains(idx))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(inserted.len(), 1);
        assert_eq!((inserted[0].from, inserted[0].to), (f.entry(), body));
        assert!(lazy.delete[body.index()].contains(idx));

        let result = apply_plan(&f, &uni, &local, &lazy.plan);
        lcm_ir::verify(&result.function).unwrap();
        // The loop body no longer computes a + b.
        let g = &result.function;
        let gbody = g.block_by_name("body").unwrap();
        assert!(g.block(gbody).exprs().all(|e| g.display_expr(e) != "a + b"));
    }

    #[test]
    fn fully_redundant_expression_needs_no_insertion() {
        // The second block's occurrence is fully redundant; LCM deletes it
        // with zero insertions (the first occurrence feeds the temp).
        // (A repeat *within* one block is LCSE's job, not LCM's — the paper
        // assumes local common-subexpression elimination has already run.)
        let (f, uni, local, _ga, lazy) = run("fn s {
             entry:
               x = a + b
               jmp next
             next:
               y = a + b
               obs y
               ret
             }");
        assert_eq!(lazy.plan.num_insertions(), 0);
        let result = apply_plan(&f, &uni, &local, &lazy.plan);
        let g = &result.function;
        assert_eq!(g.expr_occurrences().count(), 1);
        assert_eq!(result.stats.retained_defs, 1);
        assert_eq!(result.stats.deletions, 1);
    }

    #[test]
    fn isolated_computation_left_untouched() {
        // A single occurrence with no redundancy anywhere: the lazy plan
        // inserts nothing, deletes nothing, and the rewriter leaves the
        // instruction exactly as written (no pointless temp).
        let (f, uni, local, _ga, lazy) = run("fn iso {
             entry:
               x = a + b
               obs x
               ret
             }");
        assert_eq!(lazy.plan.num_insertions(), 0);
        let result = apply_plan(&f, &uni, &local, &lazy.plan);
        assert_eq!(result.stats.retained_defs, 0);
        assert_eq!(result.stats.deletions, 0);
        assert_eq!(result.function.to_string(), f.to_string());
    }
}
