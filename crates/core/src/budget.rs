//! Cooperative cancellation budgets for the checked pipeline.
//!
//! A long-running service cannot afford a unit that hogs a worker forever:
//! `lcmopt serve` answers each request under a *budget* — a wall-clock
//! deadline, a solver-fuel ceiling, an external cancel flag, or any
//! combination — and a unit that exceeds it is answered with a distinct
//! [`PipelineError::Cancelled`](crate::PipelineError::Cancelled) error
//! instead of blocking the connection.
//!
//! Cancellation is *cooperative*: the pipeline's loops are all bounded
//! (every fixpoint solve carries a lattice-derived sweep bound, every
//! interpreter run carries fuel), so the budget is checked at stage
//! boundaries — before solving, between solving and validation, and after
//! validation — rather than per instruction. A deadline therefore cancels
//! with the granularity of one pipeline stage, and the fuel ceiling is
//! enforced against the fused pipeline's actual node-visit count as soon
//! as the solves finish.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted pipeline run was cancelled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CancelReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The fused pipeline's solves exceeded the fuel ceiling.
    Fuel {
        /// Solver node visits the unit actually performed.
        used: u64,
        /// The ceiling it was admitted under.
        limit: u64,
    },
    /// The external cancel flag was raised (e.g. the requester hung up).
    Flag,
}

/// A cancelled pipeline stage: which boundary noticed, and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cancelled {
    /// The stage boundary at which the budget check fired.
    pub stage: &'static str,
    /// The exhausted resource.
    pub reason: CancelReason,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            CancelReason::Deadline => {
                write!(f, "cancelled at `{}`: deadline exceeded", self.stage)
            }
            CancelReason::Fuel { used, limit } => write!(
                f,
                "cancelled at `{}`: fuel exhausted ({used} node visits > limit {limit})",
                self.stage
            ),
            CancelReason::Flag => write!(f, "cancelled at `{}`: request abandoned", self.stage),
        }
    }
}

impl std::error::Error for Cancelled {}

/// A budget for one checked pipeline run. The default ([`unlimited`]
/// (OptimizeBudget::unlimited)) never cancels; constraints compose.
#[derive(Clone, Debug, Default)]
pub struct OptimizeBudget {
    deadline: Option<Instant>,
    fuel: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
}

impl OptimizeBudget {
    /// A budget that never cancels.
    pub fn unlimited() -> Self {
        OptimizeBudget::default()
    }

    /// Caps wall-clock time at `deadline` (absolute).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps wall-clock time at `d` from now.
    pub fn with_deadline_in(self, d: Duration) -> Self {
        self.with_deadline(Instant::now() + d)
    }

    /// Caps the fused pipeline's total solver node visits at `fuel`.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Attaches an external cancel flag; raising it cancels the run at the
    /// next stage boundary.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Whether no constraint is attached at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.fuel.is_none() && self.cancel.is_none()
    }

    /// Checks the deadline and the cancel flag at a stage boundary.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] naming `stage` when the deadline has passed or the
    /// flag is raised.
    pub fn check(&self, stage: &'static str) -> Result<(), Cancelled> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(Cancelled {
                    stage,
                    reason: CancelReason::Flag,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Cancelled {
                    stage,
                    reason: CancelReason::Deadline,
                });
            }
        }
        Ok(())
    }

    /// Checks the fuel ceiling against `used` solver node visits (in
    /// addition to the [`check`](Self::check) constraints).
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when `used` exceeds the ceiling, the deadline has
    /// passed, or the flag is raised.
    pub fn check_fuel(&self, stage: &'static str, used: u64) -> Result<(), Cancelled> {
        self.check(stage)?;
        if let Some(limit) = self.fuel {
            if used > limit {
                return Err(Cancelled {
                    stage,
                    reason: CancelReason::Fuel { used, limit },
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_cancels() {
        let b = OptimizeBudget::unlimited();
        assert!(b.is_unlimited());
        b.check("any").unwrap();
        b.check_fuel("any", u64::MAX).unwrap();
    }

    #[test]
    fn expired_deadline_cancels_deterministically() {
        let b = OptimizeBudget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let err = b.check("solve").unwrap_err();
        assert_eq!(err.stage, "solve");
        assert_eq!(err.reason, CancelReason::Deadline);
        assert!(err.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn fuel_ceiling_is_exact() {
        let b = OptimizeBudget::unlimited().with_fuel(10);
        b.check_fuel("solve", 10).unwrap();
        let err = b.check_fuel("solve", 11).unwrap_err();
        assert_eq!(
            err.reason,
            CancelReason::Fuel {
                used: 11,
                limit: 10
            }
        );
        assert!(err.to_string().contains("fuel exhausted"));
    }

    #[test]
    fn cancel_flag_fires_at_the_next_check() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = OptimizeBudget::unlimited().with_cancel_flag(flag.clone());
        b.check("a").unwrap();
        flag.store(true, Ordering::Relaxed);
        assert_eq!(b.check("b").unwrap_err().reason, CancelReason::Flag);
    }
}
