//! Incremental re-optimization: delta-scoped LCM for edit streams.
//!
//! The full pipeline charges four passes per function per edit. This module
//! keeps the previous fixpoints alive in an [`IncrementalState`] and, when
//! the next revision of the function has the same CFG *shape* (blocks,
//! successor lists, entry/exit) and the same expression universe, re-solves
//! only what an edit can actually perturb:
//!
//! 1. **diff** — blocks whose instructions or terminator changed are
//!    *dirty*; everything else keeps its local predicate rows verbatim;
//! 2. **repair** — [`LocalPredicates::recompute_block`] rescans dirty
//!    blocks only;
//! 3. **delta solve** — availability and anticipability re-drain just the
//!    SCC components downstream (forward) or upstream (backward) of the
//!    dirty blocks ([`Problem::try_delta_solve_with`]); EARLIEST is then
//!    re-derived (linear in edges) and LATER re-solved with a changed set
//!    of dirty blocks ∪ targets of edges whose EARLIEST moved ∪ the entry
//!    block when the virtual-entry EARLIEST moved;
//! 4. **verify** — the result goes through the fast-tier validator
//!    *unconditionally*, so an unsound delta can never escape. Shape or
//!    universe changes skip straight to a from-scratch solve (the
//!    fallback contract).
//!
//! Correctness rests on the framework's monotone-unique-fixpoint property:
//! components not in the directional closure of the change provably keep
//! their old values, so seeding them from the previous solution is exact,
//! not heuristic. The seeded edit corpus in `tests/incremental.rs` pins the
//! incremental and fresh pipelines bit-identical across hundreds of
//! content and shape edits.
//!
//! [`Problem::try_delta_solve_with`]: lcm_dataflow::Problem::try_delta_solve_with

use lcm_dataflow::{BitMatrix, BitSet, CfgView, Solution, SolveStrategy, SolverScratch};
use lcm_ir::{BlockId, Function};

use crate::analyses::{anticipability_problem, availability_problem, GlobalAnalyses};
use crate::lcm_edge::{derive_placement, later_problem};
use crate::pipeline::PipelineStats;
use crate::predicates::LocalPredicates;
use crate::transform::apply_plan;
use crate::universe::ExprUniverse;
use crate::validate::{validate_optimized, ValidationLevel, ValidationReport};
use crate::{Optimized, PipelineError, PreAlgorithm};

/// The previous revision's analyses, kept warm between edits: everything
/// [`optimize_incremental`] needs to charge only for what changed.
#[derive(Clone, Debug)]
pub struct IncrementalState {
    /// The function the fixpoints below were computed for.
    function: Function,
    /// Its expression universe (delta solving requires it unchanged).
    universe: ExprUniverse,
    /// Local predicates per block.
    local: LocalPredicates,
    /// Availability + anticipability fixpoints and the derived EARLIEST.
    ga: GlobalAnalyses,
    /// The LATER/LATERIN fixpoint (the full solution, not just LATERIN —
    /// the delta solver seeds both matrices).
    later: Solution,
}

/// What the incremental path did for one edit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IncrementalStats {
    /// The CFG shape or expression universe changed, so the whole pipeline
    /// re-ran from scratch (the delta counters below stay zero).
    pub full_fallback: bool,
    /// Blocks whose instructions or terminator differed from the previous
    /// revision.
    pub dirty_blocks: usize,
    /// Blocks re-solved across the three delta solves (availability +
    /// anticipability + LATER) — the "what you paid for" number.
    pub delta_blocks_resolved: usize,
}

/// Everything [`optimize_incremental`] returns: the optimized result, the
/// validator's report, the refreshed state for the next edit, and the
/// delta accounting.
#[derive(Clone, Debug)]
pub struct IncrementalOutcome {
    /// The optimization result, identical to what [`crate::optimize_with`]
    /// would produce for the same input.
    pub optimized: Optimized,
    /// The validation report (fast tier at minimum, unconditionally).
    pub report: ValidationReport,
    /// State to pass as `prev` on the next edit of this function.
    pub state: IncrementalState,
    /// Delta accounting for this edit.
    pub stats: IncrementalStats,
}

impl IncrementalState {
    /// Runs the full lazy-code-motion pipeline on `f` and captures every
    /// fixpoint for later delta solves. The [`Optimized`] result is
    /// identical to [`crate::optimize`] with [`PreAlgorithm::LazyEdge`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Solver`] if any analysis exceeds its
    /// derived sweep bound.
    pub fn fresh(f: &Function) -> Result<(Optimized, IncrementalState), PipelineError> {
        Self::fresh_with(f, SolveStrategy::default(), &mut SolverScratch::new())
    }

    /// [`fresh`](Self::fresh) with an explicit [`SolveStrategy`] and a
    /// caller-owned [`SolverScratch`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Solver`] if any analysis exceeds its
    /// derived sweep bound.
    pub fn fresh_with(
        f: &Function,
        strategy: SolveStrategy,
        scratch: &mut SolverScratch,
    ) -> Result<(Optimized, IncrementalState), PipelineError> {
        let uni = ExprUniverse::of(f);
        let local = LocalPredicates::compute(f, &uni);
        let view = CfgView::new(f);
        let avail =
            availability_problem(f, &uni, &local).try_solve_with(strategy, &view, scratch)?;
        let antic =
            anticipability_problem(f, &uni, &local).try_solve_with(strategy, &view, scratch)?;
        let ga = GlobalAnalyses::derive(f, &uni, &local, avail, antic);
        let later = later_problem(f, &uni, &local, &ga).try_solve_with(strategy, &view, scratch)?;
        let lazy = derive_placement(f, &uni, &local, &ga, later.clone());
        let pipeline_stats = Some(PipelineStats {
            avail: ga.avail.stats,
            antic: ga.antic.stats,
            later: lazy.stats,
        });
        let transform = apply_plan(f, &uni, &local, &lazy.plan);
        let optimized = Optimized {
            function: transform.function.clone(),
            transform,
            plan: lazy.plan,
            input: f.clone(),
            algorithm: PreAlgorithm::LazyEdge,
            pipeline_stats,
            spec: None,
        };
        let state = IncrementalState {
            function: f.clone(),
            universe: uni,
            local,
            ga,
            later,
        };
        Ok((optimized, state))
    }

    /// The function this state's fixpoints belong to.
    pub fn function(&self) -> &Function {
        &self.function
    }

    /// Scrambles the stored fixpoints with seeded noise while keeping
    /// their shape intact, so the next [`optimize_incremental`] seeds its
    /// delta solves from garbage. Exists for fault-injection harnesses
    /// (`lcm-faults`): the unconditional fast validation must catch any
    /// resulting unsound plan — never silently wrong.
    pub fn poison_solutions(&mut self, seed: u64) {
        let mut state = seed | 1;
        scramble_matrix(&mut self.ga.avail.ins, &mut state);
        scramble_matrix(&mut self.ga.avail.outs, &mut state);
        scramble_matrix(&mut self.ga.antic.ins, &mut state);
        scramble_matrix(&mut self.ga.antic.outs, &mut state);
        scramble_matrix(&mut self.later.ins, &mut state);
        scramble_matrix(&mut self.later.outs, &mut state);
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn scramble_matrix(m: &mut BitMatrix, state: &mut u64) {
    for r in 0..m.n_rows() {
        let mut row = BitSet::new(m.nbits());
        for i in 0..m.nbits() {
            if splitmix64(state) & 1 == 1 {
                row.insert(i);
            }
        }
        m.set_row(r, &row);
    }
}

/// True iff `f` has the same CFG shape as `prev`: block count, entry/exit,
/// and every block's successor list (order-sensitive — edge numbering must
/// survive). Block *contents* and labels are free to differ.
fn same_shape(prev: &Function, f: &Function) -> bool {
    prev.num_blocks() == f.num_blocks()
        && prev.entry() == f.entry()
        && prev.exit() == f.exit()
        && f.block_ids().all(|b| {
            prev.block(b)
                .term
                .successors()
                .eq(f.block(b).term.successors())
        })
}

/// [`optimize_incremental_checked`] at the fast validation tier — the
/// daemon's hot path.
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the (possibly stale-seeded) result
/// violates a paper invariant.
pub fn optimize_incremental(
    prev: &IncrementalState,
    f: &Function,
    seed: u64,
) -> Result<IncrementalOutcome, PipelineError> {
    optimize_incremental_checked(prev, f, ValidationLevel::Fast, seed)
}

/// Re-optimizes an edited revision of `prev`'s function, paying only for
/// the blocks the edit can influence, then validates the result.
///
/// The validation floor is [`ValidationLevel::Fast`]: passing
/// [`ValidationLevel::Off`] is silently promoted, because the delta path's
/// soundness argument *is* the validator (cf. translation validation).
/// Shape or universe changes fall back to a from-scratch pipeline —
/// still validated — and report [`IncrementalStats::full_fallback`].
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates a paper invariant.
pub fn optimize_incremental_checked(
    prev: &IncrementalState,
    f: &Function,
    level: ValidationLevel,
    seed: u64,
) -> Result<IncrementalOutcome, PipelineError> {
    optimize_incremental_checked_with(
        prev,
        f,
        level,
        seed,
        SolveStrategy::default(),
        &mut SolverScratch::new(),
    )
}

/// [`optimize_incremental_checked`] with an explicit [`SolveStrategy`] and
/// caller-owned [`SolverScratch`] — the daemon's per-function path.
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates a paper invariant.
pub fn optimize_incremental_checked_with(
    prev: &IncrementalState,
    f: &Function,
    level: ValidationLevel,
    seed: u64,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<IncrementalOutcome, PipelineError> {
    let level = if level == ValidationLevel::Off {
        ValidationLevel::Fast
    } else {
        level
    };
    let uni = ExprUniverse::of(f);
    if !same_shape(&prev.function, f) || uni != prev.universe {
        let (optimized, state) = IncrementalState::fresh_with(f, strategy, scratch)?;
        let report = validate_optimized(f, &optimized, level, seed)?;
        return Ok(IncrementalOutcome {
            optimized,
            report,
            state,
            stats: IncrementalStats {
                full_fallback: true,
                ..IncrementalStats::default()
            },
        });
    }

    // Same shape, same universe: diff block contents. Instruction equality
    // is variable-index equality, which is exactly the granularity the
    // analyses see — an index-identical block has index-identical transfer
    // functions, and any renumbering shows up as an inequality (dirty is
    // conservative, never unsound).
    let dirty: Vec<BlockId> = f
        .block_ids()
        .filter(|&b| {
            let pb = prev.function.block(b);
            let nb = f.block(b);
            pb.instrs != nb.instrs || pb.term != nb.term
        })
        .collect();

    let mut local = prev.local.clone();
    for &b in &dirty {
        local.recompute_block(f, &uni, b);
    }

    let view = CfgView::new(f);
    let (avail, avail_info) = availability_problem(f, &uni, &local).try_delta_solve_with(
        &view,
        scratch,
        &prev.ga.avail,
        &dirty,
    )?;
    let (antic, antic_info) = anticipability_problem(f, &uni, &local).try_delta_solve_with(
        &view,
        scratch,
        &prev.ga.antic,
        &dirty,
    )?;

    // EARLIEST is a per-edge derivation, linear and allocation-light —
    // recompute it wholesale and *diff* it against the previous revision
    // to scope the LATER delta: an edge whose gen set moved invalidates
    // its target, and a moved virtual-entry EARLIEST invalidates the
    // LATER boundary at the entry block.
    let ga = GlobalAnalyses::derive(f, &uni, &local, avail, antic);
    let mut later_dirty = vec![false; f.num_blocks()];
    for &b in &dirty {
        later_dirty[b.index()] = true;
    }
    for (eid, edge) in ga.edges.iter() {
        if ga.earliest[eid.index()] != prev.ga.earliest[eid.index()] {
            later_dirty[edge.to.index()] = true;
        }
    }
    if ga.earliest_entry != prev.ga.earliest_entry {
        later_dirty[f.entry().index()] = true;
    }
    let later_changed: Vec<BlockId> = f.block_ids().filter(|b| later_dirty[b.index()]).collect();

    let (later, later_info) = later_problem(f, &uni, &local, &ga).try_delta_solve_with(
        &view,
        scratch,
        &prev.later,
        &later_changed,
    )?;
    let lazy = derive_placement(f, &uni, &local, &ga, later.clone());
    let pipeline_stats = Some(PipelineStats {
        avail: ga.avail.stats,
        antic: ga.antic.stats,
        later: lazy.stats,
    });
    let transform = apply_plan(f, &uni, &local, &lazy.plan);
    let optimized = Optimized {
        function: transform.function.clone(),
        transform,
        plan: lazy.plan,
        input: f.clone(),
        algorithm: PreAlgorithm::LazyEdge,
        pipeline_stats,
        spec: None,
    };
    let report = validate_optimized(f, &optimized, level, seed)?;
    let stats = IncrementalStats {
        full_fallback: avail_info.full_fallback
            || antic_info.full_fallback
            || later_info.full_fallback,
        dirty_blocks: dirty.len(),
        delta_blocks_resolved: avail_info.blocks_resolved
            + antic_info.blocks_resolved
            + later_info.blocks_resolved,
    };
    let state = IncrementalState {
        function: f.clone(),
        universe: uni,
        local,
        ga,
        later,
    };
    Ok(IncrementalOutcome {
        optimized,
        report,
        state,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;
    use lcm_ir::parse_function;

    fn chain_text(mid: &str) -> String {
        format!(
            "fn chain {{
             entry:
               x = a + b
               jmp b0
             b0:
               t0 = a + b
               jmp b1
             b1:
               {mid}
               jmp b2
             b2:
               t2 = a + b
               jmp end
             end:
               y = a + b
               obs y
               ret
             }}"
        )
    }

    fn assert_same_result(out: &IncrementalOutcome, f2: &Function) {
        let fresh = optimize(f2, PreAlgorithm::LazyEdge).unwrap();
        assert_eq!(
            out.optimized.function.to_string(),
            fresh.function.to_string()
        );
        assert_eq!(
            out.optimized.plan.num_insertions(),
            fresh.plan.num_insertions()
        );
    }

    #[test]
    fn content_edit_matches_fresh_and_visits_fewer_nodes() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        // `t1 = a` keeps the variable interning order (so only b1 is
        // index-unequal) but drops b1's occurrence of a + b.
        let f2 = parse_function(&chain_text("t1 = a")).unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(!out.stats.full_fallback);
        assert_eq!(out.stats.dirty_blocks, 1);
        assert!(out.stats.delta_blocks_resolved > 0);
        assert_same_result(&out, &f2);
        let fresh = optimize(&f2, PreAlgorithm::LazyEdge).unwrap();
        let delta_visits = out.optimized.pipeline_stats.unwrap().total().node_visits;
        let fresh_visits = fresh.pipeline_stats.unwrap().total().node_visits;
        assert!(
            delta_visits < fresh_visits,
            "delta visited {delta_visits}, fresh {fresh_visits}"
        );
    }

    #[test]
    fn identical_revision_is_free_and_identical() {
        let f = parse_function(&chain_text("t1 = a + b")).unwrap();
        let (first, state) = IncrementalState::fresh(&f).unwrap();
        let out = optimize_incremental(&state, &f, 7).unwrap();
        assert_eq!(out.stats.dirty_blocks, 0);
        assert_eq!(out.stats.delta_blocks_resolved, 0);
        assert!(!out.stats.full_fallback);
        assert_eq!(
            out.optimized.function.to_string(),
            first.function.to_string()
        );
    }

    #[test]
    fn shape_edit_falls_back_to_full_solve() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        // b1 now branches back to b0: one extra edge, same block count.
        let f2 = parse_function(
            "fn chain {
             entry:
               x = a + b
               jmp b0
             b0:
               t0 = a + b
               jmp b1
             b1:
               t1 = a + b
               br t0, b2, b0
             b2:
               t2 = a + b
               jmp end
             end:
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(out.stats.full_fallback);
        assert_eq!(out.stats.delta_blocks_resolved, 0);
        assert_same_result(&out, &f2);
    }

    #[test]
    fn universe_change_falls_back_to_full_solve() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        let f2 = parse_function(&chain_text("t1 = a * b")).unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(out.stats.full_fallback);
        assert_same_result(&out, &f2);
    }

    #[test]
    fn validation_level_off_is_promoted_to_fast() {
        let f = parse_function(&chain_text("t1 = a + b")).unwrap();
        let (_, state) = IncrementalState::fresh(&f).unwrap();
        let out = optimize_incremental_checked(&state, &f, ValidationLevel::Off, 7).unwrap();
        assert_eq!(out.report.level, ValidationLevel::Fast);
    }

    #[test]
    fn poisoned_state_never_escapes_silently() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        let f2 = parse_function(&chain_text("a = 1")).unwrap();
        for seed in 0..8 {
            let (_, mut state) = IncrementalState::fresh(&f1).unwrap();
            state.poison_solutions(0xdead_beef ^ seed);
            match optimize_incremental(&state, &f2, 7) {
                Err(PipelineError::Validation(_)) | Err(PipelineError::Solver(_)) => {}
                Err(other) => panic!("unexpected error class: {other}"),
                Ok(out) => {
                    // The scramble happened to leave a sound plan: the
                    // output must then be exactly the fresh result.
                    assert_same_result(&out, &f2);
                }
            }
        }
    }
}
