//! Incremental re-optimization: delta-scoped LCM for edit streams.
//!
//! The full pipeline charges four passes per function per edit. This module
//! keeps the previous fixpoints alive in an [`IncrementalState`] and
//! re-solves only what an edit can actually perturb:
//!
//! 1. **classify** — the edit is mapped onto the retained state. The CFG
//!    shape may be identical, or differ by one recognized cheap edit (a
//!    single block split or a single inserted straight-line block), which
//!    yields an old→new block-index map to permute the retained rows
//!    through. The expression universe may be identical, *appended to*
//!    (retained columns keep their indices; the solver widens rows in
//!    place, new bits starting ⊥ — DESIGN.md §13 proves that exact per
//!    problem direction), or generally re-indexed (retained columns are
//!    rebuilt through an old→new index map). Anything more complex keeps
//!    the strict full-solve fallback contract;
//! 2. **diff + repair** — blocks whose instructions or terminator changed
//!    under the block map are *dirty* and get their local predicates
//!    rescanned ([`LocalPredicates::recompute_block`]); everything else
//!    keeps its rows (remapped when the universe moved, with added
//!    columns' transparency patched by a kill-mask scan);
//! 3. **delta solve** — availability and anticipability re-drain just the
//!    SCC components downstream (forward) or upstream (backward) of the
//!    dirty blocks ([`Problem::try_delta_solve_with`]); EARLIEST is then
//!    re-derived (linear in edges) and LATER re-solved with a changed set
//!    of dirty blocks ∪ targets of edges whose EARLIEST moved relative to
//!    the remapped baseline ∪ the entry block when the virtual-entry
//!    EARLIEST moved;
//! 4. **verify** — the result goes through the fast-tier validator
//!    *unconditionally*, so an unsound delta can never escape.
//!
//! Correctness rests on the framework's monotone-unique-fixpoint property:
//! components not in the directional closure of the change provably keep
//! their old values, so seeding them from the previous solution is exact,
//! not heuristic — and block/column remapping preserves that argument
//! because fixpoints of a gen/kill system are equivariant under relabeling
//! blocks and columns. The seeded edit corpus in `tests/incremental.rs`
//! pins the incremental and fresh pipelines bit-identical across hundreds
//! of content, universe and shape edits.
//!
//! [`Problem::try_delta_solve_with`]: lcm_dataflow::Problem::try_delta_solve_with

use std::time::Instant;

use lcm_dataflow::{
    BitMatrix, BitSet, CfgView, Solution, SolveStats, SolveStrategy, SolverScratch,
};
use lcm_ir::{BlockId, Function, Terminator};

use crate::analyses::{anticipability_problem, availability_problem, GlobalAnalyses};
use crate::lcm_edge::{derive_placement, later_problem};
use crate::pipeline::PipelineStats;
use crate::predicates::LocalPredicates;
use crate::transform::apply_plan;
use crate::universe::ExprUniverse;
use crate::validate::{validate_optimized, ValidationLevel, ValidationReport};
use crate::{Optimized, PipelineError, PreAlgorithm};

/// The previous revision's analyses, kept warm between edits: everything
/// [`optimize_incremental`] needs to charge only for what changed.
#[derive(Clone, Debug)]
pub struct IncrementalState {
    /// The function the fixpoints below were computed for.
    function: Function,
    /// Its expression universe (delta solving requires it unchanged).
    universe: ExprUniverse,
    /// Local predicates per block.
    local: LocalPredicates,
    /// Availability + anticipability fixpoints and the derived EARLIEST.
    ga: GlobalAnalyses,
    /// The LATER/LATERIN fixpoint (the full solution, not just LATERIN —
    /// the delta solver seeds both matrices).
    later: Solution,
}

/// What the incremental path did for one edit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IncrementalStats {
    /// The edit was too complex to map onto the retained state (an edge
    /// retarget, a multi-block reshape, a block removal …), so the whole
    /// pipeline re-ran from scratch (the delta counters below stay zero).
    pub full_fallback: bool,
    /// Blocks whose instructions or terminator differed from the previous
    /// revision (under the block map, when the shape edit was mapped).
    pub dirty_blocks: usize,
    /// Blocks re-solved across the three delta solves (availability +
    /// anticipability + LATER) — the "what you paid for" number.
    pub delta_blocks_resolved: usize,
    /// The expression universe gained at least one expression; retained
    /// rows were widened in place (or column-remapped) instead of falling
    /// back.
    pub universe_grew: bool,
    /// The expression universe lost at least one expression; retained
    /// rows were column-remapped instead of falling back.
    pub universe_shrunk: bool,
    /// The CFG shape changed by one recognized cheap edit (single block
    /// split or single inserted straight-line block); retained rows were
    /// permuted through the old→new block map instead of falling back.
    pub shape_mapped: bool,
}

/// Wall-clock phase split of one incremental call: the analysis phase
/// (diff, predicate repair, remapping, the three fixpoint solves) versus
/// the tail (placement derivation, rewrite, unconditional validation).
/// Timings are measurement metadata and deliberately live outside
/// [`IncrementalStats`], which is `Eq` and participates in determinism
/// comparisons.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseNanos {
    /// Nanoseconds from entry through the last fixpoint solve. The
    /// fallback path cannot split its from-scratch pipeline, so its
    /// rewrite cost lands here too (its tail is validation only).
    pub solve_ns: u64,
    /// Nanoseconds for everything after the solves: placement, rewrite,
    /// and the fast validation tier.
    pub tail_ns: u64,
}

/// Everything [`optimize_incremental`] returns: the optimized result, the
/// validator's report, the refreshed state for the next edit, and the
/// delta accounting.
#[derive(Clone, Debug)]
pub struct IncrementalOutcome {
    /// The optimization result, identical to what [`crate::optimize_with`]
    /// would produce for the same input.
    pub optimized: Optimized,
    /// The validation report (fast tier at minimum, unconditionally).
    pub report: ValidationReport,
    /// State to pass as `prev` on the next edit of this function.
    pub state: IncrementalState,
    /// Delta accounting for this edit.
    pub stats: IncrementalStats,
    /// Wall-clock phase split (solve vs tail) of this call.
    pub phases: PhaseNanos,
}

impl IncrementalState {
    /// Runs the full lazy-code-motion pipeline on `f` and captures every
    /// fixpoint for later delta solves. The [`Optimized`] result is
    /// identical to [`crate::optimize`] with [`PreAlgorithm::LazyEdge`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Solver`] if any analysis exceeds its
    /// derived sweep bound.
    pub fn fresh(f: &Function) -> Result<(Optimized, IncrementalState), PipelineError> {
        Self::fresh_with(f, SolveStrategy::default(), &mut SolverScratch::new())
    }

    /// [`fresh`](Self::fresh) with an explicit [`SolveStrategy`] and a
    /// caller-owned [`SolverScratch`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Solver`] if any analysis exceeds its
    /// derived sweep bound.
    pub fn fresh_with(
        f: &Function,
        strategy: SolveStrategy,
        scratch: &mut SolverScratch,
    ) -> Result<(Optimized, IncrementalState), PipelineError> {
        let uni = ExprUniverse::of(f);
        let local = LocalPredicates::compute(f, &uni);
        let view = CfgView::new(f);
        let avail =
            availability_problem(f, &uni, &local).try_solve_with(strategy, &view, scratch)?;
        let antic =
            anticipability_problem(f, &uni, &local).try_solve_with(strategy, &view, scratch)?;
        let ga = GlobalAnalyses::derive(f, &uni, &local, avail, antic);
        let later = later_problem(f, &uni, &local, &ga).try_solve_with(strategy, &view, scratch)?;
        let lazy = derive_placement(f, &uni, &local, &ga, later.clone());
        let pipeline_stats = Some(PipelineStats {
            avail: ga.avail.stats,
            antic: ga.antic.stats,
            later: lazy.stats,
        });
        let transform = apply_plan(f, &uni, &local, &lazy.plan);
        let optimized = Optimized {
            function: transform.function.clone(),
            transform,
            plan: lazy.plan,
            input: f.clone(),
            algorithm: PreAlgorithm::LazyEdge,
            pipeline_stats,
            spec: None,
        };
        let state = IncrementalState {
            function: f.clone(),
            universe: uni,
            local,
            ga,
            later,
        };
        Ok((optimized, state))
    }

    /// The function this state's fixpoints belong to.
    pub fn function(&self) -> &Function {
        &self.function
    }

    /// Scrambles the stored fixpoints with seeded noise while keeping
    /// their shape intact, so the next [`optimize_incremental`] seeds its
    /// delta solves from garbage. Exists for fault-injection harnesses
    /// (`lcm-faults`): the unconditional fast validation must catch any
    /// resulting unsound plan — never silently wrong.
    pub fn poison_solutions(&mut self, seed: u64) {
        let mut state = seed | 1;
        scramble_matrix(&mut self.ga.avail.ins, &mut state);
        scramble_matrix(&mut self.ga.avail.outs, &mut state);
        scramble_matrix(&mut self.ga.antic.ins, &mut state);
        scramble_matrix(&mut self.ga.antic.outs, &mut state);
        scramble_matrix(&mut self.later.ins, &mut state);
        scramble_matrix(&mut self.later.outs, &mut state);
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn scramble_matrix(m: &mut BitMatrix, state: &mut u64) {
    for r in 0..m.n_rows() {
        let mut row = BitSet::new(m.nbits());
        for i in 0..m.nbits() {
            if splitmix64(state) & 1 == 1 {
                row.insert(i);
            }
        }
        m.set_row(r, &row);
    }
}

/// True iff `f` has the same CFG shape as `prev`: block count, entry/exit,
/// and every block's successor list (order-sensitive — edge numbering must
/// survive). Block *contents* and labels are free to differ.
fn same_shape(prev: &Function, f: &Function) -> bool {
    prev.num_blocks() == f.num_blocks()
        && prev.entry() == f.entry()
        && prev.exit() == f.exit()
        && f.block_ids().all(|b| {
            prev.block(b)
                .term
                .successors()
                .eq(f.block(b).term.successors())
        })
}

/// How the new expression universe relates to the retained one.
enum UniverseDelta {
    /// Bit-identical: retained rows and predicates are column-correct.
    Same,
    /// The old universe is a prefix of the new one: retained rows keep
    /// their column layout and the solver widens them in place.
    Append,
    /// General re-indexing: old column `i` lives at `old_to_new[i]` in the
    /// new universe (or left it); retained rows are rebuilt column by
    /// column.
    Remap { old_to_new: Vec<Option<usize>> },
}

/// Classifies the universe edit and reports `(delta, grew, shrunk)`.
fn universe_delta(old: &ExprUniverse, new: &ExprUniverse) -> (UniverseDelta, bool, bool) {
    if old == new {
        return (UniverseDelta::Same, false, false);
    }
    let old_to_new: Vec<Option<usize>> = old.exprs().iter().map(|&e| new.index_of(e)).collect();
    let mapped = old_to_new.iter().filter(|m| m.is_some()).count();
    let grew = new.len() > mapped;
    let shrunk = mapped < old.len();
    if !shrunk && old_to_new.iter().enumerate().all(|(i, m)| *m == Some(i)) {
        (UniverseDelta::Append, grew, false)
    } else {
        (UniverseDelta::Remap { old_to_new }, grew, shrunk)
    }
}

/// The mask of new-universe columns with no old counterpart — the
/// expressions whose bits must start ⊥ in retained rows and whose
/// transparency needs the kill patch below.
fn added_columns(delta: &UniverseDelta, old_len: usize, new: &ExprUniverse) -> BitSet {
    let mut added = new.empty_set();
    match delta {
        UniverseDelta::Same => {}
        UniverseDelta::Append => {
            for i in old_len..new.len() {
                added.insert(i);
            }
        }
        UniverseDelta::Remap { old_to_new } => {
            added.insert_all();
            for &m in old_to_new.iter().flatten() {
                added.remove(m);
            }
        }
    }
    added
}

/// Carries a retained bit set into the new universe's column layout.
fn remap_set(old: &BitSet, delta: &UniverseDelta, new_len: usize) -> BitSet {
    match delta {
        UniverseDelta::Same => old.clone(),
        UniverseDelta::Append => {
            let mut s = BitSet::new(new_len);
            for b in old.iter() {
                s.insert(b);
            }
            s
        }
        UniverseDelta::Remap { old_to_new } => {
            let mut s = BitSet::new(new_len);
            for b in old.iter() {
                if let Some(nb) = old_to_new[b] {
                    s.insert(nb);
                }
            }
            s
        }
    }
}

/// The old→new block map of a recognized single-block shape edit, plus
/// the one new block with no old counterpart.
struct ShapeMap {
    old_to_new: Vec<BlockId>,
    new_block: BlockId,
}

/// Structural terminator equality under a block relabeling: same variant,
/// same condition operand, successors equal after mapping.
fn term_matches_mapped(old: &Terminator, new: &Terminator, m: &[BlockId]) -> bool {
    match (old, new) {
        (Terminator::Jump(a), Terminator::Jump(b)) => m[a.index()] == *b,
        (
            Terminator::Branch {
                cond: c1,
                then_to: t1,
                else_to: e1,
            },
            Terminator::Branch {
                cond: c2,
                then_to: t2,
                else_to: e2,
            },
        ) => c1 == c2 && m[t1.index()] == *t2 && m[e1.index()] == *e2,
        (Terminator::Exit, Terminator::Exit) => true,
        _ => false,
    }
}

/// Recognizes the two cheap one-block CFG edits by diffing successor
/// structure: a **single block split** (the anchor's tail moved into a new
/// block carrying its old terminator) and a **single inserted
/// straight-line block** on one edge (the anchor redirects exactly one
/// successor to a new block that jumps straight on to the old target).
/// Both leave every other block's terminator structurally intact under
/// the insertion map `m(i) = i` for `i < p`, `i + 1` otherwise.
///
/// Returns `None` for anything else — block removal, multi-block edits,
/// edge retargets, a new entry/exit — which keeps the full-solve fallback.
/// Any consistent map is sound (fixpoints are equivariant under the
/// relabeling and the dirty set re-checks content at mapped indices), so
/// the first insertion position that validates wins.
fn map_shape_edit(prev: &Function, f: &Function) -> Option<ShapeMap> {
    let n_old = prev.num_blocks();
    if f.num_blocks() != n_old + 1 {
        return None;
    }
    'position: for p in 0..f.num_blocks() {
        let m: Vec<BlockId> = (0..n_old)
            .map(|i| BlockId::from_index(if i < p { i } else { i + 1 }))
            .collect();
        let nb = BlockId::from_index(p);
        // Entry and exit must have old counterparts (a new entry or exit
        // block changes the boundary rows in ways the map cannot carry).
        if m[prev.entry().index()] != f.entry() || m[prev.exit().index()] != f.exit() {
            continue;
        }
        // At most one old block — the anchor — may have a structurally
        // different terminator under the map.
        let mut anchor = None;
        for i in 0..n_old {
            let ob = BlockId::from_index(i);
            if !term_matches_mapped(&prev.block(ob).term, &f.block(m[i]).term, &m)
                && anchor.replace(i).is_some()
            {
                continue 'position;
            }
        }
        // No anchor would leave the new block unreachable — not a valid
        // verified function, so this position cannot be the edit.
        let Some(a) = anchor else { continue };
        let old_term = &prev.block(BlockId::from_index(a)).term;
        let new_term = &f.block(m[a]).term;
        // Pattern 1 — block split: the anchor now jumps to the new block,
        // which carries the anchor's original terminator.
        if *new_term == Terminator::Jump(nb) && term_matches_mapped(old_term, &f.block(nb).term, &m)
        {
            return Some(ShapeMap {
                old_to_new: m,
                new_block: nb,
            });
        }
        // Pattern 2 — inserted straight-line block: same terminator with
        // exactly one successor redirected to the new block, which jumps
        // straight on to that successor's old target.
        let cond_ok = match (old_term, new_term) {
            (Terminator::Jump(_), Terminator::Jump(_)) => true,
            (Terminator::Branch { cond: c1, .. }, Terminator::Branch { cond: c2, .. }) => c1 == c2,
            _ => false,
        };
        if cond_ok {
            let old_s: Vec<BlockId> = old_term.successors().map(|s| m[s.index()]).collect();
            let new_s: Vec<BlockId> = new_term.successors().collect();
            if old_s.len() == new_s.len() {
                let diffs: Vec<usize> =
                    (0..old_s.len()).filter(|&k| old_s[k] != new_s[k]).collect();
                if let [k] = diffs[..] {
                    if new_s[k] == nb && f.block(nb).term == Terminator::Jump(old_s[k]) {
                        return Some(ShapeMap {
                            old_to_new: m,
                            new_block: nb,
                        });
                    }
                }
            }
        }
    }
    None
}

/// Rebuilds a retained solution matrix in the new layout: rows permuted
/// through the block map, columns carried by the universe delta. With
/// `Same`/`Append` columns the old layout survives verbatim (word copy;
/// `Append` stays at the old width and rides the solver's in-place
/// widening); `Remap` rebuilds bit by bit. The unmapped new block's row
/// stays zero — it is always dirty, so the solver reinitialises it.
fn remap_matrix(
    src: &BitMatrix,
    map_row: impl Fn(usize) -> usize,
    n_new: usize,
    udelta: &UniverseDelta,
    new_len: usize,
) -> BitMatrix {
    match udelta {
        UniverseDelta::Same | UniverseDelta::Append => {
            let mut m = BitMatrix::new(n_new, src.nbits());
            for r in 0..src.n_rows() {
                m.row_mut(map_row(r)).copy_from_slice(src.row(r));
            }
            m
        }
        UniverseDelta::Remap { old_to_new } => {
            let mut m = BitMatrix::new(n_new, new_len);
            for r in 0..src.n_rows() {
                let nr = map_row(r);
                for bit in src.row_iter(r) {
                    if let Some(nb) = old_to_new[bit] {
                        m.set(nr, nb);
                    }
                }
            }
            m
        }
    }
}

/// [`optimize_incremental_checked`] at the fast validation tier — the
/// daemon's hot path.
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the (possibly stale-seeded) result
/// violates a paper invariant.
pub fn optimize_incremental(
    prev: &IncrementalState,
    f: &Function,
    seed: u64,
) -> Result<IncrementalOutcome, PipelineError> {
    optimize_incremental_checked(prev, f, ValidationLevel::Fast, seed)
}

/// Re-optimizes an edited revision of `prev`'s function, paying only for
/// the blocks the edit can influence, then validates the result.
///
/// The validation floor is [`ValidationLevel::Fast`]: passing
/// [`ValidationLevel::Off`] is silently promoted, because the delta path's
/// soundness argument *is* the validator (cf. translation validation).
/// Universe changes are remapped (growth rides the solver's in-place row
/// widening) and the two recognized one-block shape edits are carried by
/// an old→new block map; anything more complex falls back to a
/// from-scratch pipeline — still validated — and reports
/// [`IncrementalStats::full_fallback`].
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates a paper invariant.
pub fn optimize_incremental_checked(
    prev: &IncrementalState,
    f: &Function,
    level: ValidationLevel,
    seed: u64,
) -> Result<IncrementalOutcome, PipelineError> {
    optimize_incremental_checked_with(
        prev,
        f,
        level,
        seed,
        SolveStrategy::default(),
        &mut SolverScratch::new(),
    )
}

/// [`optimize_incremental_checked`] with an explicit [`SolveStrategy`] and
/// caller-owned [`SolverScratch`] — the daemon's per-function path.
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates a paper invariant.
pub fn optimize_incremental_checked_with(
    prev: &IncrementalState,
    f: &Function,
    level: ValidationLevel,
    seed: u64,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<IncrementalOutcome, PipelineError> {
    let t_start = Instant::now();
    let level = if level == ValidationLevel::Off {
        ValidationLevel::Fast
    } else {
        level
    };
    let uni = ExprUniverse::of(f);

    // Classify the shape edit: identity, one recognized cheap edit (block
    // map), or too complex — the strict fallback contract.
    let shape_map: Option<ShapeMap> = if same_shape(&prev.function, f) {
        None
    } else {
        match map_shape_edit(&prev.function, f) {
            Some(sm) => Some(sm),
            None => {
                let (optimized, state) = IncrementalState::fresh_with(f, strategy, scratch)?;
                let solve_ns = t_start.elapsed().as_nanos() as u64;
                let report = validate_optimized(f, &optimized, level, seed)?;
                let tail_ns = (t_start.elapsed().as_nanos() as u64).saturating_sub(solve_ns);
                return Ok(IncrementalOutcome {
                    optimized,
                    report,
                    state,
                    stats: IncrementalStats {
                        full_fallback: true,
                        ..IncrementalStats::default()
                    },
                    phases: PhaseNanos { solve_ns, tail_ns },
                });
            }
        }
    };
    let shape_mapped = shape_map.is_some();
    let (udelta, universe_grew, universe_shrunk) = universe_delta(&prev.universe, &uni);
    let map_block = |i: usize| shape_map.as_ref().map_or(i, |sm| sm.old_to_new[i].index());
    let n_old = prev.function.num_blocks();
    let n_new = f.num_blocks();

    // Diff block contents under the block map. Instruction equality is
    // variable-index equality, which is exactly the granularity the
    // analyses see — an index-identical block has index-identical transfer
    // functions, and any renumbering shows up as an inequality (dirty is
    // conservative, never unsound). The new block of a mapped shape edit
    // has no old counterpart and is always dirty.
    let mut is_dirty = vec![false; n_new];
    for i in 0..n_old {
        let ob = BlockId::from_index(i);
        let nb = BlockId::from_index(map_block(i));
        let term_same = match &shape_map {
            None => prev.function.block(ob).term == f.block(nb).term,
            Some(sm) => term_matches_mapped(
                &prev.function.block(ob).term,
                &f.block(nb).term,
                &sm.old_to_new,
            ),
        };
        if prev.function.block(ob).instrs != f.block(nb).instrs || !term_same {
            is_dirty[nb.index()] = true;
        }
    }
    if let Some(sm) = &shape_map {
        is_dirty[sm.new_block.index()] = true;
    }
    let dirty: Vec<BlockId> = f.block_ids().filter(|b| is_dirty[b.index()]).collect();

    // Local predicates: verbatim clone in the common case, otherwise carried
    // through both maps. Added columns are antloc/comp-zero at every
    // non-dirty block — a new expression can only enter through an
    // index-changed (hence dirty) block — but default transparent, so each
    // retained block's kills are re-scanned restricted to the added mask.
    let mut local = match (&shape_map, &udelta) {
        (None, UniverseDelta::Same) => prev.local.clone(),
        _ => {
            let added = added_columns(&udelta, prev.universe.len(), &uni);
            let mut lp = LocalPredicates {
                antloc: vec![uni.empty_set(); n_new],
                comp: vec![uni.empty_set(); n_new],
                transp: vec![uni.full_set(); n_new],
                kill: vec![uni.empty_set(); n_new],
            };
            let mut killed = uni.empty_set();
            for i in 0..n_old {
                let j = map_block(i);
                if is_dirty[j] {
                    continue; // recomputed below
                }
                lp.antloc[j] = remap_set(&prev.local.antloc[i], &udelta, uni.len());
                lp.comp[j] = remap_set(&prev.local.comp[i], &udelta, uni.len());
                let mut t = remap_set(&prev.local.transp[i], &udelta, uni.len());
                if !added.is_empty() {
                    t.union_with(&added);
                    killed.clear();
                    for instr in &f.block(BlockId::from_index(j)).instrs {
                        if let Some(dst) = instr.def() {
                            if let Some(mask) = uni.kill_mask(dst) {
                                killed.union_with(mask);
                            }
                        }
                        if instr.kills_memory() {
                            killed.union_with(uni.mem_mask());
                        }
                    }
                    killed.intersect_with(&added);
                    t.difference_with(&killed);
                }
                let mut k = t.clone();
                k.complement();
                lp.transp[j] = t;
                lp.kill[j] = k;
            }
            lp
        }
    };
    for &b in &dirty {
        local.recompute_block(f, &uni, b);
    }

    // Retained solutions: borrowed verbatim when the layout survives
    // (identity shape × Same/Append columns — Append rides the solver's
    // in-place row widening), otherwise rebuilt through both maps.
    let needs_matrix_remap = shape_mapped || matches!(udelta, UniverseDelta::Remap { .. });
    let remapped: Option<(Solution, Solution, Solution)> = if needs_matrix_remap {
        let remap_solution = |s: &Solution| Solution {
            ins: remap_matrix(&s.ins, map_block, n_new, &udelta, uni.len()),
            outs: remap_matrix(&s.outs, map_block, n_new, &udelta, uni.len()),
            stats: SolveStats::new(),
        };
        Some((
            remap_solution(&prev.ga.avail),
            remap_solution(&prev.ga.antic),
            remap_solution(&prev.later),
        ))
    } else {
        None
    };
    let (prev_avail, prev_antic, prev_later) = match &remapped {
        Some((a, n, l)) => (a, n, l),
        None => (&prev.ga.avail, &prev.ga.antic, &prev.later),
    };

    let view = CfgView::new(f);
    let (avail, avail_info) = availability_problem(f, &uni, &local)
        .try_delta_solve_with(&view, scratch, prev_avail, &dirty)?;
    let (antic, antic_info) = anticipability_problem(f, &uni, &local)
        .try_delta_solve_with(&view, scratch, prev_antic, &dirty)?;

    // EARLIEST is a per-edge derivation, linear and allocation-light —
    // recompute it wholesale and *diff* it against the previous revision
    // (carried through both maps) to scope the LATER delta: an edge whose
    // gen set moved invalidates its target, a moved virtual-entry EARLIEST
    // invalidates the LATER boundary at the entry block, and an edge with
    // no old counterpart (the new block's edges, the anchor's edges)
    // invalidates its target unconditionally.
    let ga = GlobalAnalyses::derive(f, &uni, &local, avail, antic);
    let mut later_dirty = vec![false; n_new];
    for &b in &dirty {
        later_dirty[b.index()] = true;
    }
    if !shape_mapped && matches!(udelta, UniverseDelta::Same) {
        for (eid, edge) in ga.edges.iter() {
            if ga.earliest[eid.index()] != prev.ga.earliest[eid.index()] {
                later_dirty[edge.to.index()] = true;
            }
        }
        if ga.earliest_entry != prev.ga.earliest_entry {
            later_dirty[f.entry().index()] = true;
        }
    } else {
        let mut pre_of_new: Vec<Option<BlockId>> = vec![None; n_new];
        for i in 0..n_old {
            pre_of_new[map_block(i)] = Some(BlockId::from_index(i));
        }
        for (eid, edge) in ga.edges.iter() {
            let mapped_old = pre_of_new[edge.from.index()].and_then(|o| {
                let term_ok = match &shape_map {
                    None => prev.function.block(o).term == f.block(edge.from).term,
                    Some(sm) => term_matches_mapped(
                        &prev.function.block(o).term,
                        &f.block(edge.from).term,
                        &sm.old_to_new,
                    ),
                };
                if !term_ok {
                    return None; // the anchor's edges count as changed
                }
                prev.ga
                    .edges
                    .outgoing(o)
                    .get(edge.succ_index as usize)
                    .copied()
            });
            let changed = match mapped_old {
                None => true,
                Some(old_eid) => {
                    ga.earliest[eid.index()]
                        != remap_set(&prev.ga.earliest[old_eid.index()], &udelta, uni.len())
                }
            };
            if changed {
                later_dirty[edge.to.index()] = true;
            }
        }
        if ga.earliest_entry != remap_set(&prev.ga.earliest_entry, &udelta, uni.len()) {
            later_dirty[f.entry().index()] = true;
        }
    }
    let later_changed: Vec<BlockId> = f.block_ids().filter(|b| later_dirty[b.index()]).collect();

    let (later, later_info) = later_problem(f, &uni, &local, &ga).try_delta_solve_with(
        &view,
        scratch,
        prev_later,
        &later_changed,
    )?;
    let solve_ns = t_start.elapsed().as_nanos() as u64;
    let lazy = derive_placement(f, &uni, &local, &ga, later.clone());
    let pipeline_stats = Some(PipelineStats {
        avail: ga.avail.stats,
        antic: ga.antic.stats,
        later: lazy.stats,
    });
    let transform = apply_plan(f, &uni, &local, &lazy.plan);
    let optimized = Optimized {
        function: transform.function.clone(),
        transform,
        plan: lazy.plan,
        input: f.clone(),
        algorithm: PreAlgorithm::LazyEdge,
        pipeline_stats,
        spec: None,
    };
    let report = validate_optimized(f, &optimized, level, seed)?;
    let tail_ns = (t_start.elapsed().as_nanos() as u64).saturating_sub(solve_ns);
    let stats = IncrementalStats {
        full_fallback: avail_info.full_fallback
            || antic_info.full_fallback
            || later_info.full_fallback,
        dirty_blocks: dirty.len(),
        delta_blocks_resolved: avail_info.blocks_resolved
            + antic_info.blocks_resolved
            + later_info.blocks_resolved,
        universe_grew,
        universe_shrunk,
        shape_mapped,
    };
    let state = IncrementalState {
        function: f.clone(),
        universe: uni,
        local,
        ga,
        later,
    };
    Ok(IncrementalOutcome {
        optimized,
        report,
        state,
        stats,
        phases: PhaseNanos { solve_ns, tail_ns },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;
    use lcm_ir::parse_function;

    fn chain_text(mid: &str) -> String {
        format!(
            "fn chain {{
             entry:
               x = a + b
               jmp b0
             b0:
               t0 = a + b
               jmp b1
             b1:
               {mid}
               jmp b2
             b2:
               t2 = a + b
               jmp end
             end:
               y = a + b
               obs y
               ret
             }}"
        )
    }

    fn assert_same_result(out: &IncrementalOutcome, f2: &Function) {
        let fresh = optimize(f2, PreAlgorithm::LazyEdge).unwrap();
        assert_eq!(
            out.optimized.function.to_string(),
            fresh.function.to_string()
        );
        assert_eq!(
            out.optimized.plan.num_insertions(),
            fresh.plan.num_insertions()
        );
    }

    #[test]
    fn content_edit_matches_fresh_and_visits_fewer_nodes() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        // `t1 = a` keeps the variable interning order (so only b1 is
        // index-unequal) but drops b1's occurrence of a + b.
        let f2 = parse_function(&chain_text("t1 = a")).unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(!out.stats.full_fallback);
        assert_eq!(out.stats.dirty_blocks, 1);
        assert!(out.stats.delta_blocks_resolved > 0);
        assert_same_result(&out, &f2);
        let fresh = optimize(&f2, PreAlgorithm::LazyEdge).unwrap();
        let delta_visits = out.optimized.pipeline_stats.unwrap().total().node_visits;
        let fresh_visits = fresh.pipeline_stats.unwrap().total().node_visits;
        assert!(
            delta_visits < fresh_visits,
            "delta visited {delta_visits}, fresh {fresh_visits}"
        );
    }

    #[test]
    fn identical_revision_is_free_and_identical() {
        let f = parse_function(&chain_text("t1 = a + b")).unwrap();
        let (first, state) = IncrementalState::fresh(&f).unwrap();
        let out = optimize_incremental(&state, &f, 7).unwrap();
        assert_eq!(out.stats.dirty_blocks, 0);
        assert_eq!(out.stats.delta_blocks_resolved, 0);
        assert!(!out.stats.full_fallback);
        assert_eq!(
            out.optimized.function.to_string(),
            first.function.to_string()
        );
    }

    #[test]
    fn shape_edit_falls_back_to_full_solve() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        // b1 now branches back to b0: one extra edge, same block count.
        let f2 = parse_function(
            "fn chain {
             entry:
               x = a + b
               jmp b0
             b0:
               t0 = a + b
               jmp b1
             b1:
               t1 = a + b
               br t0, b2, b0
             b2:
               t2 = a + b
               jmp end
             end:
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(out.stats.full_fallback);
        assert_eq!(out.stats.delta_blocks_resolved, 0);
        assert_same_result(&out, &f2);
    }

    #[test]
    fn universe_growth_stays_on_the_delta_path() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        // `a * b` appends one expression to the universe: retained rows
        // widen in place instead of falling back.
        let f2 = parse_function(&chain_text("t1 = a * b")).unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(!out.stats.full_fallback);
        assert!(out.stats.universe_grew);
        assert!(!out.stats.universe_shrunk && !out.stats.shape_mapped);
        assert_eq!(out.stats.dirty_blocks, 1);
        assert_same_result(&out, &f2);
    }

    #[test]
    fn universe_shrink_remaps_and_stays_on_the_delta_path() {
        let f1 = parse_function(&chain_text("t1 = a * b")).unwrap();
        // Dropping the only `a * b` occurrence shrinks the universe; the
        // retained columns are remapped (here: a prefix) rather than
        // forcing a full solve.
        let f2 = parse_function(&chain_text("t1 = a")).unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(!out.stats.full_fallback);
        assert!(out.stats.universe_shrunk);
        assert!(!out.stats.universe_grew);
        assert_same_result(&out, &f2);
    }

    #[test]
    fn inserted_block_is_mapped_and_stays_on_the_delta_path() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        // A straight-line block inserted on the b1 → b2 edge: recognized
        // by the shape mapper, rows permuted, no fallback.
        let f2 = parse_function(
            "fn chain {
             entry:
               x = a + b
               jmp b0
             b0:
               t0 = a + b
               jmp b1
             b1:
               t1 = a + b
               jmp hop
             hop:
               jmp b2
             b2:
               t2 = a + b
               jmp end
             end:
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        let (_, state) = IncrementalState::fresh(&f1).unwrap();
        let out = optimize_incremental(&state, &f2, 7).unwrap();
        assert!(!out.stats.full_fallback);
        assert!(out.stats.shape_mapped);
        assert_same_result(&out, &f2);
    }

    #[test]
    fn validation_level_off_is_promoted_to_fast() {
        let f = parse_function(&chain_text("t1 = a + b")).unwrap();
        let (_, state) = IncrementalState::fresh(&f).unwrap();
        let out = optimize_incremental_checked(&state, &f, ValidationLevel::Off, 7).unwrap();
        assert_eq!(out.report.level, ValidationLevel::Fast);
    }

    #[test]
    fn poisoned_state_never_escapes_silently() {
        let f1 = parse_function(&chain_text("t1 = a + b")).unwrap();
        let f2 = parse_function(&chain_text("a = 1")).unwrap();
        for seed in 0..8 {
            let (_, mut state) = IncrementalState::fresh(&f1).unwrap();
            state.poison_solutions(0xdead_beef ^ seed);
            match optimize_incremental(&state, &f2, 7) {
                Err(PipelineError::Validation(_)) | Err(PipelineError::Solver(_)) => {}
                Err(other) => panic!("unexpected error class: {other}"),
                Ok(out) => {
                    // The scramble happened to leave a sound plan: the
                    // output must then be exactly the fresh result.
                    assert_same_result(&out, &f2);
                }
            }
        }
    }
}
