//! The fused LCM pipeline: one CFG view, shared local predicates, and the
//! change-driven worklist solver for all analyses.
//!
//! The paper's complexity claim is that lazy code motion costs no more than
//! a constant number of *unidirectional bit-vector* analyses. Running each
//! analysis as an isolated [`Problem`](lcm_dataflow::Problem) solve leaves
//! easy savings on the table: every solve re-derives the depth-first
//! orderings and adjacency tables, and the round-robin strategy revisits
//! every block each sweep whether or not anything changed. [`lcm`] fuses
//! the pipeline instead:
//!
//! 1. a [`CfgView`] (reverse postorder, postorder, predecessors,
//!    successors) is computed **once** and shared by every solve;
//! 2. the local predicates (`TRANSP`, `COMP`, `ANTLOC`) are computed for
//!    the whole expression universe in a single packed-word sweep per block
//!    and reused by every analysis;
//! 3. each analysis runs on the SCC-condensed priority worklist solver
//!    ([`Problem::solve_with`](lcm_dataflow::Problem::solve_with)), which
//!    drains each strongly connected component to fixpoint before advancing
//!    and only re-enqueues the neighbors of blocks whose output actually
//!    changed (word-granular dirty detection), against one reused
//!    [`SolverScratch`](lcm_dataflow::SolverScratch) arena;
//! 4. the per-analysis [`SolveStats`] are collected into a
//!    [`PipelineStats`] so the cost is observable from the CLI
//!    (`lcmopt --emit stats`) and the experiment harness.
//!
//! The fixpoints — and therefore the insert/delete sets — are identical to
//! the per-analysis round-robin path ([`GlobalAnalyses::compute`] +
//! [`lazy_edge_plan`](crate::lazy_edge_plan)); the equivalence is asserted
//! over the whole generator corpus in `tests/solver_equivalence.rs`.

use std::fmt;

use lcm_dataflow::{CfgView, SolveStats, SolveStrategy, SolverDiverged, SolverScratch};
use lcm_ir::Function;

use crate::analyses::GlobalAnalyses;
use crate::lcm_edge::{lazy_edge_plan_with, LazyEdgeResult};
use crate::predicates::LocalPredicates;
use crate::universe::ExprUniverse;

/// Per-analysis solver statistics for one [`lcm`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PipelineStats {
    /// Availability (up-safety) solve.
    pub avail: SolveStats,
    /// Anticipability (down-safety) solve.
    pub antic: SolveStats,
    /// Delay (LATER/LATERIN) solve.
    pub later: SolveStats,
}

impl PipelineStats {
    /// The sum over all analyses.
    pub fn total(&self) -> SolveStats {
        let mut t = self.avail;
        t += self.antic;
        t += self.later;
        t
    }
}

/// Merging, for aggregating many functions' solves (the batch driver).
impl std::ops::AddAssign for PipelineStats {
    fn add_assign(&mut self, rhs: PipelineStats) {
        self.avail += rhs.avail;
        self.antic += rhs.antic;
        self.later += rhs.later;
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "avail: {}; antic: {}; later: {}",
            self.avail, self.antic, self.later
        )
    }
}

/// Everything the fused pipeline computes for one function.
#[derive(Clone, Debug)]
pub struct LcmPipeline {
    /// The candidate expression universe.
    pub universe: ExprUniverse,
    /// The per-block local predicates, computed once and shared.
    pub local: LocalPredicates,
    /// Availability, anticipability and earliestness.
    pub analyses: GlobalAnalyses,
    /// The delay analysis and the final insert/delete placement.
    pub lazy: LazyEdgeResult,
    /// Per-analysis solver statistics.
    pub stats: PipelineStats,
}

/// Runs the full fused LCM analysis pipeline over `f` (see the module
/// documentation). This is the default path [`optimize`](crate::optimize)
/// takes for [`PreAlgorithm::LazyEdge`](crate::PreAlgorithm::LazyEdge).
///
/// # Errors
///
/// Returns [`SolverDiverged`] if any of the three analyses exceeds its
/// derived sweep bound — impossible for well-formed transfer functions,
/// and exactly the symptom of corrupted ones.
pub fn lcm(f: &Function) -> Result<LcmPipeline, SolverDiverged> {
    lcm_in(f, &mut SolverScratch::new())
}

/// [`lcm`] with a caller-owned [`SolverScratch`], the batch driver's path:
/// held across functions, the scratch amortizes all per-solve state to O(1)
/// heap allocations per function (two `Solution` export clones per solve).
/// Uses the default [`SolveStrategy::SccPriority`] solver.
///
/// # Errors
///
/// Returns [`SolverDiverged`] if any of the three analyses exceeds its
/// budget.
pub fn lcm_in(f: &Function, scratch: &mut SolverScratch) -> Result<LcmPipeline, SolverDiverged> {
    lcm_with(f, SolveStrategy::default(), scratch)
}

/// [`lcm_in`] with an explicit [`SolveStrategy`]. All three solves
/// (availability, anticipability, LATER) share `scratch` and one
/// [`CfgView`]; every strategy reaches the same fixpoints.
///
/// # Errors
///
/// Returns [`SolverDiverged`] if any of the three analyses exceeds its
/// budget.
pub fn lcm_with(
    f: &Function,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<LcmPipeline, SolverDiverged> {
    let view = CfgView::new(f);
    let universe = ExprUniverse::of(f);
    let local = LocalPredicates::compute(f, &universe);
    let analyses = GlobalAnalyses::compute_with(f, &universe, &local, &view, strategy, scratch)?;
    let lazy = lazy_edge_plan_with(f, &universe, &local, &analyses, &view, strategy, scratch)?;
    let stats = PipelineStats {
        avail: analyses.avail.stats,
        antic: analyses.antic.stats,
        later: lazy.stats,
    };
    Ok(LcmPipeline {
        universe,
        local,
        analyses,
        lazy,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcm_edge::lazy_edge_plan;
    use lcm_ir::parse_function;

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn fused_matches_seed_path() {
        let f = parse_function(DIAMOND).unwrap();
        let p = lcm(&f).unwrap();
        let ga = GlobalAnalyses::compute(&f, &p.universe, &p.local).unwrap();
        let lazy = lazy_edge_plan(&f, &p.universe, &p.local, &ga).unwrap();
        assert_eq!(p.analyses.avail.ins, ga.avail.ins);
        assert_eq!(p.analyses.antic.ins, ga.antic.ins);
        assert_eq!(p.analyses.earliest, ga.earliest);
        assert_eq!(p.lazy.laterin, lazy.laterin);
        assert_eq!(p.lazy.plan.edge_inserts, lazy.plan.edge_inserts);
        assert_eq!(p.lazy.delete, lazy.delete);
    }

    #[test]
    fn stats_cover_all_three_analyses() {
        let f = parse_function(DIAMOND).unwrap();
        let p = lcm(&f).unwrap();
        // Worklist solves leave `iterations` at zero but always visit nodes.
        for s in [p.stats.avail, p.stats.antic, p.stats.later] {
            assert_eq!(s.iterations, 0);
            assert!(s.node_visits > 0);
            assert!(s.word_ops > 0);
        }
        let total = p.stats.total();
        assert_eq!(
            total.node_visits,
            p.stats.avail.node_visits + p.stats.antic.node_visits + p.stats.later.node_visits
        );
        assert_eq!(
            total.word_ops,
            p.stats.avail.word_ops + p.stats.antic.word_ops + p.stats.later.word_ops
        );
    }
}
