//! Paper-invariant validation of PRE transformations.
//!
//! Every algorithm in this crate claims the same three things about its
//! output: it is structurally well formed, it only inserted computations
//! at admissible (down-safe or up-safe) points, and it never made any
//! execution evaluate a candidate expression more often than before. This
//! module re-checks those claims *from the outside*, against the actual
//! plan and the actual rewritten function — so a corrupted fixpoint, a
//! dropped insertion or a mis-targeted edge split is caught at the pass
//! boundary instead of surfacing as silent miscompilation.
//!
//! Two tiers (selected by [`ValidationLevel`]):
//!
//! * **Fast** — purely static, a small constant number of extra bit-vector
//!   passes: structural [`verify`](lcm_ir::verify) of the output, plan
//!   safety (`INSERT ⊆ ANTIN ∪ AVOUT` at every insertion point, the
//!   paper's admissibility criterion), definite assignment of every
//!   introduced temporary, insertion bookkeeping (the number of `t := e`
//!   definitions materialised in the output must equal what the rewriter
//!   reported), and for the edge formulation `INSERT ⊆ LATER` against a
//!   freshly recomputed delay fixpoint.
//! * **Full** — adds seeded differential execution: the original and
//!   transformed functions run on a deterministic sample of inputs and
//!   must produce identical observation traces, and the transformed run
//!   must never evaluate the candidate expressions more often (the
//!   computational-optimality direction that is checkable per input).
//!
//! The checks are deliberately redundant with the algorithms' own
//! derivations — that redundancy is the point; `crates/faults` mutation
//! tests assert that every seeded fault class trips at least one check.

use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use lcm_interp::{observational_equivalence, run, Inputs};
use lcm_ir::{verify, Function, Instr, Rvalue, VerifyError};

use crate::analyses::GlobalAnalyses;
use crate::lcm_edge::later_problem;
use crate::predicates::LocalPredicates;
use crate::safety::{
    check_definite_assignment, check_plan_safety, check_speculative_plan_safety, SafetyError,
};
use crate::transform::PlacementPlan;
use crate::universe::ExprUniverse;
use crate::Optimized;

/// How much validation to run after a PRE pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ValidationLevel {
    /// No validation.
    Off,
    /// Static checks only: structural verify, plan safety, definite
    /// assignment, insertion bookkeeping, delay-invariant re-check.
    #[default]
    Fast,
    /// Fast plus seeded differential execution and per-input eval-count
    /// non-regression.
    Full,
}

impl ValidationLevel {
    /// Stable names, matching the CLI's `--validate=` values.
    pub fn name(self) -> &'static str {
        match self {
            ValidationLevel::Off => "off",
            ValidationLevel::Fast => "fast",
            ValidationLevel::Full => "full",
        }
    }
}

impl fmt::Display for ValidationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ValidationLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ValidationLevel::Off),
            "fast" => Ok(ValidationLevel::Fast),
            "full" => Ok(ValidationLevel::Full),
            other => Err(format!(
                "unknown validation level `{other}` (expected off, fast or full)"
            )),
        }
    }
}

/// A violation of a paper invariant found by [`validate_optimized`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// An analysis re-run by the validator itself failed to converge —
    /// its transfer functions are corrupted.
    AnalysisDiverged(lcm_dataflow::SolverDiverged),
    /// The transformed function fails structural verification.
    Structural {
        /// Which function failed: `"input"` or `"output"`.
        stage: &'static str,
        /// The underlying structural error.
        error: VerifyError,
    },
    /// An insertion sits at a point that is neither down-safe nor up-safe
    /// (inadmissible: some path would evaluate an expression it never
    /// evaluated before).
    UnsafeInsertion(SafetyError),
    /// An introduced temporary may be read before it is assigned on some
    /// path of the transformed function.
    MaybeUnassigned(SafetyError),
    /// The output contains a different number of temp-defining
    /// computations than the rewriter reported — an insertion was dropped
    /// or duplicated between planning and materialisation.
    InsertionBookkeeping {
        /// `stats.insertions + stats.retained_defs`.
        expected: usize,
        /// Temp-defining `t := e` instructions actually present.
        found: usize,
    },
    /// An edge-formulation insertion lies outside the recomputed `LATER`
    /// set — it is (at best) admissible but provably not lifetime-optimal,
    /// and in practice the signature of a corrupted delay fixpoint.
    InsertionNotInLater {
        /// Description of the insertion point.
        at: String,
        /// Universe index of the offending expression.
        expr: usize,
    },
    /// A block containing a memory write (`store` or non-pure `call`) is
    /// recorded as transparent for some load — the alias-aware kill was
    /// dropped, so a planner could hoist a load across a may-alias store.
    MemoryKillDropped {
        /// Label of the offending block.
        block: String,
        /// Universe index of the load expression that should be killed.
        expr: usize,
    },
    /// Differential execution found an input on which the original and
    /// transformed functions observe different traces.
    NotObservationallyEquivalent {
        /// Index of the offending sampled input (deterministic per seed).
        input_index: usize,
    },
    /// On some sampled input the transformed function evaluated the
    /// candidate expressions more often than the original — a violation
    /// of computational optimality (and of plain profitability).
    EvalRegression {
        /// Index of the offending sampled input.
        input_index: usize,
        /// Candidate evaluations in the original run.
        before: u64,
        /// Candidate evaluations in the transformed run.
        after: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::AnalysisDiverged(e) => write!(f, "validator re-run: {e}"),
            ValidationError::Structural { stage, error } => {
                write!(f, "{stage} function is structurally invalid: {error}")
            }
            ValidationError::UnsafeInsertion(e) => write!(f, "inadmissible plan: {e}"),
            ValidationError::MaybeUnassigned(e) => {
                write!(f, "transformed function: {e}")
            }
            ValidationError::InsertionBookkeeping { expected, found } => write!(
                f,
                "insertion bookkeeping mismatch: rewriter reported {expected} \
                 temp-defining computations, output contains {found}"
            ),
            ValidationError::InsertionNotInLater { at, expr } => write!(
                f,
                "insertion of expression #{expr} at {at} lies outside the \
                 recomputed LATER set"
            ),
            ValidationError::MemoryKillDropped { block, expr } => write!(
                f,
                "memory kill dropped: block `{block}` writes memory but is \
                 recorded transparent for load expression #{expr}"
            ),
            ValidationError::NotObservationallyEquivalent { input_index } => write!(
                f,
                "observation traces differ on sampled input #{input_index}"
            ),
            ValidationError::EvalRegression {
                input_index,
                before,
                after,
            } => write!(
                f,
                "candidate evaluations regressed on sampled input \
                 #{input_index}: {before} before, {after} after"
            ),
        }
    }
}

impl Error for ValidationError {}

/// What [`validate_optimized`] checked and how long it took.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ValidationReport {
    /// The tier that ran.
    pub level: ValidationLevel,
    /// Individual checks executed.
    pub checks_run: usize,
    /// Wall-clock nanoseconds spent in the static (fast-tier) checks.
    pub static_nanos: u128,
    /// Wall-clock nanoseconds spent in differential execution (full tier;
    /// zero under fast).
    pub differential_nanos: u128,
    /// Sampled inputs executed differentially (full tier; zero under fast).
    pub inputs_sampled: usize,
}

/// Deterministic splitmix64 step — the validator's only source of
/// "randomness", so a failing seed reproduces exactly.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds one sampled input assignment for `f`'s symbols. Values are kept
/// small so branches flip and loop trip counts stay bounded. Public so
/// drivers can replay the validator's exact input distribution (e.g. the
/// dynamic-evaluation lines of `lcmopt --emit stats`).
pub fn sample_inputs(f: &Function, state: &mut u64) -> Inputs {
    f.symbols
        .iter()
        .map(|(_, name)| {
            let v = (splitmix64(state) % 17) as i64 - 8;
            (name.to_string(), v)
        })
        .collect()
}

/// Checks the edge formulation's placement against a freshly recomputed
/// delay fixpoint: every planned insertion must lie in `LATER` (edges) or
/// `ANTIN[entry]` (the virtual entry edge).
fn check_later_invariant(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
    plan: &PlacementPlan,
) -> Result<(), ValidationError> {
    let solution = later_problem(f, uni, local, ga)
        .try_solve()
        .map_err(ValidationError::AnalysisDiverged)?;
    for (eid, edge) in plan.edges.iter() {
        // LATER(i,j) = EARLIEST(i,j) ∪ solver out of i.
        let mut later = solution.outs.row_set(edge.from.index());
        later.union_with(&ga.earliest[eid.index()]);
        for e in plan.edge_inserts[eid.index()].iter() {
            if !later.contains(e) {
                return Err(ValidationError::InsertionNotInLater {
                    at: edge.to_string(),
                    expr: e,
                });
            }
        }
    }
    for e in plan.entry_insert.iter() {
        if !ga.antic.ins.contains(f.entry().index(), e) {
            return Err(ValidationError::InsertionNotInLater {
                at: "entry".to_string(),
                expr: e,
            });
        }
    }
    Ok(())
}

/// Independently re-derives the alias-aware memory-kill rule: every block
/// containing a `store` or a non-pure `call` must be opaque (`¬TRANSP`,
/// `KILL`) to every `Mem` expression of the universe.
///
/// Both sides are re-derived by *direct pattern match* — deliberately not
/// via [`Instr::kills_memory`] or [`ExprUniverse::mem_mask`] — so a bug in
/// that shared plumbing (or a corrupted predicate table) cannot hide from
/// its own reflection. The intrinsic purity table is duplicated here as an
/// exhaustive match for the same reason: adding a `Callee` forces this
/// check to take a position on it.
pub fn check_memory_kills(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Result<(), ValidationError> {
    let mem_indices: Vec<usize> = uni
        .iter()
        .filter(|(_, e)| matches!(e, lcm_ir::Expr::Mem(_)))
        .map(|(i, _)| i)
        .collect();
    if mem_indices.is_empty() {
        return Ok(());
    }
    for b in f.block_ids() {
        let writes_memory = f.block(b).instrs.iter().any(|i| match i {
            Instr::Store { .. } => true,
            Instr::Call { callee, .. } => match callee {
                lcm_ir::Callee::Min | lcm_ir::Callee::Max => false,
                lcm_ir::Callee::Poke | lcm_ir::Callee::Bump => true,
            },
            Instr::Assign { .. } | Instr::Observe(_) => false,
        });
        if !writes_memory {
            continue;
        }
        for &expr in &mem_indices {
            if local.transp[b.index()].contains(expr) || !local.kill[b.index()].contains(expr) {
                return Err(ValidationError::MemoryKillDropped {
                    block: f.block(b).name.clone(),
                    expr,
                });
            }
        }
    }
    Ok(())
}

/// Counts the `t := e` computations in the output that define one of the
/// rewriter's temporaries — must equal `insertions + retained_defs`.
fn count_temp_defs(out: &Function, temps: &[lcm_ir::Var]) -> usize {
    let mut is_temp = vec![false; out.symbols.len()];
    for &t in temps {
        is_temp[t.index()] = true;
    }
    out.block_ids()
        .flat_map(|b| out.block(b).instrs.iter())
        .filter(|i| matches!(i, Instr::Assign { dst, rv: Rvalue::Expr(_) } if is_temp[dst.index()]))
        .count()
}

/// Validates one [`Optimized`] result against the paper invariants (see
/// the module docs for the tiers). `orig` is the function the whole pass
/// was asked to optimize — for the node algorithms this differs from
/// `opt.input`, which is the critical-edge-split copy the plan targets.
///
/// The `seed` feeds the full tier's input sampling only; fast-tier checks
/// are deterministic regardless.
///
/// # Errors
///
/// Returns the first invariant violation found.
pub fn validate_optimized(
    orig: &Function,
    opt: &Optimized,
    level: ValidationLevel,
    seed: u64,
) -> Result<ValidationReport, ValidationError> {
    let mut report = ValidationReport {
        level,
        ..ValidationReport::default()
    };
    if level == ValidationLevel::Off {
        return Ok(report);
    }

    let start = Instant::now();

    // 1. Structural re-verification of both ends of the pass.
    verify(orig).map_err(|error| ValidationError::Structural {
        stage: "input",
        error,
    })?;
    verify(&opt.function).map_err(|error| ValidationError::Structural {
        stage: "output",
        error,
    })?;
    report.checks_run += 2;

    // 2. Admissibility: every insertion point of the plan is safe in the
    //    function the plan was computed for. Speculative plans get the
    //    relaxed rule: classically unsafe points are tolerated exactly
    //    when the inserted expression is provably side-effect-free.
    let speculative = opt.plan.algorithm == "spec";
    let uni = ExprUniverse::of(&opt.input);
    let local = LocalPredicates::compute(&opt.input, &uni);
    let ga = GlobalAnalyses::compute(&opt.input, &uni, &local)
        .map_err(ValidationError::AnalysisDiverged)?;
    if speculative {
        check_speculative_plan_safety(&opt.input, &uni, &local, &ga, &opt.plan)
            .map_err(ValidationError::UnsafeInsertion)?;
    } else {
        check_plan_safety(&opt.input, &uni, &local, &ga, &opt.plan)
            .map_err(ValidationError::UnsafeInsertion)?;
    }
    report.checks_run += 1;

    // 2b. Memory kills survived predicate computation: blocks that write
    //     memory are opaque to every load, re-derived independently of the
    //     mask plumbing the analyses share.
    check_memory_kills(&opt.input, &uni, &local)?;
    report.checks_run += 1;

    // 3. Lifetime-optimality direction for the edge formulation: the
    //    insertions must lie inside the recomputed LATER sets.
    if opt.plan.algorithm == "lcm-edge" {
        check_later_invariant(&opt.input, &uni, &local, &ga, &opt.plan)?;
        report.checks_run += 1;
    }

    // 4. No introduced temporary is ever read uninitialised.
    let temps = opt.transform.temp_vars();
    check_definite_assignment(&opt.function, &temps).map_err(ValidationError::MaybeUnassigned)?;
    report.checks_run += 1;

    // 5. Insertion bookkeeping: what the rewriter claims to have
    //    materialised is what the output actually contains.
    let expected = opt.transform.stats.insertions + opt.transform.stats.retained_defs;
    let found = count_temp_defs(&opt.function, &temps);
    if expected != found {
        return Err(ValidationError::InsertionBookkeeping { expected, found });
    }
    report.checks_run += 1;
    report.static_nanos = start.elapsed().as_nanos();

    if level != ValidationLevel::Full {
        return Ok(report);
    }

    // 6. Seeded differential execution + eval-count non-regression.
    let diff_start = Instant::now();
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let fuel = 4_000 + 64 * orig.num_instrs() as u64;
    let candidates = uni.exprs();
    for input_index in 0..4 {
        let inputs = sample_inputs(orig, &mut state);
        report.inputs_sampled += 1;
        match observational_equivalence(orig, &opt.function, &inputs, fuel) {
            Ok(true) => {}
            Ok(false) => {
                return Err(ValidationError::NotObservationallyEquivalent { input_index });
            }
            // Both sides out of fuel with agreeing prefixes: indeterminate,
            // not a violation. A disagreeing prefix is a real divergence.
            Err(d) if d.prefix_agrees => {}
            Err(_) => {
                return Err(ValidationError::NotObservationallyEquivalent { input_index });
            }
        }
        // Per-input eval-count non-regression. Speculative placement is
        // exempt: it deliberately adds evaluations to paths the profile
        // says are cold, and an unweighted sampled input can land on one.
        // Its guarantee is *weighted* (profile-relative), checked by the
        // planner and the differential suite instead.
        if !speculative {
            let before_run = run(orig, &inputs, fuel);
            let after_run = run(&opt.function, &inputs, fuel);
            if before_run.completed() && after_run.completed() {
                let before = before_run.total_evals_of(candidates);
                let after = after_run.total_evals_of(candidates);
                if after > before {
                    return Err(ValidationError::EvalRegression {
                        input_index,
                        before,
                        after,
                    });
                }
            }
            report.checks_run += 1;
        }
        report.checks_run += 1;
    }
    report.differential_nanos = diff_start.elapsed().as_nanos();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, PreAlgorithm};
    use lcm_ir::parse_function;

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn levels_parse_and_display_round_trip() {
        for level in [
            ValidationLevel::Off,
            ValidationLevel::Fast,
            ValidationLevel::Full,
        ] {
            assert_eq!(level.name().parse::<ValidationLevel>().unwrap(), level);
        }
        assert!("medium".parse::<ValidationLevel>().is_err());
        assert_eq!(ValidationLevel::default(), ValidationLevel::Fast);
    }

    #[test]
    fn every_algorithm_validates_clean_on_the_diamond() {
        let f = parse_function(DIAMOND).unwrap();
        for alg in PreAlgorithm::ALL {
            let opt = optimize(&f, alg).unwrap();
            let report = validate_optimized(&f, &opt, ValidationLevel::Full, 7)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            assert_eq!(report.level, ValidationLevel::Full);
            assert!(report.checks_run >= 6, "{}", alg.name());
            assert_eq!(report.inputs_sampled, 4);
        }
    }

    #[test]
    fn off_level_checks_nothing() {
        let f = parse_function(DIAMOND).unwrap();
        let opt = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        let report = validate_optimized(&f, &opt, ValidationLevel::Off, 0).unwrap();
        assert_eq!(report.checks_run, 0);
    }

    #[test]
    fn dropped_insertion_is_caught_by_bookkeeping() {
        let f = parse_function(DIAMOND).unwrap();
        let mut opt = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        // Surgically remove the inserted t := a + b from the output.
        let temps = opt.transform.temp_vars();
        for b in opt.function.block_ids().collect::<Vec<_>>() {
            let instrs = &mut opt.function.block_mut(b).instrs;
            instrs.retain(|i| {
                !matches!(i, Instr::Assign { dst, rv: Rvalue::Expr(_) }
                          if temps.contains(dst))
            });
        }
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        // Either the definite-assignment check or the bookkeeping count
        // fires first; both identify the dropped insertion.
        assert!(matches!(
            err,
            ValidationError::MaybeUnassigned(_) | ValidationError::InsertionBookkeeping { .. }
        ));
    }

    #[test]
    fn unsafe_plan_bit_is_caught_by_safety_check() {
        let f = parse_function(
            "fn p {
             entry:
               br c, l, r
             l:
               a = 1
               x = a + b
               jmp j
             r:
               jmp j
             j:
               obs x
               ret
             }",
        )
        .unwrap();
        let mut opt = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        // Flip a plan bit toward the unsafe virtual entry edge.
        opt.plan.entry_insert.insert(0);
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(matches!(err, ValidationError::UnsafeInsertion(_)));
        assert!(err.to_string().contains("inadmissible"));
    }

    #[test]
    fn speculative_plans_validate_under_the_relaxed_rule() {
        use crate::{optimize_speculative, EdgeWeights};
        // A guarded use inside a hot loop: speculation hoists `a + b` to
        // the entry, a classically unsafe point.
        let f = parse_function(
            "fn g {
             entry:
               jmp head
             head:
               br p, body, done
             body:
               br q, compute, skip
             compute:
               x = a + b
               obs x
               jmp latch
             skip:
               jmp latch
             latch:
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        let profile = lcm_ir::Profile::from_weights(&f, &[1, 9, 1, 6, 3, 6, 3, 9]);
        let w = EdgeWeights::from_profile(&f, &profile).unwrap();
        let opt = optimize_speculative(&f, &w).unwrap();
        assert_eq!(opt.spec.unwrap().speculated, 1);
        assert!(!opt.plan.entry_insert.is_empty());
        // The classical rule rejects this plan; the speculative tier
        // accepts it because `a + b` is side-effect-free.
        let report = validate_optimized(&f, &opt, ValidationLevel::Full, 5).unwrap();
        assert_eq!(report.inputs_sampled, 4);
    }

    #[test]
    fn side_effecting_speculation_is_rejected() {
        let f = parse_function(
            "fn g {
             entry:
               br q, compute, skip
             compute:
               x = a / b
               obs x
               jmp done
             skip:
               jmp done
             done:
               ret
             }",
        )
        .unwrap();
        let mut opt = optimize(&f, PreAlgorithm::Speculative).unwrap();
        // Forge what the planner refuses to produce: a speculative entry
        // insertion of the faultable `a / b`.
        opt.plan.entry_insert.insert(0);
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(matches!(err, ValidationError::UnsafeInsertion(_)));
        assert!(err.to_string().contains("side-effect-free"));
    }

    #[test]
    fn memory_kill_rule_fires_on_corrupted_predicates() {
        let f = parse_function(
            "fn m {
             entry:
               x = load p
               store q, 1
               y = load p
               obs x
               obs y
               ret
             }",
        )
        .unwrap();
        let uni = ExprUniverse::of(&f);
        let mut local = LocalPredicates::compute(&f, &uni);
        // Honest predicates pass.
        check_memory_kills(&f, &uni, &local).unwrap();
        // Re-insert the dropped transparency bit for the load (universe
        // index 0) in the storing block, as a broken mask sweep would.
        let b = f.entry().index();
        let load = uni
            .index_of(lcm_ir::Expr::Mem(lcm_ir::Operand::Var(
                f.symbols.get("p").unwrap(),
            )))
            .unwrap();
        local.transp[b].insert(load);
        local.kill[b].remove(load);
        let err = check_memory_kills(&f, &uni, &local).unwrap_err();
        assert!(
            matches!(err, ValidationError::MemoryKillDropped { ref block, expr }
                     if block == "entry" && expr == load)
        );
        assert!(err.to_string().contains("memory kill dropped"));
    }

    #[test]
    fn memory_functions_validate_clean_end_to_end() {
        let f = parse_function(
            "fn m {
             entry:
               i = 3
               jmp head
             head:
               x = load p
               obs x
               br i, body, done
             body:
               i = i - 1
               jmp head
             done:
               call poke(p, 9)
               y = load p
               obs y
               ret
             }",
        )
        .unwrap();
        for alg in PreAlgorithm::ALL {
            let opt = optimize(&f, alg).unwrap();
            validate_optimized(&f, &opt, ValidationLevel::Full, 11)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
    }

    #[test]
    fn trace_change_is_caught_by_differential_execution() {
        let f = parse_function(DIAMOND).unwrap();
        let mut opt = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
        // Corrupt the observed value in the output only: every static
        // check still passes, but the trace differs on every input.
        let join = opt.function.block_by_name("join").unwrap();
        for instr in &mut opt.function.block_mut(join).instrs {
            if matches!(instr, Instr::Observe(_)) {
                *instr = Instr::Observe(lcm_ir::Operand::Const(123_456_789));
            }
        }
        let err = validate_optimized(&f, &opt, ValidationLevel::Full, 3).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::NotObservationallyEquivalent { .. }
        ));
    }
}
