//! Lazy Code Motion, node-insertion formulation — the original PLDI'92
//! presentation, lifted from statement nodes to basic blocks.
//!
//! The paper inserts initialisations *before nodes* of a flow graph without
//! critical edges. Lifting statement nodes to basic blocks means every
//! block has **two** insertion points — its entry (`N`) and its exit (`X`)
//! — so each predicate of the paper's cascade comes in an entry/exit pair
//! (this is the block form the authors give in the companion TOPLAS'94
//! paper, and the shape of the Drechsler–Stadel variation):
//!
//! ```text
//! N-EARLIEST[b] = ANTIN[b]  ∩ (b = entry ∪ ⋃_p (¬AVOUT[p] ∩ ¬ANTOUT[p]))
//! X-EARLIEST[b] = ANTOUT[b] ∩ ¬AVOUT[b] ∩ (¬TRANSP[b] ∪ ¬ANTIN[b])
//!
//! N-DELAY[b] = N-EARLIEST[b] ∪ (b ≠ entry ∩ ⋂_p X-DELAY[p])
//! X-DELAY[b] = X-EARLIEST[b] ∪ (N-DELAY[b] − ANTLOC[b])
//!
//! N-LATEST[b] = N-DELAY[b] ∩ ANTLOC[b]
//! X-LATEST[b] = X-DELAY[b] ∩ ¬⋂_{s∈succ} N-DELAY[s]
//!
//! X-ISOLATED[b] = ⋂_{s∈succ} ( N-LATEST[s]
//!                   ∪ (¬ANTLOC[s] ∩ (¬TRANSP[s] ∪ X-LATEST[s] ∪ X-ISOLATED[s])) )
//! N-ISOLATED[b] = ¬TRANSP[b] ∪ X-LATEST[b] ∪ X-ISOLATED[b]
//!
//! N-INSERT[b] = N-LATEST[b] ∩ ¬N-ISOLATED[b]
//! X-INSERT[b] = X-LATEST[b] ∩ ¬X-ISOLATED[b]
//! ```
//!
//! Reading guide: *earliest* marks the safe points a busy transformation
//! would use; *delay* postpones them down every path until a use
//! (`ANTLOC`) or a merge that is not pending on all other inflows; *latest*
//! is where postponement must stop; *isolated* prunes insertions whose
//! value could only feed the single occurrence directly at them (or
//! nothing) — motion that gains no computation and only lengthens a live
//! range. Inserting `t := e` directly before a block whose occurrence of
//! `e` is upward-exposed does not recompute anything: the shared rewriter
//! turns the pair into the retained-definition form `t := e; v := t`.
//!
//! The node and edge formulations eliminate exactly the same dynamic
//! computations (property-tested); the placements differ only in
//! representation (block entry/exit vs. edge).

use lcm_dataflow::{BitSet, CfgView, SolveStats, SolverDiverged};
use lcm_ir::{graph, Function};

use crate::analyses::GlobalAnalyses;
use crate::predicates::LocalPredicates;
use crate::transform::PlacementPlan;
use crate::universe::ExprUniverse;

/// All node-formulation predicate tables (exposed for the paper's figures)
/// plus the resulting placement plan.
#[derive(Clone, Debug)]
pub struct LazyNodeResult {
    /// The function the plan applies to: `f` with critical edges split.
    pub function: Function,
    /// Universe of the (unchanged) candidate expressions.
    pub universe: ExprUniverse,
    /// Local predicates of the split function.
    pub local: LocalPredicates,
    /// `N-EARLIEST[b]` / `X-EARLIEST[b]`.
    pub earliest: Vec<(BitSet, BitSet)>,
    /// `N-DELAY[b]` / `X-DELAY[b]`.
    pub delay: Vec<(BitSet, BitSet)>,
    /// `N-LATEST[b]` / `X-LATEST[b]`.
    pub latest: Vec<(BitSet, BitSet)>,
    /// `N-ISOLATED[b]` / `X-ISOLATED[b]`.
    pub isolated: Vec<(BitSet, BitSet)>,
    /// The final placement (block-top and block-bottom insertions).
    pub plan: PlacementPlan,
    /// Number of critical edges that were split.
    pub edges_split: usize,
    /// Cost counters of the DELAY fixpoint sweep, in the same currency as
    /// the framework solver's [`SolveStats`].
    pub delay_stats: SolveStats,
    /// Cost counters of the ISOLATED fixpoint sweep.
    pub isolated_stats: SolveStats,
}

/// Runs the node-insertion LCM cascade on (a critical-edge-split clone of)
/// `f`. With `with_isolation` false the ISOLATED pruning is skipped — the
/// paper's "ALCM" ablation, still computationally optimal but littering
/// count-neutral insertions.
///
/// The hand-rolled DELAY and ISOLATED greatest fixpoints strictly shrink
/// their tracked bit tables on every accepted sweep, so a lattice-height
/// sweep bound (`bits + 2`) detects corrupted, non-converging predicate
/// tables as [`SolverDiverged`] instead of spinning.
pub fn lazy_node_plan(
    f: &Function,
    with_isolation: bool,
) -> Result<LazyNodeResult, SolverDiverged> {
    let mut split = f.clone();
    let outcome = graph::split_critical_edges(&mut split);
    let universe = ExprUniverse::of(&split);
    let local = LocalPredicates::compute(&split, &universe);
    // One shared view: orderings and adjacency for the framework solves
    // (inside `compute_in`) and for the hand-rolled DELAY/ISOLATED sweeps.
    let view = CfgView::new(&split);
    let ga = GlobalAnalyses::compute_in(&split, &universe, &local, &view)?;
    let n = split.num_blocks();
    let entry = split.entry();
    let words = universe.len().div_ceil(64) as u64;

    // EARLIEST.
    let mut earliest: Vec<(BitSet, BitSet)> = Vec::with_capacity(n);
    for b in split.block_ids() {
        let bi = b.index();
        let n_e = {
            let mut cond = universe.empty_set();
            if b == entry {
                cond = universe.full_set();
            } else {
                for &p in view.preds(b) {
                    // ¬AVOUT[p] ∩ ¬ANTOUT[p]
                    let pi = p.index();
                    let mut c = ga.avail.outs.row_set(pi);
                    c.union_with_row(ga.antic.outs.row(pi));
                    c.complement();
                    cond.union_with(&c);
                }
            }
            let mut e = ga.antic.ins.row_set(bi);
            e.intersect_with(&cond);
            e
        };
        let x_e = {
            // ANTOUT ∩ ¬AVOUT ∩ ¬(TRANSP ∩ ANTIN)
            let mut blockable = local.transp[bi].clone();
            blockable.intersect_with_row(ga.antic.ins.row(bi));
            blockable.union_with_row(ga.avail.outs.row(bi));
            blockable.complement();
            let mut e = ga.antic.outs.row_set(bi);
            e.intersect_with(&blockable);
            e
        };
        earliest.push((n_e, x_e));
    }

    // DELAY (mutual N/X fixpoint, greatest solution, forward sweeps).
    let delay_bound = 2 * n * universe.len() + 2;
    let mut delay_stats = SolveStats::new();
    let mut delay: Vec<(BitSet, BitSet)> = vec![(universe.full_set(), universe.full_set()); n];
    delay[entry.index()].0 = earliest[entry.index()].0.clone();
    loop {
        if delay_stats.iterations >= delay_bound {
            return Err(SolverDiverged {
                analysis: "lcm-node-delay",
                sweeps: delay_bound,
            });
        }
        delay_stats.iterations += 1;
        let mut changed = false;
        for &b in view.rpo() {
            delay_stats.node_visits += 1;
            let bi = b.index();
            if b != entry {
                let mut acc = universe.full_set();
                for &p in view.preds(b) {
                    acc.intersect_with(&delay[p.index()].1);
                    delay_stats.word_ops += words;
                }
                acc.union_with(&earliest[bi].0);
                delay_stats.word_ops += 2 * words; // union + compare
                if acc != delay[bi].0 {
                    delay[bi].0 = acc;
                    changed = true;
                }
            }
            let mut x = delay[bi].0.clone();
            x.difference_with(&local.antloc[bi]);
            x.union_with(&earliest[bi].1);
            delay_stats.word_ops += 3 * words; // difference + union + compare
            if x != delay[bi].1 {
                delay[bi].1 = x;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // LATEST.
    let mut latest: Vec<(BitSet, BitSet)> = Vec::with_capacity(n);
    for b in split.block_ids() {
        let bi = b.index();
        let mut n_l = delay[bi].0.clone();
        n_l.intersect_with(&local.antloc[bi]);
        let mut all_succs = universe.full_set();
        for &s in view.succs(b) {
            all_succs.intersect_with(&delay[s.index()].0);
        }
        all_succs.complement();
        let mut x_l = delay[bi].1.clone();
        x_l.intersect_with(&all_succs);
        latest.push((n_l, x_l));
    }

    // ISOLATED (backward greatest fixpoint for the X side; N side derived).
    let isolated_bound = n * universe.len() + 2;
    let mut isolated_stats = SolveStats::new();
    let mut x_iso = vec![universe.full_set(); n];
    loop {
        if isolated_stats.iterations >= isolated_bound {
            return Err(SolverDiverged {
                analysis: "lcm-node-isolated",
                sweeps: isolated_bound,
            });
        }
        isolated_stats.iterations += 1;
        let mut changed = false;
        for &b in view.postorder() {
            isolated_stats.node_visits += 1;
            let bi = b.index();
            let mut acc = universe.full_set();
            for &s in view.succs(b) {
                let si = s.index();
                // ¬ANTLOC[s] ∩ (¬TRANSP[s] ∪ X-LATEST[s] ∪ X-ISO[s])
                let mut through = local.transp[si].clone();
                through.complement();
                through.union_with(&latest[si].1);
                through.union_with(&x_iso[si]);
                through.difference_with(&local.antloc[si]);
                // ∪ N-LATEST[s]
                through.union_with(&latest[si].0);
                acc.intersect_with(&through);
                isolated_stats.word_ops += 6 * words;
            }
            isolated_stats.word_ops += words; // compare
            if acc != x_iso[bi] {
                x_iso[bi] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let isolated: Vec<(BitSet, BitSet)> = split
        .block_ids()
        .map(|b| {
            let bi = b.index();
            // N-ISOLATED = ¬TRANSP ∪ X-LATEST ∪ X-ISOLATED
            let mut n_iso = local.transp[bi].clone();
            n_iso.complement();
            n_iso.union_with(&latest[bi].1);
            n_iso.union_with(&x_iso[bi]);
            (n_iso, x_iso[bi].clone())
        })
        .collect();

    // INSERT.
    let algorithm = if with_isolation {
        "lcm-node"
    } else {
        "alcm-node"
    };
    let mut plan = PlacementPlan::empty(algorithm, &split, &universe);
    for b in split.block_ids() {
        let bi = b.index();
        let mut top = latest[bi].0.clone();
        let mut bottom = latest[bi].1.clone();
        if with_isolation {
            let mut keep_n = isolated[bi].0.clone();
            keep_n.complement();
            top.intersect_with(&keep_n);
            let mut keep_x = isolated[bi].1.clone();
            keep_x.complement();
            bottom.intersect_with(&keep_x);
        }
        plan.block_top_inserts[bi] = top;
        plan.block_bottom_inserts[bi] = bottom;
    }

    Ok(LazyNodeResult {
        function: split,
        universe,
        local,
        earliest,
        delay,
        latest,
        isolated,
        plan,
        edges_split: outcome.len(),
        delay_stats,
        isolated_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::apply_plan;
    use lcm_ir::parse_function;

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn node_lcm_covers_both_arms() {
        let f = parse_function(DIAMOND).unwrap();
        let res = lazy_node_plan(&f, true).unwrap();
        let g = &res.function;
        let l = g.block_by_name("l").unwrap();
        let r = g.block_by_name("r").unwrap();
        let join = g.block_by_name("join").unwrap();
        // Delay floods both arms from the entry; it stops at l's use (entry
        // side) and at the r→join boundary (exit side).
        assert!(res.latest[l.index()].0.contains(0));
        assert!(res.latest[r.index()].1.contains(0));
        assert!(!res.latest[join.index()].0.contains(0));
        assert!(res.plan.block_top_inserts[l.index()].contains(0));
        assert!(res.plan.block_bottom_inserts[r.index()].contains(0));
        // Rewriting yields one computation per path and none at the join.
        let result = apply_plan(g, &res.universe, &res.local, &res.plan);
        lcm_ir::verify(&result.function).unwrap();
        let t = &result.function;
        let count = |name: &str| {
            let b = t.block_by_name(name).unwrap();
            t.block(b)
                .exprs()
                .filter(|e| t.display_expr(*e) == "a + b")
                .count()
        };
        assert_eq!(count("l"), 1);
        assert_eq!(count("r"), 1);
        assert_eq!(count("join"), 0);
    }

    #[test]
    fn exit_insertion_lands_after_an_in_block_kill() {
        // p kills c and a redundant use follows in m; the only optimal
        // placement is at p's *exit* — unreachable for a top-only
        // formulation, which is why the block form needs X-insertions.
        let f = parse_function(
            "fn x {
             entry:
               d = a < c
               br e, m, p
             p:
               c = a < c
               obs c
               jmp m
             m:
               f = a < c
               obs f
               ret
             }",
        )
        .unwrap();
        let res = lazy_node_plan(&f, true).unwrap();
        let g = &res.function;
        let idx = res
            .universe
            .iter()
            .find(|(_, e)| g.display_expr(*e) == "a < c")
            .map(|(i, _)| i)
            .unwrap();
        let p = g.block_by_name("p").unwrap();
        let m = g.block_by_name("m").unwrap();
        assert!(res.earliest[p.index()].1.contains(idx), "X-EARLIEST at p");
        assert!(res.plan.block_bottom_inserts[p.index()].contains(idx));
        assert!(!res.plan.block_top_inserts[m.index()].contains(idx));
        let result = apply_plan(g, &res.universe, &res.local, &res.plan);
        lcm_ir::verify(&result.function).unwrap();
        // m no longer computes a < c.
        let t = &result.function;
        let tm = t.block_by_name("m").unwrap();
        assert!(t.block(tm).exprs().all(|e| t.display_expr(e) != "a < c"));
    }

    #[test]
    fn isolation_prunes_useless_insertions() {
        // A lone computation with no redundancy: ALCM still inserts in
        // front of it (useless motion); isolation suppresses that.
        let f = parse_function(
            "fn iso {
             entry:
               jmp work
             work:
               x = a + b
               obs x
               ret
             }",
        )
        .unwrap();
        let with = lazy_node_plan(&f, true).unwrap();
        assert_eq!(with.plan.num_insertions(), 0);
        let without = lazy_node_plan(&f, false).unwrap();
        assert_eq!(without.plan.num_insertions(), 1, "ALCM inserts blindly");
        // Even under ALCM the rewriter produces a correct program.
        let r = apply_plan(
            &without.function,
            &without.universe,
            &without.local,
            &without.plan,
        );
        lcm_ir::verify(&r.function).unwrap();
    }

    #[test]
    fn splits_critical_edges_first() {
        let f = parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               x = a + b
               br d, head, done
             done:
               obs x
               ret
             }",
        )
        .unwrap();
        let res = lazy_node_plan(&f, true).unwrap();
        assert!(res.edges_split > 0);
        assert!(lcm_ir::graph::critical_edges(&res.function).is_empty());
        lcm_ir::verify(&res.function).unwrap();
    }

    #[test]
    fn isolation_suppresses_insertion_into_a_killing_block() {
        // Both arms empty, so delay reaches the join, whose occurrence is
        // followed by a kill and a later recomputation: the insertion in
        // front of the join would feed exactly one occurrence —
        // count-neutral motion the isolation pruning rejects.
        let f = parse_function(
            "fn k2 {
             entry:
               br c, l, r
             l:
               jmp join
             r:
               jmp join
             join:
               y = a + b
               a = 1
               jmp after
             after:
               z = a + b
               obs z
               ret
             }",
        )
        .unwrap();
        let res = lazy_node_plan(&f, true).unwrap();
        let g = &res.function;
        let join = g.block_by_name("join").unwrap();
        let idx = res
            .universe
            .iter()
            .find(|(_, e)| g.display_expr(*e) == "a + b")
            .map(|(i, _)| i)
            .unwrap();
        assert!(res.latest[join.index()].0.contains(idx));
        assert!(res.isolated[join.index()].0.contains(idx));
        assert!(!res.plan.block_top_inserts[join.index()].contains(idx));
        // ALCM (no isolation) would insert there.
        let alcm = lazy_node_plan(&f, false).unwrap();
        let ajoin = alcm.function.block_by_name("join").unwrap();
        assert!(alcm.plan.block_top_inserts[ajoin.index()].contains(idx));
    }
}
