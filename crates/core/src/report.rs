//! Human-readable reports of analysis results: the predicate tables the
//! paper presents as figures, as plain-text strings.
//!
//! Used by the `experiments` binary and the examples; exposed publicly so
//! downstream users can inspect what the analyses concluded about their
//! functions.
//!
//! ```
//! use lcm_core::{report, ExprUniverse, GlobalAnalyses, LocalPredicates};
//! use lcm_ir::parse_function;
//!
//! let f = parse_function("fn r {\nentry:\n  x = a + b\n  ret\n}")?;
//! let uni = ExprUniverse::of(&f);
//! let local = LocalPredicates::compute(&f, &uni);
//! let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
//! let table = report::safety_table(&f, &uni, &local, &ga);
//! assert!(table.contains("ANTLOC"));
//! assert!(table.contains("a + b"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt::Write as _;

use lcm_ir::Function;

use crate::analyses::GlobalAnalyses;
use crate::lcm_node::LazyNodeResult;
use crate::pipeline::PipelineStats;
use crate::predicates::LocalPredicates;
use crate::transform::PlacementPlan;
use crate::universe::ExprUniverse;

/// Renders the local-predicate and safety-analysis table (the paper's
/// availability/anticipability figure): one row per block with
/// `ANTLOC / COMP / TRANSP`, `AVIN / AVOUT` and `ANTIN / ANTOUT`.
pub fn safety_table(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} | {:<44} | {:<28} | {:<28}",
        "block", "ANTLOC / COMP / TRANSP", "AVIN / AVOUT", "ANTIN / ANTOUT"
    );
    for b in f.block_ids() {
        let i = b.index();
        let _ = writeln!(
            out,
            "{:<12} | {:<44} | {:<28} | {:<28}",
            f.block(b).name,
            format!(
                "{} / {} / {}",
                uni.display_set(f, &local.antloc[i]),
                uni.display_set(f, &local.comp[i]),
                uni.display_set(f, &local.transp[i])
            ),
            format!(
                "{} / {}",
                uni.display_set(f, &ga.avail.ins.row_set(i)),
                uni.display_set(f, &ga.avail.outs.row_set(i))
            ),
            format!(
                "{} / {}",
                uni.display_set(f, &ga.antic.ins.row_set(i)),
                uni.display_set(f, &ga.antic.outs.row_set(i))
            ),
        );
    }
    out
}

/// Renders the non-empty EARLIEST sets, one line per edge (plus the
/// virtual entry edge).
pub fn earliest_report(f: &Function, uni: &ExprUniverse, ga: &GlobalAnalyses) -> String {
    let mut out = String::new();
    if !ga.earliest_entry.is_empty() {
        let _ = writeln!(
            out,
            "EARLIEST(virtual entry edge) = {}",
            uni.display_set(f, &ga.earliest_entry)
        );
    }
    for (eid, edge) in ga.edges.iter() {
        let s = &ga.earliest[eid.index()];
        if !s.is_empty() {
            let _ = writeln!(
                out,
                "EARLIEST({} -> {}) = {}",
                f.block(edge.from).name,
                f.block(edge.to).name,
                uni.display_set(f, s)
            );
        }
    }
    out
}

/// Renders the node-formulation cascade table (`N/X` pairs of DELAY,
/// LATEST and ISOLATED per block) — the paper's lazy-analysis figure.
pub fn node_cascade_table(res: &LazyNodeResult) -> String {
    let g = &res.function;
    let uni = &res.universe;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} | {:<34} | {:<34} | {:<34}",
        "block", "N-DELAY / X-DELAY", "N-LATEST / X-LATEST", "N-ISOLATED / X-ISOLATED"
    );
    for b in g.block_ids() {
        let i = b.index();
        let _ = writeln!(
            out,
            "{:<12} | {:<34} | {:<34} | {:<34}",
            g.block(b).name,
            format!(
                "{} / {}",
                uni.display_set(g, &res.delay[i].0),
                uni.display_set(g, &res.delay[i].1)
            ),
            format!(
                "{} / {}",
                uni.display_set(g, &res.latest[i].0),
                uni.display_set(g, &res.latest[i].1)
            ),
            format!(
                "{} / {}",
                uni.display_set(g, &res.isolated[i].0),
                uni.display_set(g, &res.isolated[i].1)
            ),
        );
    }
    out
}

/// Renders a placement plan's non-empty insertion sets, one line per
/// location.
pub fn plan_report(f: &Function, uni: &ExprUniverse, plan: &PlacementPlan) -> String {
    let mut out = String::new();
    if !plan.entry_insert.is_empty() {
        let _ = writeln!(
            out,
            "INSERT at entry: {}",
            uni.display_set(f, &plan.entry_insert)
        );
    }
    for (eid, edge) in plan.edges.iter() {
        let s = &plan.edge_inserts[eid.index()];
        if !s.is_empty() {
            let _ = writeln!(
                out,
                "INSERT on {} -> {}: {}",
                f.block(edge.from).name,
                f.block(edge.to).name,
                uni.display_set(f, s)
            );
        }
    }
    for b in f.block_ids() {
        let bi = b.index();
        if !plan.block_top_inserts[bi].is_empty() {
            let _ = writeln!(
                out,
                "INSERT at top of {}: {}",
                f.block(b).name,
                uni.display_set(f, &plan.block_top_inserts[bi])
            );
        }
        if !plan.block_bottom_inserts[bi].is_empty() {
            let _ = writeln!(
                out,
                "INSERT at bottom of {}: {}",
                f.block(b).name,
                uni.display_set(f, &plan.block_bottom_inserts[bi])
            );
        }
    }
    out
}

/// Renders the per-analysis solver cost of a fused [`lcm`](crate::lcm)
/// run, one row per analysis plus their total. Worklist solves report `0`
/// iterations (the column is only meaningful for round-robin sweeps).
pub fn stats_table(stats: &PipelineStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>10} | {:>11} | {:>8} | {:>10} | {:>6}",
        "analysis", "iterations", "node visits", "revisits", "word ops", "allocs"
    );
    for (name, s) in [
        ("avail", stats.avail),
        ("antic", stats.antic),
        ("later", stats.later),
        ("total", stats.total()),
    ] {
        let _ = writeln!(
            out,
            "{:<10} | {:>10} | {:>11} | {:>8} | {:>10} | {:>6}",
            name, s.iterations, s.node_visits, s.node_revisits, s.word_ops, s.allocations
        );
    }
    out
}

/// Renders a [`ValidationReport`](crate::ValidationReport) as one compact
/// table row set: which tier ran, how many checks, and where the time
/// went. Appended to `lcmopt --emit stats` when validation is on.
pub fn validation_table(report: &crate::ValidationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>6} | {:>12} | {:>12} | {:>7}",
        "validate", "checks", "static us", "diff us", "inputs"
    );
    let _ = writeln!(
        out,
        "{:<10} | {:>6} | {:>12} | {:>12} | {:>7}",
        report.level.name(),
        report.checks_run,
        report.static_nanos / 1_000,
        report.differential_nanos / 1_000,
        report.inputs_sampled
    );
    out
}

/// Renders deletion sets, one line per affected block.
pub fn delete_report(f: &Function, uni: &ExprUniverse, delete: &[lcm_dataflow::BitSet]) -> String {
    let mut out = String::new();
    for b in f.block_ids() {
        let d = &delete[b.index()];
        if !d.is_empty() {
            let _ = writeln!(
                out,
                "DELETE in {}: {}",
                f.block(b).name,
                uni.display_set(f, d)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lazy_edge_plan, lazy_node_plan};
    use lcm_ir::parse_function;

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn reports_cover_the_diamond() {
        let f = parse_function(DIAMOND).unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let lazy = lazy_edge_plan(&f, &uni, &local, &ga).unwrap();

        let table = safety_table(&f, &uni, &local, &ga);
        assert!(table.contains("join"));
        assert!(table.contains("{a + b}"));

        let plan = plan_report(&f, &uni, &lazy.plan);
        assert!(plan.contains("INSERT on r -> join: {a + b}"), "{plan}");

        let del = delete_report(&f, &uni, &lazy.delete);
        assert!(del.contains("DELETE in join: {a + b}"), "{del}");

        // Earliest on the diamond is the virtual entry edge.
        let e = earliest_report(&f, &uni, &ga);
        assert!(e.contains("virtual entry edge"), "{e}");
    }

    #[test]
    fn node_cascade_table_prints_all_pairs() {
        let f = parse_function(DIAMOND).unwrap();
        let res = lazy_node_plan(&f, true).unwrap();
        let table = node_cascade_table(&res);
        assert!(table.contains("N-DELAY / X-DELAY"));
        assert!(table.contains("N-ISOLATED"));
        for b in res.function.block_ids() {
            assert!(table.contains(&res.function.block(b).name));
        }
    }

    #[test]
    fn stats_table_totals_sum_the_analyses() {
        let f = parse_function(DIAMOND).unwrap();
        let p = crate::lcm(&f).unwrap();
        let table = stats_table(&p.stats);
        assert!(table.contains("avail"), "{table}");
        assert!(table.contains("total"), "{table}");
        let total = p.stats.total();
        assert!(
            table.contains(&total.word_ops.to_string()),
            "total word ops missing: {table}"
        );
        assert_eq!(
            total.node_visits,
            p.stats.avail.node_visits + p.stats.antic.node_visits + p.stats.later.node_visits
        );
    }

    #[test]
    fn empty_sets_produce_no_lines() {
        let f = parse_function("fn e {\nentry:\n  obs x\n  ret\n}").unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        assert!(earliest_report(&f, &uni, &ga).is_empty());
        let plan = crate::PlacementPlan::empty("test", &f, &uni);
        assert!(plan_report(&f, &uni, &plan).is_empty());
    }
}
