//! Busy Code Motion: the paper's computationally optimal strawman.
//!
//! BCM inserts at the **earliest** safe points. Every admissible placement
//! must compute the expression somewhere on the region between earliest and
//! latest; by choosing earliest, BCM already achieves the minimal number of
//! computations on every path (Theorem T2) — but it stretches the
//! temporary's live range as far as it can possibly reach, which is exactly
//! the register-pressure problem Lazy Code Motion then fixes.

use crate::analyses::GlobalAnalyses;
use crate::predicates::LocalPredicates;
use crate::transform::PlacementPlan;
use crate::universe::ExprUniverse;
use lcm_ir::Function;

/// Computes the busy-code-motion placement: insertions on every earliest
/// edge (plus the virtual entry edge).
pub fn busy_plan(
    f: &Function,
    uni: &ExprUniverse,
    _local: &LocalPredicates,
    ga: &GlobalAnalyses,
) -> PlacementPlan {
    let mut plan = PlacementPlan::empty("bcm", f, uni);
    plan.edge_inserts = ga.earliest.clone();
    plan.entry_insert = ga.earliest_entry.clone();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::apply_plan;
    use lcm_ir::parse_function;

    #[test]
    fn bcm_hoists_to_the_top_of_the_diamond() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               x = a + b
               jmp join
             r:
               jmp join
             join:
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let plan = busy_plan(&f, &uni, &local, &ga);
        // The only insertion is at the very top of entry.
        assert!(plan.entry_insert.contains(0));
        assert!(plan.edge_inserts.iter().all(|s| s.is_empty()));
        assert_eq!(plan.num_insertions(), 1);

        let result = apply_plan(&f, &uni, &local, &plan);
        lcm_ir::verify(&result.function).unwrap();
        // Both original occurrences became temp reads.
        assert_eq!(result.stats.deletions, 2);
        assert_eq!(result.stats.retained_defs, 0);
        // The transformed program computes a+b exactly once per execution.
        let g = &result.function;
        assert_eq!(g.expr_occurrences().count(), 1);
        assert_eq!(g.block(g.entry()).exprs().count(), 1);
    }

    #[test]
    fn bcm_does_not_touch_safe_free_code() {
        // The expression is killed on one arm before use, so it is not
        // anticipated at the branch: no hoisting above the kill is safe.
        let f = parse_function(
            "fn k {
             entry:
               br c, l, r
             l:
               a = 1
               x = a + b
               jmp join
             r:
               jmp join
             join:
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let plan = busy_plan(&f, &uni, &local, &ga);
        let idx = uni
            .iter()
            .find(|(_, e)| f.display_expr(*e) == "a + b")
            .map(|(i, _)| i)
            .unwrap();
        assert!(!plan.entry_insert.contains(idx));
        // The earliest safe point for the r-side redundancy is the edge
        // entry→r (moving above the branch would be unsafe: the l path
        // kills a before using a + b).
        let r = f.block_by_name("r").unwrap();
        let inserted: Vec<_> = plan
            .edges
            .iter()
            .filter(|(id, _)| plan.edge_inserts[id.index()].contains(idx))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(inserted.len(), 1);
        assert_eq!((inserted[0].from, inserted[0].to), (f.entry(), r));

        let result = apply_plan(&f, &uni, &local, &plan);
        lcm_ir::verify(&result.function).unwrap();
        // join's occurrence is deleted; l's occurrence must now define the
        // temp (it feeds the deleted one along the l path).
        assert_eq!(result.stats.deletions, 1);
        assert_eq!(result.stats.retained_defs, 1);
    }
}
