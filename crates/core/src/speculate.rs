//! Profile-guided **speculative** PRE as a minimum cut.
//!
//! Lazy code motion is the best transformation that never adds an
//! evaluation to *any* path. With an edge profile in hand, a compiler can
//! do better: insert a side-effect-free expression on cheap (cold) points
//! even when some path through them never needed the value, as long as the
//! inserted evaluations cost less execution frequency than the redundant
//! evaluations they remove. This module implements that trade as a minimum
//! s–t cut, per expression, over the *unavailability network* of the CFG:
//!
//! * unavailability **originates** at the function entry (`s → in(entry)`)
//!   and below every block that kills the expression without recomputing
//!   it (`s → out(b)`, capacity = the block's execution count);
//! * it **propagates** through transparent blocks that do not compute the
//!   expression (`in(b) → out(b)`, infinite capacity) and along CFG edges
//!   (`out(i) → in(j)`, capacity = the edge's profile weight);
//! * it is **absorbed** by blocks with a downward-exposed computation (no
//!   out-edge at all — the existing occurrence re-establishes the value);
//! * every upward-exposed use is a **demand** (`in(b) → t`, capacity = the
//!   block's execution count).
//!
//! A finite-capacity edge crossing the min cut is a placement decision:
//! `s → in(entry)` cut means "insert at the virtual entry edge",
//! `s → out(b)` means "insert at the bottom of `b`", `out(i) → in(j)`
//! means "insert on the CFG edge", and a cut `in(b) → t` edge means "leave
//! that use computing in place". By max-flow/min-cut the chosen placement
//! has the least possible weighted evaluation count, and by construction
//! every use on the sink side of the cut is covered by insertions on all
//! incoming paths — exactly the must-availability the shared rewriter
//! ([`apply_plan`](crate::transform::apply_plan)) recomputes when it
//! derives deletions, so the cost model and the transformation agree.
//!
//! Safety is restored by a side condition instead of down-safety: only
//! expressions that are [`side_effect_free`](lcm_ir::Expr::side_effect_free)
//! may be speculated (divisions can fault on a real target and are
//! excluded), and the plan for each expression is adopted only when its
//! cut is **strictly** cheaper than lazy code motion's weighted cost —
//! ties keep the LCM placement bit-for-bit, so a degenerate (all-zero)
//! profile reproduces LCM exactly.

use lcm_ir::{EdgeId, EdgeList, Function, Profile, ProfileError};

use crate::analyses::GlobalAnalyses;
use crate::lcm_edge::LazyEdgeResult;
use crate::mincut::{FlowNetwork, INF};
use crate::predicates::LocalPredicates;
use crate::universe::ExprUniverse;

/// An edge profile resolved against a function's dense edge numbering.
///
/// `edges[i]` is the execution count of edge `EdgeId(i)` (the order of
/// [`EdgeList::new`]); `entry` is the invocation count of the function —
/// how often the virtual entry edge fires.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EdgeWeights {
    /// Execution count per CFG edge, indexed by dense [`EdgeId`].
    pub edges: Vec<u64>,
    /// Function invocation count (executions of the virtual entry edge).
    pub entry: u64,
}

impl EdgeWeights {
    /// Resolves `p` against `f`. The invocation count is recovered from
    /// flow conservation: the entry block has no predecessors, so its
    /// outgoing flow *is* the invocation count (1 for an edgeless,
    /// single-block function).
    ///
    /// # Errors
    ///
    /// Propagates [`Profile::resolve`]'s structural errors.
    pub fn from_profile(f: &Function, p: &Profile) -> Result<EdgeWeights, ProfileError> {
        let weights = p.resolve(f)?;
        let edges = EdgeList::new(f);
        let out = edges.outgoing(f.entry());
        let entry = if out.is_empty() {
            1
        } else {
            out.iter()
                .fold(0u64, |a, id| a.saturating_add(weights[id.index()]))
        };
        Ok(EdgeWeights {
            edges: weights,
            entry,
        })
    }

    /// Unit weights: every edge (and the entry) counts 1. The profile-free
    /// default; it values all paths equally, so speculation only fires
    /// where it is a pure static win.
    pub fn unit(f: &Function) -> EdgeWeights {
        EdgeWeights {
            edges: vec![1; EdgeList::new(f).len()],
            entry: 1,
        }
    }

    /// Execution count of every block implied by the edge weights:
    /// incoming flow (plus the invocation count at the entry block), maxed
    /// with outgoing flow so non-conserving (corrupted) weights still give
    /// a usable upper bound rather than undercounting a block.
    pub fn block_weights(&self, f: &Function, edges: &EdgeList) -> Vec<u64> {
        assert_eq!(
            self.edges.len(),
            edges.len(),
            "edge weights are stale for this function"
        );
        let sum = |ids: &[EdgeId]| {
            ids.iter()
                .fold(0u64, |a, id| a.saturating_add(self.edges[id.index()]))
        };
        f.block_ids()
            .map(|b| {
                let mut inc = sum(edges.incoming(b));
                if b == f.entry() {
                    inc = inc.saturating_add(self.entry);
                }
                inc.max(sum(edges.outgoing(b)))
            })
            .collect()
    }
}

/// What the speculative planner decided, summed over all expressions.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SpecStats {
    /// Side-effect-free expressions with a nonzero LCM weighted cost — the
    /// ones for which a network was built and solved.
    pub candidates: usize,
    /// Candidates whose cut was strictly cheaper than LCM and whose
    /// placement was therefore replaced.
    pub speculated: usize,
    /// Summed weighted evaluation cost of the LCM placement over the
    /// candidates (insertion weights plus uncovered-use weights).
    pub lcm_weighted_cost: u64,
    /// Ditto for the adopted placement (the cut where speculated, the LCM
    /// cost where kept). Never exceeds `lcm_weighted_cost`.
    pub spec_weighted_cost: u64,
}

/// Merging, for aggregating many functions' decisions (the batch driver).
impl std::ops::AddAssign for SpecStats {
    fn add_assign(&mut self, rhs: SpecStats) {
        self.candidates += rhs.candidates;
        self.speculated += rhs.speculated;
        self.lcm_weighted_cost = self.lcm_weighted_cost.saturating_add(rhs.lcm_weighted_cost);
        self.spec_weighted_cost = self
            .spec_weighted_cost
            .saturating_add(rhs.spec_weighted_cost);
    }
}

/// The speculative placement: a [`PlacementPlan`] tagged `"spec"` plus the
/// planner's accounting.
#[derive(Clone, Debug)]
pub struct SpecResult {
    /// The adopted plan. For non-speculated expressions it is bit-for-bit
    /// the LCM plan it was derived from.
    pub plan: crate::transform::PlacementPlan,
    /// Decision counters and weighted costs.
    pub stats: SpecStats,
}

/// Computes the speculative placement for `f`, starting from the LCM
/// result `lazy` and the profile `w`.
///
/// Every expression keeps its LCM placement unless it is side-effect-free
/// *and* the minimum cut of its unavailability network is strictly cheaper
/// under `w` — so the result under an all-zero profile equals the LCM plan
/// exactly, and under an exact profile its weighted evaluation count never
/// exceeds LCM's.
pub fn speculative_plan(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
    ga: &GlobalAnalyses,
    lazy: &LazyEdgeResult,
    w: &EdgeWeights,
) -> SpecResult {
    let edges = &ga.edges;
    let wblock = w.block_weights(f, edges);
    let nb = f.num_blocks();

    let mut plan = lazy.plan.clone();
    plan.algorithm = "spec";
    let mut stats = SpecStats::default();

    for (idx, expr) in uni.iter() {
        if !expr.side_effect_free() {
            continue;
        }
        // Weighted evaluation cost of the LCM placement for this
        // expression: its insertions, plus every upward-exposed use it
        // does not delete.
        let mut lcm_cost = 0u64;
        for (eid, _) in edges.iter() {
            if lazy.plan.edge_inserts[eid.index()].contains(idx) {
                lcm_cost = lcm_cost.saturating_add(w.edges[eid.index()]);
            }
        }
        if lazy.plan.entry_insert.contains(idx) {
            lcm_cost = lcm_cost.saturating_add(w.entry);
        }
        for b in f.block_ids() {
            let bi = b.index();
            if local.antloc[bi].contains(idx) && !lazy.delete[bi].contains(idx) {
                lcm_cost = lcm_cost.saturating_add(wblock[bi]);
            }
        }
        if lcm_cost == 0 {
            // No insertions and every use already covered: a cut (≥ 0)
            // cannot strictly improve on it.
            continue;
        }
        stats.candidates += 1;
        stats.lcm_weighted_cost = stats.lcm_weighted_cost.saturating_add(lcm_cost);

        // Unavailability network (module docs): node 2b = block entry,
        // node 2b+1 = block exit.
        let (s, t) = (2 * nb, 2 * nb + 1);
        let mut net = FlowNetwork::new(2 * nb + 2);
        let entry_edge = net.add_edge(s, 2 * f.entry().index(), wblock[f.entry().index()]);
        let mut origin = vec![usize::MAX; nb];
        for b in f.block_ids() {
            let bi = b.index();
            let transp = local.transp[bi].contains(idx);
            let comp = local.comp[bi].contains(idx);
            if local.antloc[bi].contains(idx) {
                net.add_edge(2 * bi, t, wblock[bi]);
            }
            if comp {
                // Downward-exposed computation: the exit is covered by the
                // existing occurrence, nothing flows out of this block.
            } else if transp {
                net.add_edge(2 * bi, 2 * bi + 1, INF);
            } else {
                origin[bi] = net.add_edge(s, 2 * bi + 1, wblock[bi]);
            }
        }
        let mut cfg_edge = vec![usize::MAX; edges.len()];
        for (eid, edge) in edges.iter() {
            cfg_edge[eid.index()] = net.add_edge(
                2 * edge.from.index() + 1,
                2 * edge.to.index(),
                w.edges[eid.index()],
            );
        }

        let cut_value = net.max_flow(s, t);
        if cut_value >= lcm_cost {
            // Ties keep LCM: its placement needs no speculation-safety
            // argument and is lifetime optimal.
            stats.spec_weighted_cost = stats.spec_weighted_cost.saturating_add(lcm_cost);
            continue;
        }
        stats.speculated += 1;
        stats.spec_weighted_cost = stats.spec_weighted_cost.saturating_add(cut_value);

        // Replace this expression's LCM placement with the cut.
        let reach = net.min_cut(s);
        plan.entry_insert.remove(idx);
        for set in plan
            .edge_inserts
            .iter_mut()
            .chain(plan.block_bottom_inserts.iter_mut())
        {
            set.remove(idx);
        }
        if net.in_cut(entry_edge, &reach) {
            plan.entry_insert.insert(idx);
        }
        for (bi, &e) in origin.iter().enumerate() {
            if e != usize::MAX && net.in_cut(e, &reach) {
                plan.block_bottom_inserts[bi].insert(idx);
            }
        }
        for (ei, &e) in cfg_edge.iter().enumerate() {
            if net.in_cut(e, &reach) {
                plan.edge_inserts[ei].insert(idx);
            }
        }
    }

    SpecResult { plan, stats }
}

/// Convenience: [`EdgeWeights`] from an optional profile, falling back to
/// [`EdgeWeights::unit`] when absent or structurally invalid for `f`.
pub fn weights_or_unit(f: &Function, profile: Option<&Profile>) -> EdgeWeights {
    profile
        .and_then(|p| EdgeWeights::from_profile(f, p).ok())
        .unwrap_or_else(|| EdgeWeights::unit(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcm;
    use lcm_ir::parse_function;

    /// A loop whose body computes `a + b` only under a guard: the
    /// expression is not down-safe anywhere above the guard, so LCM must
    /// leave it in place, re-evaluating every hot iteration. Speculation
    /// hoists it to the (cold) entry.
    const GUARDED: &str = "fn g {
        entry:
          jmp head
        head:
          br p, body, done
        body:
          br q, compute, skip
        compute:
          x = a + b
          obs x
          jmp latch
        skip:
          jmp latch
        latch:
          jmp head
        done:
          ret
        }";

    /// One invocation, nine iterations, guard taken six times. Dense edge
    /// order: entry→head, head→body, head→done, body→compute, body→skip,
    /// compute→latch, skip→latch, latch→head.
    const GUARDED_WEIGHTS: [u64; 8] = [1, 9, 1, 6, 3, 6, 3, 9];

    fn pipeline(f: &lcm_ir::Function) -> crate::LcmPipeline {
        lcm(f).unwrap()
    }

    #[test]
    fn hot_guarded_use_is_hoisted_to_the_cold_entry() {
        let f = parse_function(GUARDED).unwrap();
        let p = pipeline(&f);
        let profile = Profile::from_weights(&f, &GUARDED_WEIGHTS);
        let w = EdgeWeights::from_profile(&f, &profile).unwrap();
        assert_eq!(w.entry, 1);

        // `a + b` is the only candidate expression.
        assert_eq!(p.universe.len(), 1);
        let idx = 0;
        // LCM leaves the use alone (no insertions anywhere).
        assert_eq!(p.lazy.plan.num_insertions(), 0);

        let spec = speculative_plan(&f, &p.universe, &p.local, &p.analyses, &p.lazy, &w);
        assert_eq!(spec.plan.algorithm, "spec");
        assert_eq!(spec.stats.candidates, 1);
        assert_eq!(spec.stats.speculated, 1);
        // LCM pays the use every guarded iteration; the cut pays one
        // entry insertion.
        assert_eq!(spec.stats.lcm_weighted_cost, 6);
        assert_eq!(spec.stats.spec_weighted_cost, 1);
        assert!(spec.plan.entry_insert.contains(idx));
        assert!(spec.plan.edge_inserts.iter().all(|s| !s.contains(idx)));
        assert!(spec
            .plan
            .block_bottom_inserts
            .iter()
            .all(|s| !s.contains(idx)));
    }

    #[test]
    fn zero_profile_reproduces_lcm_bit_for_bit() {
        let f = parse_function(GUARDED).unwrap();
        let p = pipeline(&f);
        let w = EdgeWeights::from_profile(&f, &Profile::from_weights(&f, &[0; 8])).unwrap();
        let spec = speculative_plan(&f, &p.universe, &p.local, &p.analyses, &p.lazy, &w);
        assert_eq!(spec.stats.speculated, 0);
        assert_eq!(spec.plan.entry_insert, p.lazy.plan.entry_insert);
        assert_eq!(spec.plan.edge_inserts, p.lazy.plan.edge_inserts);
        assert_eq!(
            spec.plan.block_bottom_inserts,
            p.lazy.plan.block_bottom_inserts
        );
    }

    #[test]
    fn faultable_expressions_are_never_speculated() {
        let src = GUARDED.replace("a + b", "a / b");
        let f = parse_function(&src).unwrap();
        let p = pipeline(&f);
        let profile = Profile::from_weights(&f, &GUARDED_WEIGHTS);
        let w = EdgeWeights::from_profile(&f, &profile).unwrap();
        let spec = speculative_plan(&f, &p.universe, &p.local, &p.analyses, &p.lazy, &w);
        // `a / b` may fault on a real target: not even a candidate.
        assert_eq!(spec.stats.candidates, 0);
        assert_eq!(spec.stats.speculated, 0);
        assert_eq!(spec.plan.entry_insert, p.lazy.plan.entry_insert);
        assert_eq!(spec.plan.edge_inserts, p.lazy.plan.edge_inserts);
    }

    #[test]
    fn kills_reoriginate_unavailability_below_the_killing_block() {
        // The loop body redefines `a`, so an entry insertion cannot cover
        // the use: the only valid cheap cut is below the kill.
        let f = parse_function(
            "fn k {
             entry:
               jmp head
             head:
               br p, body, done
             body:
               a = a + 1
               x = a * b
               obs x
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        let p = pipeline(&f);
        // entry→head: 1, head→body: 9, head→done: 1, body→head: 9.
        let profile = Profile::from_weights(&f, &[1, 9, 1, 9]);
        let w = EdgeWeights::from_profile(&f, &profile).unwrap();
        let spec = speculative_plan(&f, &p.universe, &p.local, &p.analyses, &p.lazy, &w);
        let (idx, _) = p
            .universe
            .iter()
            .find(|(_, e)| matches!(e, lcm_ir::Expr::Bin(lcm_ir::BinOp::Mul, _, _)))
            .unwrap();
        // `a * b` is killed and recomputed in the same block every
        // iteration: no placement can beat evaluating at the use, and the
        // use itself costs exactly what LCM pays. Nothing is adopted.
        assert_eq!(spec.stats.speculated, 0);
        assert!(!spec.plan.entry_insert.contains(idx));
    }

    #[test]
    fn unit_weights_are_a_safe_default() {
        let f = parse_function(GUARDED).unwrap();
        let w = EdgeWeights::unit(&f);
        assert_eq!(w.entry, 1);
        assert_eq!(w.edges, vec![1; 8]);
        assert_eq!(weights_or_unit(&f, None), w);
        // An inconsistent profile also falls back to unit.
        let bad = Profile::from_weights(&f, &[5, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(weights_or_unit(&f, Some(&bad)), w);
        let good = Profile::from_weights(&f, &GUARDED_WEIGHTS);
        assert_ne!(weights_or_unit(&f, Some(&good)), w);
    }
}
