//! # lcm-core — Lazy Code Motion
//!
//! A complete implementation of **Lazy Code Motion** (Knoop, Rüthing &
//! Steffen, PLDI 1992): partial redundancy elimination that is
//!
//! 1. **admissible** — it only inserts computations at safe (down-safe or
//!    up-safe) program points, so no path ever evaluates an expression it
//!    did not evaluate before;
//! 2. **computationally optimal** — no admissible transformation achieves
//!    fewer evaluations on any path; and
//! 3. **lifetime optimal** — among the computationally optimal
//!    transformations, the live ranges of the introduced temporaries are
//!    minimal.
//!
//! The crate provides the paper's algorithm in both published forms
//! ([`lazy_edge_plan`] — edge insertions; [`lazy_node_plan`] — the original
//! node-insertion cascade DELAY/LATEST/ISOLATED after critical-edge
//! splitting), the busy-code-motion strawman ([`busy_plan`]), the
//! bidirectional Morel–Renvoise baseline ([`morel_renvoise_plan`]), a
//! shared rewriting engine ([`transform`]), safety oracles ([`safety`]),
//! optimality metrics ([`metrics`]) and the supporting scalar passes
//! ([`passes`]).
//!
//! # Quickstart
//!
//! ```
//! use lcm_core::{optimize, PreAlgorithm};
//! use lcm_ir::parse_function;
//!
//! let f = parse_function(
//!     "fn demo {
//!      entry:
//!        br c, left, right
//!      left:
//!        x = a + b
//!        jmp join
//!      right:
//!        jmp join
//!      join:
//!        y = a + b
//!        obs y
//!        ret
//!      }",
//! )?;
//! let lazy = optimize(&f, PreAlgorithm::LazyEdge)?;
//! // One insertion (on the right arm), one deletion (at the join).
//! assert_eq!(lazy.transform.stats.insertions, 1);
//! assert_eq!(lazy.transform.stats.deletions, 1);
//! lcm_ir::verify(&lazy.function)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For a pass boundary with the paper invariants re-checked, use
//! [`optimize_checked`], which validates the result at the requested
//! [`validate::ValidationLevel`] before returning it.

mod analyses;
mod bcm;
mod budget;
mod incremental;
mod lcm_edge;
mod lcm_node;
mod morel_renvoise;
mod pipeline;
mod predicates;
mod universe;

pub mod mincut;
pub mod speculate;

pub mod figures;
pub mod metrics;
pub mod passes;
pub mod report;
pub mod safety;
pub mod strength;
pub mod transform;
pub mod validate;

pub use analyses::{
    anticipability, anticipability_problem, availability, availability_problem,
    partial_anticipability, partial_availability, GlobalAnalyses,
};
pub use bcm::busy_plan;
pub use budget::{CancelReason, Cancelled, OptimizeBudget};
pub use incremental::{
    optimize_incremental, optimize_incremental_checked, optimize_incremental_checked_with,
    IncrementalOutcome, IncrementalState, IncrementalStats, PhaseNanos,
};
pub use lcm_edge::{
    later_problem, lazy_edge_plan, lazy_edge_plan_in, lazy_edge_plan_with, LazyEdgeResult,
};
pub use lcm_node::{lazy_node_plan, LazyNodeResult};
pub use morel_renvoise::{morel_renvoise_plan, MorelRenvoiseResult};
pub use pipeline::{lcm, lcm_in, lcm_with, LcmPipeline, PipelineStats};
pub use predicates::LocalPredicates;
pub use speculate::{speculative_plan, weights_or_unit, EdgeWeights, SpecResult, SpecStats};
pub use transform::{apply_plan, PlacementPlan, TransformResult};
pub use universe::ExprUniverse;
pub use validate::{check_memory_kills, ValidationError, ValidationLevel, ValidationReport};

use std::error::Error;
use std::fmt;

use lcm_dataflow::{SolveStrategy, SolverDiverged, SolverScratch};
use lcm_ir::Function;

/// Why a PRE pass could not produce (or could not stand behind) a result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PipelineError {
    /// An analysis exceeded its derived sweep bound — the symptom of
    /// corrupted transfer functions or a non-monotone lattice.
    Solver(SolverDiverged),
    /// The pass produced a result, but it violates a paper invariant.
    Validation(ValidationError),
    /// A budgeted run exceeded its [`OptimizeBudget`] (deadline, fuel, or
    /// external cancel flag) and was abandoned at a stage boundary.
    Cancelled(Cancelled),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Solver(e) => e.fmt(f),
            PipelineError::Validation(e) => e.fmt(f),
            PipelineError::Cancelled(e) => e.fmt(f),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Solver(e) => Some(e),
            PipelineError::Validation(e) => Some(e),
            PipelineError::Cancelled(e) => Some(e),
        }
    }
}

impl From<Cancelled> for PipelineError {
    fn from(e: Cancelled) -> Self {
        PipelineError::Cancelled(e)
    }
}

impl From<SolverDiverged> for PipelineError {
    fn from(e: SolverDiverged) -> Self {
        PipelineError::Solver(e)
    }
}

impl From<ValidationError> for PipelineError {
    fn from(e: ValidationError) -> Self {
        PipelineError::Validation(e)
    }
}

/// The PRE algorithms this crate implements.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PreAlgorithm {
    /// Busy code motion: earliest (safe) placement. Computationally
    /// optimal; maximal temporary lifetimes.
    Busy,
    /// Lazy code motion, edge-insertion formulation (the production form).
    LazyEdge,
    /// Lazy code motion, node-insertion formulation (the paper's original
    /// DELAY/LATEST/ISOLATED cascade after critical-edge splitting).
    LazyNode,
    /// Lazy code motion without the isolation pruning — the paper's "ALCM"
    /// ablation. Computationally optimal but introduces useless temps
    /// (which the rewriter's liveness pruning then refuses to materialise;
    /// the placement difference is still observable in the plan).
    AlmostLazyNode,
    /// Morel–Renvoise (1979): the bidirectional baseline.
    MorelRenvoise,
    /// Classic global common-subexpression elimination: deletes only
    /// **fully** redundant occurrences (available on every path), inserts
    /// nothing. The weakest baseline — everything PRE adds over GCSE is
    /// partial redundancy.
    Gcse,
    /// Profile-guided speculative PRE ([`speculate`]): lazy code motion's
    /// placement, improved per side-effect-free expression by a minimum
    /// cut over the profile-weighted unavailability network. Not part of
    /// [`PreAlgorithm::ALL`] because it is not admissible in the paper's
    /// sense (it may add evaluations to cold paths) and needs a profile to
    /// be meaningful — [`optimize`] runs it with unit weights; pass real
    /// weights via [`optimize_speculative`].
    Speculative,
}

impl PreAlgorithm {
    /// All algorithms, for sweep-style experiments.
    pub const ALL: [PreAlgorithm; 6] = [
        PreAlgorithm::Busy,
        PreAlgorithm::LazyEdge,
        PreAlgorithm::LazyNode,
        PreAlgorithm::AlmostLazyNode,
        PreAlgorithm::MorelRenvoise,
        PreAlgorithm::Gcse,
    ];

    /// A short stable name (used in reports and benchmark ids).
    pub fn name(self) -> &'static str {
        match self {
            PreAlgorithm::Busy => "bcm",
            PreAlgorithm::LazyEdge => "lcm-edge",
            PreAlgorithm::LazyNode => "lcm-node",
            PreAlgorithm::AlmostLazyNode => "alcm-node",
            PreAlgorithm::MorelRenvoise => "morel-renvoise",
            PreAlgorithm::Gcse => "gcse",
            PreAlgorithm::Speculative => "spec",
        }
    }
}

/// Everything `optimize` produces.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The transformed function.
    pub function: Function,
    /// The rewriting outcome (insertion/deletion counters, temps).
    pub transform: TransformResult,
    /// The placement plan the rewriting realised, for post-hoc auditing
    /// ([`validate::validate_optimized`] checks it against the paper's
    /// admissibility criterion).
    pub plan: PlacementPlan,
    /// The input the plan was computed for — the original function, except
    /// for the node algorithms where it is the critical-edge-split copy.
    pub input: Function,
    /// Which algorithm ran.
    pub algorithm: PreAlgorithm,
    /// Per-analysis solver statistics, when the algorithm ran the fused
    /// edge pipeline ([`PreAlgorithm::LazyEdge`] and
    /// [`PreAlgorithm::Speculative`]); `None` for the other algorithms,
    /// whose solves are not fused into one pipeline.
    pub pipeline_stats: Option<PipelineStats>,
    /// The speculative planner's decisions ([`PreAlgorithm::Speculative`]
    /// only; `None` for every other algorithm).
    pub spec: Option<SpecStats>,
}

/// Runs one PRE algorithm end to end: analyses → placement plan →
/// rewriting. No clean-up passes are run; compose with
/// [`passes::copy_propagation`] and [`passes::dce`] for a full pipeline
/// (or use [`optimize_pipeline`]).
///
/// # Errors
///
/// Returns [`PipelineError::Solver`] if any analysis exceeds its derived
/// sweep bound (possible only with corrupted transfer functions).
pub fn optimize(f: &Function, algorithm: PreAlgorithm) -> Result<Optimized, PipelineError> {
    optimize_with(
        f,
        algorithm,
        SolveStrategy::default(),
        &mut SolverScratch::new(),
    )
}

/// [`optimize`] with an explicit [`SolveStrategy`] and a caller-owned
/// [`SolverScratch`]. Only [`PreAlgorithm::LazyEdge`] runs the fused
/// pipeline that consults them; the other algorithms solve their analyses
/// standalone and ignore both (every strategy reaches the same fixpoints,
/// so the choice never changes a plan — see `tests/solver_equivalence.rs`).
///
/// # Errors
///
/// Returns [`PipelineError::Solver`] if any analysis exceeds its derived
/// sweep bound.
pub fn optimize_with(
    f: &Function,
    algorithm: PreAlgorithm,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<Optimized, PipelineError> {
    match algorithm {
        PreAlgorithm::LazyNode | PreAlgorithm::AlmostLazyNode => {
            let res = lazy_node_plan(f, algorithm == PreAlgorithm::LazyNode)?;
            let transform = apply_plan(&res.function, &res.universe, &res.local, &res.plan);
            Ok(Optimized {
                function: transform.function.clone(),
                transform,
                plan: res.plan,
                input: res.function,
                algorithm,
                pipeline_stats: None,
                spec: None,
            })
        }
        // Without a caller-supplied profile the speculative planner runs
        // on unit weights; see `optimize_speculative_with`.
        PreAlgorithm::Speculative => {
            optimize_speculative_with(f, &EdgeWeights::unit(f), strategy, scratch)
        }
        _ => {
            let uni = ExprUniverse::of(f);
            let local = LocalPredicates::compute(f, &uni);
            let mut pipeline_stats = None;
            let plan = match algorithm {
                PreAlgorithm::Busy => {
                    let ga = GlobalAnalyses::compute(f, &uni, &local)?;
                    busy_plan(f, &uni, &local, &ga)
                }
                PreAlgorithm::LazyEdge => {
                    // The fused pipeline (shared CfgView, reused scratch)
                    // reaches the same fixpoints as the per-analysis path;
                    // see tests/solver_equivalence.rs.
                    let view = lcm_dataflow::CfgView::new(f);
                    let ga =
                        GlobalAnalyses::compute_with(f, &uni, &local, &view, strategy, scratch)?;
                    let lazy = lazy_edge_plan_with(f, &uni, &local, &ga, &view, strategy, scratch)?;
                    pipeline_stats = Some(PipelineStats {
                        avail: ga.avail.stats,
                        antic: ga.antic.stats,
                        later: lazy.stats,
                    });
                    lazy.plan
                }
                PreAlgorithm::MorelRenvoise => morel_renvoise_plan(f, &uni, &local)?.plan,
                // GCSE's "plan" is the empty plan: the shared transform
                // machinery then deletes exactly the occurrences whose value
                // is available from existing computations on all paths.
                PreAlgorithm::Gcse => PlacementPlan::empty("gcse", f, &uni),
                PreAlgorithm::LazyNode
                | PreAlgorithm::AlmostLazyNode
                | PreAlgorithm::Speculative => unreachable!(),
            };
            let transform = apply_plan(f, &uni, &local, &plan);
            Ok(Optimized {
                function: transform.function.clone(),
                transform,
                plan,
                input: f.clone(),
                algorithm,
                pipeline_stats,
                spec: None,
            })
        }
    }
}

/// Profile-guided speculative PRE: the lazy-code-motion pipeline followed
/// by the per-expression min-cut improvement of [`speculative_plan`] under
/// the edge weights `w` (see [`speculate`] for the construction). The
/// resulting plan is admissible *except* where an expression is provably
/// side-effect-free, and under an exact profile its weighted evaluation
/// count never exceeds lazy code motion's.
///
/// # Errors
///
/// Returns [`PipelineError::Solver`] if any analysis exceeds its derived
/// sweep bound.
pub fn optimize_speculative(f: &Function, w: &EdgeWeights) -> Result<Optimized, PipelineError> {
    optimize_speculative_with(f, w, SolveStrategy::default(), &mut SolverScratch::new())
}

/// [`optimize_speculative`] with an explicit [`SolveStrategy`] and a
/// caller-owned [`SolverScratch`] — the batch driver's per-worker path.
///
/// # Errors
///
/// Returns [`PipelineError::Solver`] if any analysis exceeds its derived
/// sweep bound.
pub fn optimize_speculative_with(
    f: &Function,
    w: &EdgeWeights,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<Optimized, PipelineError> {
    let uni = ExprUniverse::of(f);
    let local = LocalPredicates::compute(f, &uni);
    let view = lcm_dataflow::CfgView::new(f);
    let ga = GlobalAnalyses::compute_with(f, &uni, &local, &view, strategy, scratch)?;
    let lazy = lazy_edge_plan_with(f, &uni, &local, &ga, &view, strategy, scratch)?;
    let pipeline_stats = Some(PipelineStats {
        avail: ga.avail.stats,
        antic: ga.antic.stats,
        later: lazy.stats,
    });
    let spec = speculative_plan(f, &uni, &local, &ga, &lazy, w);
    let transform = apply_plan(f, &uni, &local, &spec.plan);
    Ok(Optimized {
        function: transform.function.clone(),
        transform,
        plan: spec.plan,
        input: f.clone(),
        algorithm: PreAlgorithm::Speculative,
        pipeline_stats,
        spec: Some(spec.stats),
    })
}

/// [`optimize_speculative`] followed by
/// [`validate::validate_optimized`] at `level` — the checked pass
/// boundary for the speculative placement. The validator applies its
/// speculation-aware admissibility rule (unsafe points must carry
/// side-effect-free expressions) and skips the per-input eval-count
/// non-regression, which speculation legitimately trades away on cold
/// paths.
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates an invariant.
pub fn optimize_speculative_checked(
    f: &Function,
    w: &EdgeWeights,
    level: ValidationLevel,
    seed: u64,
) -> Result<(Optimized, ValidationReport), PipelineError> {
    optimize_speculative_checked_with(
        f,
        w,
        level,
        seed,
        SolveStrategy::default(),
        &mut SolverScratch::new(),
    )
}

/// [`optimize_speculative_checked`] with an explicit [`SolveStrategy`] and
/// caller-owned [`SolverScratch`].
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates an invariant.
pub fn optimize_speculative_checked_with(
    f: &Function,
    w: &EdgeWeights,
    level: ValidationLevel,
    seed: u64,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<(Optimized, ValidationReport), PipelineError> {
    let opt = optimize_speculative_with(f, w, strategy, scratch)?;
    let report = validate::validate_optimized(f, &opt, level, seed)?;
    Ok((opt, report))
}

/// [`optimize`] followed by [`validate::validate_optimized`] at `level`:
/// the checked pass boundary. The returned report carries the validator's
/// timings for `--emit stats`-style reporting.
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates a paper invariant.
pub fn optimize_checked(
    f: &Function,
    algorithm: PreAlgorithm,
    level: ValidationLevel,
    seed: u64,
) -> Result<(Optimized, ValidationReport), PipelineError> {
    optimize_checked_with(
        f,
        algorithm,
        level,
        seed,
        SolveStrategy::default(),
        &mut SolverScratch::new(),
    )
}

/// [`optimize_checked`] with an explicit [`SolveStrategy`] and caller-owned
/// [`SolverScratch`] — the batch driver's per-worker path.
///
/// # Errors
///
/// [`PipelineError::Solver`] if an analysis diverges,
/// [`PipelineError::Validation`] if the result violates a paper invariant.
pub fn optimize_checked_with(
    f: &Function,
    algorithm: PreAlgorithm,
    level: ValidationLevel,
    seed: u64,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
) -> Result<(Optimized, ValidationReport), PipelineError> {
    let opt = optimize_with(f, algorithm, strategy, scratch)?;
    let report = validate::validate_optimized(f, &opt, level, seed)?;
    Ok((opt, report))
}

/// [`optimize_checked_with`] under an [`OptimizeBudget`]: the deadline and
/// cancel flag are checked before solving, after solving, and after
/// validation; the fuel ceiling is checked against the fused pipeline's
/// actual node-visit count the moment the solves finish. Fuel is only
/// observable for the algorithms that run the fused pipeline
/// ([`PreAlgorithm::LazyEdge`] and [`PreAlgorithm::Speculative`]); the
/// standalone-solve algorithms report no [`PipelineStats`] and are governed
/// by the deadline alone.
///
/// # Errors
///
/// [`PipelineError::Cancelled`] when the budget is exceeded, plus
/// everything [`optimize_checked_with`] can return.
pub fn optimize_checked_budgeted(
    f: &Function,
    algorithm: PreAlgorithm,
    level: ValidationLevel,
    seed: u64,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
    budget: &OptimizeBudget,
) -> Result<(Optimized, ValidationReport), PipelineError> {
    budget.check("solve")?;
    let opt = optimize_with(f, algorithm, strategy, scratch)?;
    let visits = opt
        .pipeline_stats
        .as_ref()
        .map_or(0, |s| s.total().node_visits as u64);
    budget.check_fuel("validate", visits)?;
    let report = validate::validate_optimized(f, &opt, level, seed)?;
    budget.check("finish")?;
    Ok((opt, report))
}

/// [`optimize_speculative_checked_with`] under an [`OptimizeBudget`] —
/// same stage boundaries as [`optimize_checked_budgeted`].
///
/// # Errors
///
/// [`PipelineError::Cancelled`] when the budget is exceeded, plus
/// everything [`optimize_speculative_checked_with`] can return.
pub fn optimize_speculative_checked_budgeted(
    f: &Function,
    w: &EdgeWeights,
    level: ValidationLevel,
    seed: u64,
    strategy: SolveStrategy,
    scratch: &mut SolverScratch,
    budget: &OptimizeBudget,
) -> Result<(Optimized, ValidationReport), PipelineError> {
    budget.check("solve")?;
    let opt = optimize_speculative_with(f, w, strategy, scratch)?;
    let visits = opt
        .pipeline_stats
        .as_ref()
        .map_or(0, |s| s.total().node_visits as u64);
    budget.check_fuel("validate", visits)?;
    let report = validate::validate_optimized(f, &opt, level, seed)?;
    budget.check("finish")?;
    Ok((opt, report))
}

/// The full pipeline a compiler would run: LCSE, the chosen PRE algorithm,
/// copy propagation, dead-code elimination, CFG simplification. Returns
/// the final function.
///
/// # Errors
///
/// Propagates [`optimize`]'s solver errors.
pub fn optimize_pipeline(f: &Function, algorithm: PreAlgorithm) -> Result<Function, PipelineError> {
    let mut pre = f.clone();
    passes::lcse(&mut pre);
    let mut optimized = optimize(&pre, algorithm)?.function;
    passes::copy_propagation(&mut optimized);
    passes::dce(&mut optimized);
    lcm_ir::simplify_cfg(&mut optimized);
    Ok(optimized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn every_algorithm_produces_a_valid_function() {
        let f = parse_function(DIAMOND).unwrap();
        for alg in PreAlgorithm::ALL {
            let o = optimize(&f, alg).unwrap();
            lcm_ir::verify(&o.function).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            assert_eq!(o.algorithm, alg);
        }
    }

    #[test]
    fn pipeline_output_is_clean_and_equivalent() {
        let f = parse_function(DIAMOND).unwrap();
        let g = optimize_pipeline(&f, PreAlgorithm::LazyEdge).unwrap();
        lcm_ir::verify(&g).unwrap();
        for c in [0, 1] {
            let inputs = lcm_interp::Inputs::new()
                .set("a", 3)
                .set("b", 4)
                .set("c", c);
            assert!(lcm_interp::observationally_equivalent(
                &f, &g, &inputs, 10_000
            ));
        }
        // The join no longer computes a + b.
        let join = g.block_by_name("join").unwrap();
        assert!(g.block(join).exprs().next().is_none());
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(PreAlgorithm::Busy.name(), "bcm");
        assert_eq!(PreAlgorithm::ALL.len(), 6);
    }
}
