//! Lazy strength reduction — the authors' companion extension of lazy code
//! motion (Knoop, Rüthing & Steffen, *Lazy Strength Reduction*, Journal of
//! Programming Languages 1(1), 1993).
//!
//! Strength reduction rewrites multiplications by loop-updated variables
//! into additions: once `t = v * c` is established, a definition
//! `v = v + d` (an *injury* in the paper's terminology) does not force a
//! recomputation — the temporary can be *updated* in step,
//! `t = t + d·c`, because distributivity holds exactly in wrapping
//! arithmetic: `(v + d)·c = v·c + d·c`.
//!
//! The beauty of the lazy formulation is that **no new machinery is
//! needed**: the candidate universe is restricted to `v * c` (variable
//! times constant, either operand order), the local predicates treat
//! injuries as transparent (only *opaque* definitions of `v` kill the
//! candidate), and then the ordinary LCM cascade — availability,
//! anticipability, EARLIEST, LATER — runs unchanged and yields the
//! insertion points. The rewriter differs from plain code motion in one
//! clause: wherever the temporary is active across an injury, it appends
//! the update assignment.
//!
//! Guarantees (validated by the test-suite oracles exactly like the main
//! algorithm): observational equivalence, and on every executed path the
//! number of *multiplications* never increases — typically it collapses to
//! one per loop entry — at the cost of one addition per injury.

use std::collections::HashMap;

use lcm_dataflow::BitSet;
use lcm_ir::{BinOp, BlockId, Expr, Function, Instr, Operand, Rvalue, Var};

use crate::analyses::GlobalAnalyses;
use crate::lcm_edge::lazy_edge_plan;
use crate::predicates::LocalPredicates;
use crate::transform::{deletions, temp_availability, temp_liveness, PlacementPlan};
use crate::universe::ExprUniverse;

/// A strength-reduction candidate: `var * coeff` in either operand order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// The (possibly injured) variable.
    pub var: Var,
    /// The constant coefficient.
    pub coeff: i64,
}

impl Candidate {
    /// The canonical expression form used in the universe.
    pub fn repr(self) -> Expr {
        Expr::Bin(
            BinOp::Mul,
            Operand::Var(self.var),
            Operand::Const(self.coeff),
        )
    }

    /// Matches an expression against this candidate (either operand
    /// order).
    pub fn matches(self, e: Expr) -> bool {
        match e {
            Expr::Bin(BinOp::Mul, Operand::Var(v), Operand::Const(c))
            | Expr::Bin(BinOp::Mul, Operand::Const(c), Operand::Var(v)) => {
                v == self.var && c == self.coeff
            }
            _ => false,
        }
    }

    /// Extracts a candidate from an expression, if it has the right shape.
    pub fn of_expr(e: Expr) -> Option<Candidate> {
        match e {
            Expr::Bin(BinOp::Mul, Operand::Var(v), Operand::Const(c))
            | Expr::Bin(BinOp::Mul, Operand::Const(c), Operand::Var(v)) => {
                Some(Candidate { var: v, coeff: c })
            }
            _ => None,
        }
    }
}

/// Classifies an instruction's effect on a candidate's variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Effect {
    /// Does not define the variable.
    None,
    /// `v = v + d` / `v = d + v` / `v = v - d`: the temp can be updated by
    /// the given (signed) delta times the coefficient.
    Injury(i64),
    /// Any other definition of the variable.
    Kill,
}

fn effect_on(instr: Instr, var: Var) -> Effect {
    let Instr::Assign { dst, rv } = instr else {
        return Effect::None;
    };
    if dst != var {
        return Effect::None;
    }
    match rv {
        Rvalue::Expr(Expr::Bin(BinOp::Add, Operand::Var(v), Operand::Const(d)))
        | Rvalue::Expr(Expr::Bin(BinOp::Add, Operand::Const(d), Operand::Var(v)))
            if v == var =>
        {
            Effect::Injury(d)
        }
        Rvalue::Expr(Expr::Bin(BinOp::Sub, Operand::Var(v), Operand::Const(d))) if v == var => {
            Effect::Injury(d.wrapping_neg())
        }
        _ => Effect::Kill,
    }
}

/// What [`strength_reduce`] did.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StrengthStats {
    /// Strength-reduction candidates found (`v * c` expressions).
    pub candidates: usize,
    /// `t = v * c` initialisations inserted.
    pub insertions: usize,
    /// Multiplication occurrences replaced by temp reads.
    pub deletions: usize,
    /// Occurrences retained as temp definitions.
    pub retained_defs: usize,
    /// `t = t + d·c` updates appended after injuries.
    pub updates: usize,
}

/// The outcome of strength reduction.
#[derive(Clone, Debug)]
pub struct StrengthResult {
    /// The transformed function (symbol table extends the input's).
    pub function: Function,
    /// The candidates, in universe order.
    pub candidates: Vec<Candidate>,
    /// `(universe index, temp)` for the materialised temporaries.
    pub temps: Vec<(usize, Var)>,
    /// Counters.
    pub stats: StrengthStats,
}

impl StrengthResult {
    /// The temporaries introduced.
    pub fn temp_vars(&self) -> Vec<Var> {
        self.temps.iter().map(|&(_, v)| v).collect()
    }
}

/// Collects the strength-reduction universe of `f`: distinct `v * c`
/// candidates in first-occurrence order.
pub fn candidates_of(f: &Function) -> Vec<Candidate> {
    let mut seen: HashMap<(Var, i64), ()> = HashMap::new();
    let mut out = Vec::new();
    for (_, _, e) in f.expr_occurrences() {
        if let Some(c) = Candidate::of_expr(e) {
            if seen.insert((c.var, c.coeff), ()).is_none() {
                out.push(c);
            }
        }
    }
    out
}

/// The injury-transparent local predicates plus, per candidate, whether
/// some block re-evaluates it in the same opaque-kill-free segment — a
/// *local* reuse opportunity (bridged by updates) that the global plan
/// cannot see, analogous to what LCSE handles for plain code motion.
struct SrLocals {
    preds: LocalPredicates,
    local_reuse: BitSet,
}

/// Computes the injury-transparent local predicates: an occurrence is
/// upward/downward exposed unless an **opaque** definition of its variable
/// intervenes; injuries do not kill.
fn sr_local_predicates(f: &Function, cands: &[Candidate]) -> SrLocals {
    let n = f.num_blocks();
    let width = cands.len();
    let mut antloc = vec![BitSet::new(width); n];
    let mut comp = vec![BitSet::new(width); n];
    let mut transp = vec![BitSet::full(width); n];
    let mut local_reuse = BitSet::new(width);
    for b in f.block_ids() {
        let bi = b.index();
        let mut killed_so_far = BitSet::new(width);
        let mut avail_now = BitSet::new(width);
        for &instr in &f.block(b).instrs {
            if let Instr::Assign {
                rv: Rvalue::Expr(e),
                ..
            } = instr
            {
                for (idx, cand) in cands.iter().enumerate() {
                    if !cand.matches(e) {
                        continue;
                    }
                    if !killed_so_far.contains(idx) {
                        antloc[bi].insert(idx);
                    }
                    if avail_now.contains(idx) {
                        local_reuse.insert(idx);
                    }
                    avail_now.insert(idx);
                }
            }
            for (idx, cand) in cands.iter().enumerate() {
                if effect_on(instr, cand.var) == Effect::Kill {
                    killed_so_far.insert(idx);
                    avail_now.remove(idx);
                    transp[bi].remove(idx);
                }
            }
        }
        comp[bi] = avail_now;
    }
    let kill = transp
        .iter()
        .map(|t| {
            let mut k = t.clone();
            k.complement();
            k
        })
        .collect();
    SrLocals {
        preds: LocalPredicates {
            antloc,
            comp,
            transp,
            kill,
        },
        local_reuse,
    }
}

/// Runs lazy strength reduction on `f`.
///
/// The analysis stage is literally lazy code motion over the restricted,
/// injury-transparent universe; the rewriting stage is code motion plus
/// update insertion after injuries.
///
/// ```
/// use lcm_core::strength::strength_reduce;
/// let f = lcm_ir::parse_function(
///     "fn s {\nentry:\n  x = i * 4\n  obs x\n  i = i + 1\n  y = i * 4\n  obs y\n  ret\n}",
/// )?;
/// let res = strength_reduce(&f);
/// assert_eq!(res.stats.updates, 1); // y is derived by t = t + 4
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn strength_reduce(f: &Function) -> StrengthResult {
    let cands = candidates_of(f);
    let uni = ExprUniverse::from_exprs(cands.iter().map(|c| c.repr()));
    let locals = sr_local_predicates(f, &cands);
    let ga = GlobalAnalyses::compute(f, &uni, &locals.preds)
        .expect("strength-reduction analyses converge on well-formed input");
    let lazy = lazy_edge_plan(f, &uni, &locals.preds, &ga)
        .expect("strength-reduction delay analysis converges on well-formed input");
    apply_sr_plan(f, &cands, &uni, &locals, &lazy.plan)
}

/// Applies a placement plan under strength-reduction semantics.
fn apply_sr_plan(
    f: &Function,
    cands: &[Candidate],
    uni: &ExprUniverse,
    locals: &SrLocals,
    plan: &PlacementPlan,
) -> StrengthResult {
    let local = &locals.preds;
    let tav = temp_availability(f, uni, local, plan);
    let delete = deletions(f, uni, local, plan, &tav);
    let tlive = temp_liveness(f, uni, local, plan, &delete);

    let mut out = f.clone();
    let mut stats = StrengthStats {
        candidates: cands.len(),
        ..StrengthStats::default()
    };

    // Materialise temps for candidates with any activity — or with an
    // injury crossing (a block where the temp flows through an injury):
    // those need the temp too, but only when something downstream uses it,
    // which is exactly "some insert or delete exists".
    let mut active = plan.inserted_exprs(uni);
    for d in &delete {
        active.union_with(d);
    }
    active.union_with(&locals.local_reuse);
    let mut temp_of: Vec<Option<Var>> = vec![None; cands.len()];
    let mut temps = Vec::new();
    for idx in active.iter() {
        let t = out.fresh_temp();
        temp_of[idx] = Some(t);
        temps.push((idx, t));
    }

    // Rewrite blocks.
    for b in f.block_ids() {
        rewrite_sr_block(
            &mut out,
            cands,
            b,
            &tav.ins[b.index()],
            &delete[b.index()],
            &tlive.outs[b.index()],
            &temp_of,
            &mut stats,
        );
    }

    // Insertions (entry + edges; the lazy edge plan uses nothing else).
    let make_init = |idx: usize| Instr::Assign {
        dst: temp_of[idx].expect("active candidate has a temp"),
        rv: Rvalue::Expr(cands[idx].repr()),
    };
    {
        let entry = out.entry();
        let mut init: Vec<Instr> = plan.entry_insert.iter().map(make_init).collect();
        stats.insertions += init.len();
        let body = &mut out.block_mut(entry).instrs;
        init.extend(body.iter().copied());
        *body = init;
    }
    let preds = out.preds();
    for (eid, edge) in plan.edges.iter() {
        let instrs: Vec<Instr> = plan.edge_inserts[eid.index()]
            .iter()
            .map(make_init)
            .collect();
        if instrs.is_empty() {
            continue;
        }
        stats.insertions += instrs.len();
        out.insert_on_edge(&preds, edge.from, edge.succ_index, &instrs);
    }

    StrengthResult {
        function: out,
        candidates: cands.to_vec(),
        temps,
        stats,
    }
}

#[allow(clippy::too_many_arguments)]
fn rewrite_sr_block(
    out: &mut Function,
    cands: &[Candidate],
    b: BlockId,
    tavin: &BitSet,
    delete: &BitSet,
    tliveout: &BitSet,
    temp_of: &[Option<Var>],
    stats: &mut StrengthStats,
) {
    let instrs = out.block(b).instrs.clone();

    // Backward prescan: is the value produced at position i consumed later
    // (another occurrence in the same opaque-kill-free segment, or
    // live-out)? Injuries do not break the segment — the update bridges
    // them.
    let mut needs_def = vec![false; instrs.len()];
    let mut later_use = tliveout.clone();
    for (i, &instr) in instrs.iter().enumerate().rev() {
        for (idx, cand) in cands.iter().enumerate() {
            if effect_on(instr, cand.var) == Effect::Kill {
                later_use.remove(idx);
            }
        }
        if let Instr::Assign {
            rv: Rvalue::Expr(e),
            ..
        } = instr
        {
            for (idx, cand) in cands.iter().enumerate() {
                if cand.matches(e) && temp_of[idx].is_some() {
                    needs_def[i] = needs_def[i] || later_use.contains(idx);
                    later_use.insert(idx);
                }
            }
        }
    }

    // Forward rewrite. `have_temp` starts from full temp availability (not
    // just deletions): injury blocks without occurrences still need their
    // updates emitted so the availability claim stays true downstream.
    let mut have_temp = tavin.clone();
    let _ = delete;
    let mut rewritten = Vec::with_capacity(instrs.len() + 4);
    for (i, &instr) in instrs.iter().enumerate() {
        // Occurrence handling.
        let mut replaced = false;
        if let Instr::Assign {
            dst,
            rv: Rvalue::Expr(e),
        } = instr
        {
            for (idx, cand) in cands.iter().enumerate() {
                let Some(t) = temp_of[idx] else { continue };
                if !cand.matches(e) {
                    continue;
                }
                if have_temp.contains(idx) {
                    rewritten.push(Instr::Assign {
                        dst,
                        rv: Rvalue::Operand(Operand::Var(t)),
                    });
                    stats.deletions += 1;
                } else if needs_def[i] {
                    rewritten.push(Instr::Assign {
                        dst: t,
                        rv: Rvalue::Expr(e),
                    });
                    rewritten.push(Instr::Assign {
                        dst,
                        rv: Rvalue::Operand(Operand::Var(t)),
                    });
                    have_temp.insert(idx);
                    stats.retained_defs += 1;
                } else {
                    rewritten.push(instr);
                }
                replaced = true;
                break;
            }
        }
        if !replaced {
            rewritten.push(instr);
        }
        // Effects: updates after injuries, clearing after opaque kills.
        for (idx, cand) in cands.iter().enumerate() {
            match effect_on(instr, cand.var) {
                Effect::None => {}
                Effect::Injury(d) => {
                    if let Some(t) = temp_of[idx] {
                        if have_temp.contains(idx) {
                            let delta = d.wrapping_mul(cand.coeff);
                            rewritten.push(Instr::Assign {
                                dst: t,
                                rv: Rvalue::Expr(Expr::Bin(
                                    BinOp::Add,
                                    Operand::Var(t),
                                    Operand::Const(delta),
                                )),
                            });
                            stats.updates += 1;
                        }
                    }
                }
                Effect::Kill => {
                    have_temp.remove(idx);
                }
            }
        }
    }
    out.block_mut(b).instrs = rewritten;
}

/// Counts the dynamic multiplications of the candidate expressions in an
/// execution — the quantity strength reduction minimises.
pub fn candidate_mults(exec: &lcm_interp::Execution, cands: &[Candidate]) -> u64 {
    cands
        .iter()
        .flat_map(|c| {
            [
                Expr::Bin(BinOp::Mul, Operand::Var(c.var), Operand::Const(c.coeff)),
                Expr::Bin(BinOp::Mul, Operand::Const(c.coeff), Operand::Var(c.var)),
            ]
        })
        .map(|e| exec.eval_count(e))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_interp::{observationally_equivalent, run, Inputs};
    use lcm_ir::parse_function;

    fn dowhile_loop() -> Function {
        parse_function(
            "fn sr {
             entry:
               i = 1
               n = 10
               jmp body
             body:
               x = i * 12
               obs x
               i = i + 1
               c = i < n
               br c, body, done
             done:
               ret
             }",
        )
        .unwrap()
    }

    #[test]
    fn reduces_the_classic_induction_loop() {
        let f = dowhile_loop();
        let res = strength_reduce(&f);
        lcm_ir::verify(&res.function).unwrap();
        assert_eq!(res.stats.candidates, 1);
        assert!(res.stats.updates >= 1, "injury must get an update");
        assert!(res.stats.deletions >= 1);

        let inputs = Inputs::new();
        assert!(observationally_equivalent(
            &f,
            &res.function,
            &inputs,
            100_000
        ));
        let before = run(&f, &inputs, 100_000);
        let after = run(&res.function, &inputs, 100_000);
        let mb = candidate_mults(&before, &res.candidates);
        let ma = candidate_mults(&after, &res.candidates);
        assert_eq!(mb, 9, "9 iterations each multiply");
        assert_eq!(ma, 1, "one initialisation multiply remains");
        // The trace is the arithmetic progression 12, 24, …
        assert_eq!(after.trace[0], 12);
        assert_eq!(after.trace[1], 24);
        assert_eq!(after.trace, before.trace);
    }

    #[test]
    fn zero_trip_loop_is_left_alone() {
        // The multiplication is not anticipated at the entry (the loop may
        // run zero times), so no insertion is safe — like plain LCM.
        let f = parse_function(
            "fn z {
             entry:
               jmp head
             head:
               br n, body, done
             body:
               x = i * 8
               obs x
               i = i + 1
               n = n - 1
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        let res = strength_reduce(&f);
        assert_eq!(res.stats.insertions, 0);
        // In-loop the occurrence is partially redundant modulo injury via
        // the back edge, but with no safe pre-loop insertion the occurrence
        // stays (it may become the definition for later iterations —
        // which is still a win: updates bridge the back edge).
        let inputs = Inputs::new().set("n", 5);
        assert!(observationally_equivalent(
            &f,
            &res.function,
            &inputs,
            100_000
        ));
        let before = run(&f, &inputs, 100_000);
        let after = run(&res.function, &inputs, 100_000);
        assert!(
            candidate_mults(&after, &res.candidates) <= candidate_mults(&before, &res.candidates)
        );
    }

    #[test]
    fn subtraction_injuries_update_downward() {
        let f = parse_function(
            "fn down {
             entry:
               i = 10
               jmp body
             body:
               x = 3 * i
               obs x
               i = i - 2
               br i, body, done
             done:
               ret
             }",
        )
        .unwrap();
        let res = strength_reduce(&f);
        let inputs = Inputs::new();
        assert!(observationally_equivalent(
            &f,
            &res.function,
            &inputs,
            100_000
        ));
        let after = run(&res.function, &inputs, 100_000);
        assert_eq!(candidate_mults(&after, &res.candidates), 1);
        assert_eq!(after.trace, vec![30, 24, 18, 12, 6]);
    }

    #[test]
    fn opaque_redefinitions_still_kill() {
        // i = i * 2 is not an injury; the candidate must be re-established.
        let f = parse_function(
            "fn opaque {
             entry:
               i = 3
               x = i * 5
               obs x
               i = i * 2
               y = i * 5
               obs y
               ret
             }",
        )
        .unwrap();
        let res = strength_reduce(&f);
        let inputs = Inputs::new();
        assert!(observationally_equivalent(
            &f,
            &res.function,
            &inputs,
            1_000
        ));
        let after = run(&res.function, &inputs, 1_000);
        assert_eq!(after.trace, vec![15, 30]);
        // All three multiplications must still happen (no update can
        // bridge *2, and `i = i * 2` is itself the candidate (i, 2)).
        assert_eq!(res.candidates.len(), 2);
        assert_eq!(candidate_mults(&after, &res.candidates), 3);
    }

    #[test]
    fn straightline_injury_chain_collapses_to_one_multiply() {
        let f = parse_function(
            "fn chain {
             entry:
               a = i * 4
               obs a
               i = i + 1
               b = i * 4
               obs b
               i = i + 3
               c = i * 4
               obs c
               ret
             }",
        )
        .unwrap();
        let res = strength_reduce(&f);
        let inputs = Inputs::new().set("i", 2);
        assert!(observationally_equivalent(
            &f,
            &res.function,
            &inputs,
            1_000
        ));
        let after = run(&res.function, &inputs, 1_000);
        assert_eq!(after.trace, vec![8, 12, 24]);
        assert_eq!(candidate_mults(&after, &res.candidates), 1);
        assert_eq!(res.stats.updates, 2);
    }

    #[test]
    fn candidate_matching_handles_both_orders() {
        let c = Candidate {
            var: Var(3),
            coeff: 7,
        };
        assert!(c.matches(Expr::Bin(
            BinOp::Mul,
            Operand::Var(Var(3)),
            Operand::Const(7)
        )));
        assert!(c.matches(Expr::Bin(
            BinOp::Mul,
            Operand::Const(7),
            Operand::Var(Var(3))
        )));
        assert!(!c.matches(Expr::Bin(
            BinOp::Mul,
            Operand::Var(Var(3)),
            Operand::Const(8)
        )));
        assert!(!c.matches(Expr::Bin(
            BinOp::Add,
            Operand::Var(Var(3)),
            Operand::Const(7)
        )));
        assert_eq!(
            Candidate::of_expr(Expr::Bin(
                BinOp::Mul,
                Operand::Const(7),
                Operand::Var(Var(3))
            )),
            Some(c)
        );
    }

    #[test]
    fn effects_are_classified_correctly() {
        let v = Var(0);
        let mk = |rv| Instr::Assign { dst: v, rv };
        assert_eq!(
            effect_on(
                mk(Rvalue::Expr(Expr::Bin(
                    BinOp::Add,
                    Operand::Var(v),
                    Operand::Const(4)
                ))),
                v
            ),
            Effect::Injury(4)
        );
        assert_eq!(
            effect_on(
                mk(Rvalue::Expr(Expr::Bin(
                    BinOp::Sub,
                    Operand::Var(v),
                    Operand::Const(4)
                ))),
                v
            ),
            Effect::Injury(-4)
        );
        // d - v is not an injury.
        assert_eq!(
            effect_on(
                mk(Rvalue::Expr(Expr::Bin(
                    BinOp::Sub,
                    Operand::Const(4),
                    Operand::Var(v)
                ))),
                v
            ),
            Effect::Kill
        );
        assert_eq!(
            effect_on(mk(Rvalue::Operand(Operand::Const(1))), v),
            Effect::Kill
        );
        assert_eq!(
            effect_on(mk(Rvalue::Operand(Operand::Const(1))), Var(9)),
            Effect::None
        );
        assert_eq!(effect_on(Instr::Observe(Operand::Var(v)), v), Effect::None);
    }
}
