//! The global analyses of the paper: up-safety (availability), down-safety
//! (anticipability), their "partial" may-variants, and earliestness.
//!
//! Terminology note. The paper says *down-safe* where classical dataflow
//! says *anticipatable* (on every path from here the expression is computed
//! before its operands change) and *up-safe* where classical dataflow says
//! *available* (on every path to here the expression has been computed
//! after the last change of its operands). Insertions are **safe** at a
//! point iff the point is down-safe or up-safe; inserting anywhere else can
//! introduce a computation on a path that never needed it, which classic
//! PRE forbids.

use lcm_dataflow::{
    BitSet, CfgView, Confluence, Direction, Problem, Solution, SolveStats, SolveStrategy,
    SolverDiverged, SolverScratch, Transfer,
};
use lcm_ir::{Edge, EdgeList, Function};

use crate::predicates::LocalPredicates;
use crate::universe::ExprUniverse;

/// Builds the transfer functions `out = gen ∪ (in − ¬TRANSP)` common to all
/// four analyses; only the gen side differs.
fn transfers(gen: &[BitSet], local: &LocalPredicates) -> Vec<Transfer> {
    gen.iter()
        .zip(&local.kill)
        .map(|(g, k)| Transfer {
            gen: g.clone(),
            kill: k.clone(),
        })
        .collect()
}

/// The availability dataflow problem, for callers that pick their own
/// solver (see [`availability`] for the equations).
pub fn availability_problem<'f>(
    f: &'f Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Problem<'f> {
    Problem::new(
        f,
        uni.len(),
        Direction::Forward,
        Confluence::Must,
        transfers(&local.comp, local),
    )
    .with_name("availability")
}

/// The anticipability dataflow problem, for callers that pick their own
/// solver (see [`anticipability`] for the equations).
pub fn anticipability_problem<'f>(
    f: &'f Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Problem<'f> {
    Problem::new(
        f,
        uni.len(),
        Direction::Backward,
        Confluence::Must,
        transfers(&local.antloc, local),
    )
    .with_name("anticipability")
}

/// Up-safety / availability. `AVIN[b]` / `AVOUT[b]`: `e` has been computed
/// on **every** path reaching the point, and not killed since.
///
/// `AVOUT = COMP ∪ (AVIN ∩ TRANSP)`, `AVIN = ∩ AVOUT(preds)`,
/// `AVIN[entry] = ∅`.
///
/// # Errors
///
/// Returns [`SolverDiverged`] if the fixpoint iteration exceeds its sweep
/// budget (impossible for this monotone system unless its inputs were
/// corrupted).
pub fn availability(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Result<Solution, SolverDiverged> {
    availability_problem(f, uni, local).try_solve()
}

/// Down-safety / anticipability. `ANTIN[b]` / `ANTOUT[b]`: on **every**
/// path from the point, `e` is computed before any operand changes.
///
/// `ANTIN = ANTLOC ∪ (ANTOUT ∩ TRANSP)`, `ANTOUT = ∩ ANTIN(succs)`,
/// `ANTOUT[exit] = ∅`.
///
/// # Errors
///
/// Returns [`SolverDiverged`] if the fixpoint iteration exceeds its sweep
/// budget.
pub fn anticipability(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Result<Solution, SolverDiverged> {
    anticipability_problem(f, uni, local).try_solve()
}

/// Partial availability (may-variant of [`availability`]): computed on
/// **some** path. Used by the Morel–Renvoise baseline.
///
/// # Errors
///
/// Returns [`SolverDiverged`] if the fixpoint iteration exceeds its sweep
/// budget.
pub fn partial_availability(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Result<Solution, SolverDiverged> {
    Problem::new(
        f,
        uni.len(),
        Direction::Forward,
        Confluence::May,
        transfers(&local.comp, local),
    )
    .with_name("partial-availability")
    .try_solve()
}

/// Partial anticipability (may-variant of [`anticipability`]): computed on
/// **some** continuation. Provided for completeness and speculative-PRE
/// comparisons.
///
/// # Errors
///
/// Returns [`SolverDiverged`] if the fixpoint iteration exceeds its sweep
/// budget.
pub fn partial_anticipability(
    f: &Function,
    uni: &ExprUniverse,
    local: &LocalPredicates,
) -> Result<Solution, SolverDiverged> {
    Problem::new(
        f,
        uni.len(),
        Direction::Backward,
        Confluence::May,
        transfers(&local.antloc, local),
    )
    .with_name("partial-anticipability")
    .try_solve()
}

/// The bundle of solutions every placement algorithm starts from, plus the
/// per-edge EARLIEST predicate.
#[derive(Clone, Debug)]
pub struct GlobalAnalyses {
    /// The dense numbering of the function's control-flow edges that all
    /// edge-indexed vectors below use.
    pub edges: EdgeList,
    /// Availability (up-safety) fixpoint.
    pub avail: Solution,
    /// Anticipability (down-safety) fixpoint.
    pub antic: Solution,
    /// `EARLIEST[e]` per edge: the earliest safe insertion points.
    pub earliest: Vec<BitSet>,
    /// `EARLIEST` for the *virtual entry edge* (insertion at the very top
    /// of the entry block): `ANTIN[entry]` (nothing is available above the
    /// entry).
    pub earliest_entry: BitSet,
    /// Accumulated solver statistics (both analyses).
    pub stats: SolveStats,
}

impl GlobalAnalyses {
    /// Runs availability and anticipability over `f` and derives the
    /// earliestness predicate.
    ///
    /// An insertion of `e` on edge `(i, j)` is *earliest* iff it is
    /// down-safe at `j`'s entry, not already available out of `i`, and
    /// cannot be moved further up through `i` (either `i` kills `e`, or
    /// `i`'s exit is not down-safe — moving up would be unsafe):
    ///
    /// ```text
    /// EARLIEST(i,j) = ANTIN[j] ∩ ¬AVOUT[i] ∩ (¬TRANSP[i] ∪ ¬ANTOUT[i])
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if either fixpoint iteration exceeds its
    /// sweep budget.
    pub fn compute(
        f: &Function,
        uni: &ExprUniverse,
        local: &LocalPredicates,
    ) -> Result<Self, SolverDiverged> {
        let avail = availability(f, uni, local)?;
        let antic = anticipability(f, uni, local)?;
        Ok(Self::derive(f, uni, local, avail, antic))
    }

    /// The fused-pipeline variant of [`compute`](Self::compute): both
    /// analyses run on the change-driven worklist solver against a shared
    /// [`CfgView`]. Reaches the same fixpoints (the framework is monotone),
    /// typically with fewer node visits and word operations.
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if either fixpoint iteration exceeds its
    /// pop budget.
    pub fn compute_in(
        f: &Function,
        uni: &ExprUniverse,
        local: &LocalPredicates,
        view: &CfgView,
    ) -> Result<Self, SolverDiverged> {
        let avail = availability_problem(f, uni, local).try_solve_worklist_in(view)?;
        let antic = anticipability_problem(f, uni, local).try_solve_worklist_in(view)?;
        Ok(Self::derive(f, uni, local, avail, antic))
    }

    /// Like [`compute_in`](Self::compute_in), but with an explicit
    /// [`SolveStrategy`] and a caller-owned [`SolverScratch`] reused by both
    /// solves (and, in the fused pipeline, by the LATER solve after them) —
    /// the zero-allocation batch path.
    ///
    /// # Errors
    ///
    /// Returns [`SolverDiverged`] if either fixpoint iteration exceeds its
    /// pop budget.
    pub fn compute_with(
        f: &Function,
        uni: &ExprUniverse,
        local: &LocalPredicates,
        view: &CfgView,
        strategy: SolveStrategy,
        scratch: &mut SolverScratch,
    ) -> Result<Self, SolverDiverged> {
        let avail = availability_problem(f, uni, local).try_solve_with(strategy, view, scratch)?;
        let antic =
            anticipability_problem(f, uni, local).try_solve_with(strategy, view, scratch)?;
        Ok(Self::derive(f, uni, local, avail, antic))
    }

    pub(crate) fn derive(
        f: &Function,
        uni: &ExprUniverse,
        local: &LocalPredicates,
        avail: Solution,
        antic: Solution,
    ) -> Self {
        let edges = EdgeList::new(f);
        let mut stats = avail.stats;
        stats += antic.stats;

        let mut earliest = Vec::with_capacity(edges.len());
        for (_, edge) in edges.iter() {
            earliest.push(earliest_on_edge(uni, local, &avail, &antic, edge));
        }
        let earliest_entry = antic.ins.row_set(f.entry().index());
        GlobalAnalyses {
            edges,
            avail,
            antic,
            earliest,
            earliest_entry,
            stats,
        }
    }
}

pub(crate) fn earliest_on_edge(
    uni: &ExprUniverse,
    local: &LocalPredicates,
    avail: &Solution,
    antic: &Solution,
    edge: Edge,
) -> BitSet {
    let i = edge.from.index();
    let j = edge.to.index();
    // ¬TRANSP[i] ∪ ¬ANTOUT[i]  ==  ¬(TRANSP[i] ∩ ANTOUT[i])
    let mut blockable = local.transp[i].clone();
    blockable.intersect_with_row(antic.outs.row(i));
    blockable.complement();

    let mut out = antic.ins.row_set(j);
    out.difference_with_row(avail.outs.row(i));
    out.intersect_with(&blockable);
    let _ = uni;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    fn setup(text: &str) -> (Function, ExprUniverse, LocalPredicates) {
        let f = parse_function(text).unwrap();
        let uni = ExprUniverse::of(&f);
        let local = LocalPredicates::compute(&f, &uni);
        (f, uni, local)
    }

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    #[test]
    fn availability_needs_all_paths() {
        let (f, uni, local) = setup(DIAMOND);
        let av = availability(&f, &uni, &local).unwrap();
        let join = f.block_by_name("join").unwrap();
        let l = f.block_by_name("l").unwrap();
        assert!(av.outs.contains(l.index(), 0));
        assert!(!av.ins.contains(join.index(), 0)); // only one arm computes
        let pav = partial_availability(&f, &uni, &local).unwrap();
        assert!(pav.ins.contains(join.index(), 0)); // some path computes
    }

    #[test]
    fn anticipability_flows_up_to_branch() {
        let (f, uni, local) = setup(DIAMOND);
        let ant = anticipability(&f, &uni, &local).unwrap();
        let join = f.block_by_name("join").unwrap();
        let r = f.block_by_name("r").unwrap();
        assert!(ant.ins.contains(join.index(), 0));
        assert!(ant.ins.contains(r.index(), 0)); // empty arm, ANTIN via join
        assert!(ant.ins.contains(f.entry().index(), 0)); // both arms reach it
    }

    #[test]
    fn anticipability_blocked_by_kill() {
        let (f, uni, local) = setup(
            "fn k {
             entry:
               br c, l, r
             l:
               a = 1
               x = a + b
               jmp join
             r:
               jmp join
             join:
               y = a + b
               obs y
               ret
             }",
        );
        let ant = anticipability(&f, &uni, &local).unwrap();
        // Through l the expression is killed before being computed with the
        // entry value of a, so it is not anticipatable at the branch.
        assert!(!ant.ins.contains(f.entry().index(), 0));
        let pant = partial_anticipability(&f, &uni, &local).unwrap();
        assert!(pant.ins.contains(f.entry().index(), 0));
    }

    #[test]
    fn earliest_lands_on_the_empty_arm() {
        let (f, uni, local) = setup(DIAMOND);
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let r = f.block_by_name("r").unwrap();
        let l = f.block_by_name("l").unwrap();
        let join = f.block_by_name("join").unwrap();
        // Edge entry→r is earliest (e anticipated at r, unavailable out of
        // entry, and entry's exit anticipates it so… third term: entry is
        // transparent and ANTOUT holds, so NOT earliest there; the virtual
        // entry edge is earliest instead.
        let find = |from, to| {
            ga.edges
                .iter()
                .find(|(_, e)| e.from == from && e.to == to)
                .map(|(id, _)| id)
                .unwrap()
        };
        assert!(ga.earliest_entry.contains(0));
        let e_entry_r = find(f.entry(), r);
        assert!(!ga.earliest[e_entry_r.index()].contains(0));
        // l computes a+b, so the edge l→join is not earliest (available).
        let e_l_join = find(l, join);
        assert!(!ga.earliest[e_l_join.index()].contains(0));
        // r→join: not available out of r and r's exit is down-safe with r
        // transparent… third term again blocks; insertion belongs above.
        // (Earliest placement for the whole diamond is the entry top.)
        let e_r_join = find(r, join);
        assert!(!ga.earliest[e_r_join.index()].contains(0));
    }

    #[test]
    fn earliest_appears_after_a_kill() {
        let (f, uni, local) = setup(
            "fn k {
             entry:
               a = c * 2
               jmp mid
             mid:
               x = a + b
               jmp next
             next:
               a = 5
               jmp last
             last:
               y = a + b
               obs y
               ret
             }",
        );
        let ga = GlobalAnalyses::compute(&f, &uni, &local).unwrap();
        let uni_idx = uni
            .iter()
            .find(|(_, e)| f.display_expr(*e) == "a + b")
            .map(|(i, _)| i)
            .unwrap();
        // a + b is killed in `next`; the edge next→last must be earliest.
        let next = f.block_by_name("next").unwrap();
        let last = f.block_by_name("last").unwrap();
        let (id, _) = ga
            .edges
            .iter()
            .find(|(_, e)| e.from == next && e.to == last)
            .unwrap();
        assert!(ga.earliest[id.index()].contains(uni_idx));
        // And the entry's virtual edge is *not* earliest for a+b: the
        // entry block kills a first (a = c * 2), so ANTIN[entry] is false.
        assert!(!ga.earliest_entry.contains(uni_idx));
    }
}
