//! Local common-subexpression elimination (block-scoped value reuse).
//!
//! Within one basic block, a recomputation of an expression whose operands
//! are unchanged is replaced by a copy of the previously computed value.
//! When the variable that held the value has itself been overwritten, a
//! fresh temporary is introduced at the first computation
//! (`t = e; v = t; …; w = t`), so the pass always leaves blocks in the
//! *canonical* form the paper assumes: per expression, at most one
//! evaluation between consecutive kills — equivalently, at most one
//! upward-exposed and one downward-exposed evaluation per block.

use std::collections::HashMap;

use lcm_ir::{Expr, Function, Instr, Operand, Rvalue, Var};

/// Runs LCSE on every block of `f`; returns the number of re-computations
/// replaced by copies.
///
/// ```
/// use lcm_core::passes::lcse;
/// let mut f = lcm_ir::parse_function(
///     "fn l {\nentry:\n  x = a + b\n  y = a + b\n  obs y\n  ret\n}",
/// )?;
/// assert_eq!(lcse(&mut f), 1);
/// assert_eq!(f.expr_occurrences().count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lcse(f: &mut Function) -> usize {
    let mut replaced = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let instrs = f.block(b).instrs.clone();

        // Backward prescan: `reused_later[i]` — the value computed by the
        // occurrence at `i` is recomputed later in the same kill-free
        // segment (so it is worth pinning in a temporary).
        let mut reused_later = vec![false; instrs.len()];
        let mut pending: HashMap<Expr, bool> = HashMap::new();
        for (i, instr) in instrs.iter().enumerate().rev() {
            // The destination kill happens after the rhs, so process it
            // first when walking backwards.
            if let Some(dst) = instr.def() {
                pending.retain(|e, _| !e.mentions(dst));
            }
            if instr.kills_memory() {
                pending.retain(|e, _| !matches!(e, Expr::Mem(_)));
            }
            if let Instr::Assign {
                rv: Rvalue::Expr(e),
                ..
            } = instr
            {
                reused_later[i] = pending.contains_key(e);
                pending.insert(*e, true);
            }
        }

        // Forward rewrite: `holder[e]` is a variable currently carrying
        // `e`'s value (a fresh temp, so it can never be clobbered by the
        // original code).
        let mut holder: HashMap<Expr, Var> = HashMap::new();
        let mut rewritten = Vec::with_capacity(instrs.len() + 4);
        for (i, instr) in instrs.iter().enumerate() {
            match *instr {
                Instr::Assign {
                    dst,
                    rv: Rvalue::Expr(e),
                } => {
                    if let Some(&h) = holder.get(&e) {
                        replaced += 1;
                        rewritten.push(Instr::Assign {
                            dst,
                            rv: Rvalue::Operand(Operand::Var(h)),
                        });
                    } else if reused_later[i] && !e.mentions(dst) {
                        let t = f.fresh_temp();
                        rewritten.push(Instr::Assign {
                            dst: t,
                            rv: Rvalue::Expr(e),
                        });
                        rewritten.push(Instr::Assign {
                            dst,
                            rv: Rvalue::Operand(Operand::Var(t)),
                        });
                        holder.insert(e, t);
                    } else {
                        rewritten.push(*instr);
                    }
                }
                _ => rewritten.push(*instr),
            }
            if let Some(dst) = instr.def() {
                holder.retain(|e, _| !e.mentions(dst));
            }
            // A memory write invalidates held load values (may-alias).
            if instr.kills_memory() {
                holder.retain(|e, _| !matches!(e, Expr::Mem(_)));
            }
        }
        f.block_mut(b).instrs = rewritten;
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn reuses_within_a_block() {
        let mut f = parse_function(
            "fn l {
             entry:
               x = a + b
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut f), 1);
        assert_eq!(f.expr_occurrences().count(), 1);
        // Semantics preserved.
        let out = lcm_interp::run(&f, &lcm_interp::Inputs::new().set("a", 2).set("b", 5), 100);
        assert_eq!(out.trace, vec![7]);
    }

    #[test]
    fn survives_holder_clobbering_via_a_temp() {
        // e (the holder of d ^ c) is overwritten before the recomputation;
        // the pass must pin the value in a temp.
        let mut f = parse_function(
            "fn h {
             entry:
               e = d ^ c
               e = a
               g = d ^ c
               obs e
               obs g
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut f), 1);
        assert_eq!(f.expr_occurrences().count(), 1);
        let out = lcm_interp::run(
            &f,
            &lcm_interp::Inputs::new()
                .set("d", 6)
                .set("c", 3)
                .set("a", -1),
            100,
        );
        assert_eq!(out.trace, vec![-1, 5]);
    }

    #[test]
    fn kill_invalidates_reuse() {
        let mut f = parse_function(
            "fn k {
             entry:
               x = a + b
               a = 1
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut f), 0);
        assert_eq!(f.expr_occurrences().count(), 2);
    }

    #[test]
    fn self_killing_computation_is_not_reused() {
        // a = a + b kills its own expression; the next occurrence computes
        // a different value.
        let mut f = parse_function(
            "fn s {
             entry:
               a = a + b
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut f), 0);
    }

    #[test]
    fn canonicalises_triple_occurrences() {
        let mut f = parse_function(
            "fn t {
             entry:
               x = a + b
               x = 0
               y = a + b
               z = a + b
               obs x
               obs y
               obs z
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut f), 2);
        assert_eq!(f.expr_occurrences().count(), 1);
        let out = lcm_interp::run(&f, &lcm_interp::Inputs::new().set("a", 1).set("b", 2), 100);
        assert_eq!(out.trace, vec![0, 3, 3]);
    }

    #[test]
    fn does_not_cross_blocks() {
        let mut f = parse_function(
            "fn c {
             entry:
               x = a + b
               jmp next
             next:
               y = a + b
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut f), 0);
    }

    #[test]
    fn store_blocks_load_reuse() {
        let mut f = parse_function(
            "fn m {
             entry:
               x = load p
               store p, 9
               y = load p
               obs x
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut f), 0);
        // Without the intervening store the second load is a reuse.
        let mut g = parse_function(
            "fn m2 {
             entry:
               x = load p
               y = load p
               obs x
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut g), 1);
        // A pure call does not block reuse; an impure one does.
        let mut h = parse_function(
            "fn m3 {
             entry:
               x = load p
               m = call min(x, 1)
               y = load p
               obs m
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut h), 1);
        let mut k = parse_function(
            "fn m4 {
             entry:
               x = load p
               m = call bump(q, 1)
               y = load p
               obs m
               obs x
               obs y
               ret
             }",
        )
        .unwrap();
        assert_eq!(lcse(&mut k), 0);
    }

    #[test]
    fn idempotent() {
        let mut f = parse_function(
            "fn i {
             entry:
               e = d ^ c
               e = a
               g = d ^ c
               obs g
               ret
             }",
        )
        .unwrap();
        lcse(&mut f);
        let once = f.to_string();
        assert_eq!(lcse(&mut f), 0);
        assert_eq!(f.to_string(), once);
    }
}
