//! Global copy propagation (available-copies analysis).
//!
//! A use of `u` is replaced by `s` when the copy `u = s` is *available*:
//! it was executed on every path to the use and neither `u` nor `s` has
//! been redefined since. The analysis is a forward must-problem over the
//! function's copy *sites*; within blocks a local walk keeps the
//! substitution map exact. Chained copies (`t = x; u = t; … u …`)
//! collapse to the original source when all links are simultaneously
//! available.
//!
//! This is the clean-up that dissolves the `t := e; v := t` pairs the PRE
//! rewriter leaves at retained occurrences.

use std::collections::HashMap;

use lcm_dataflow::{BitSet, Confluence, Direction, Problem, Transfer};
use lcm_ir::{Expr, Function, Instr, Operand, Rvalue, Terminator, Var};

/// A var-to-var copy site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Site {
    dst: Var,
    src: Var,
}

fn copy_of(instr: Instr) -> Option<Site> {
    match instr {
        Instr::Assign {
            dst,
            rv: Rvalue::Operand(Operand::Var(src)),
        } if dst != src => Some(Site { dst, src }),
        _ => None,
    }
}

/// Runs global copy propagation on `f`; returns the number of operand
/// uses rewritten.
///
/// ```
/// use lcm_core::passes::copy_propagation;
/// let mut f = lcm_ir::parse_function(
///     "fn c {\nentry:\n  t = x\n  jmp next\nnext:\n  obs t\n  ret\n}",
/// )?;
/// assert_eq!(copy_propagation(&mut f), 1);
/// assert!(f.to_string().contains("obs x"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn copy_propagation(f: &mut Function) -> usize {
    // Collect the copy sites (deduplicated: identical (dst, src) pairs
    // share availability).
    let mut sites: Vec<Site> = Vec::new();
    let mut site_index: HashMap<(Var, Var), usize> = HashMap::new();
    for b in f.block_ids() {
        for &instr in &f.block(b).instrs {
            if let Some(site) = copy_of(instr) {
                site_index.entry((site.dst, site.src)).or_insert_with(|| {
                    sites.push(site);
                    sites.len() - 1
                });
            }
        }
    }
    if sites.is_empty() {
        return 0;
    }
    let nsites = sites.len();
    // Which sites a definition of `v` invalidates.
    let mut killed_by: HashMap<Var, Vec<usize>> = HashMap::new();
    for (i, s) in sites.iter().enumerate() {
        killed_by.entry(s.dst).or_default().push(i);
        if s.src != s.dst {
            killed_by.entry(s.src).or_default().push(i);
        }
    }

    // Per-block gen/kill by a local forward walk.
    let transfer: Vec<Transfer> = f
        .block_ids()
        .map(|b| {
            let mut t = Transfer::identity(nsites);
            for &instr in &f.block(b).instrs {
                if let Some(dst) = instr.def() {
                    for &i in killed_by.get(&dst).map_or(&[][..], |v| v.as_slice()) {
                        t.gen.remove(i);
                        t.kill.insert(i);
                    }
                }
                if let Some(site) = copy_of(instr) {
                    let i = site_index[&(site.dst, site.src)];
                    t.gen.insert(i);
                    t.kill.remove(i);
                }
            }
            t
        })
        .collect();
    let avail = Problem::new(f, nsites, Direction::Forward, Confluence::Must, transfer).solve();

    // Rewrite, tracking the exact available set through each block.
    let mut rewrites = 0usize;
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut live: BitSet = avail.ins.row_set(b.index());
        // var → source under the current available set. Consistent: two
        // available copies with the same dst would require the later one's
        // def to kill the earlier.
        let mut map: HashMap<Var, Var> = HashMap::new();
        for i in live.iter() {
            map.insert(sites[i].dst, sites[i].src);
        }
        let resolve = |map: &HashMap<Var, Var>, mut v: Var| -> Var {
            let mut hops = 0;
            while let Some(&s) = map.get(&v) {
                v = s;
                hops += 1;
                if hops > map.len() {
                    break; // defensive: cyclic copies cannot be available, but cap anyway
                }
            }
            v
        };
        let subst = |map: &HashMap<Var, Var>, op: Operand, rewrites: &mut usize| -> Operand {
            if let Operand::Var(v) = op {
                let r = resolve(map, v);
                if r != v {
                    *rewrites += 1;
                    return Operand::Var(r);
                }
            }
            op
        };

        let instrs = f.block(b).instrs.clone();
        let mut rewritten = Vec::with_capacity(instrs.len());
        for instr in instrs {
            let new_instr = match instr {
                Instr::Assign { dst, rv } => {
                    let rv = match rv {
                        Rvalue::Operand(o) => Rvalue::Operand(subst(&map, o, &mut rewrites)),
                        Rvalue::Expr(Expr::Un(op, a)) => {
                            Rvalue::Expr(Expr::Un(op, subst(&map, a, &mut rewrites)))
                        }
                        Rvalue::Expr(Expr::Bin(op, a, c)) => Rvalue::Expr(Expr::Bin(
                            op,
                            subst(&map, a, &mut rewrites),
                            subst(&map, c, &mut rewrites),
                        )),
                        Rvalue::Expr(Expr::Mem(a)) => {
                            Rvalue::Expr(Expr::Mem(subst(&map, a, &mut rewrites)))
                        }
                    };
                    Instr::Assign { dst, rv }
                }
                Instr::Store { addr, val } => Instr::Store {
                    addr: subst(&map, addr, &mut rewrites),
                    val: subst(&map, val, &mut rewrites),
                },
                Instr::Call { dst, callee, args } => Instr::Call {
                    dst,
                    callee,
                    args: [
                        subst(&map, args[0], &mut rewrites),
                        subst(&map, args[1], &mut rewrites),
                    ],
                },
                Instr::Observe(o) => Instr::Observe(subst(&map, o, &mut rewrites)),
            };
            rewritten.push(new_instr);
            if let Some(dst) = new_instr.def() {
                map.retain(|k, v| *k != dst && *v != dst);
                for &i in killed_by.get(&dst).map_or(&[][..], |v| v.as_slice()) {
                    live.remove(i);
                }
                if let Some(site) = copy_of(new_instr) {
                    map.insert(site.dst, site.src);
                }
            }
        }
        // Branch conditions read the block-exit state.
        if let Terminator::Branch {
            cond,
            then_to,
            else_to,
        } = f.block(b).term
        {
            let new_cond = subst(&map, cond, &mut rewrites);
            f.block_mut(b).term = Terminator::Branch {
                cond: new_cond,
                then_to,
                else_to,
            };
        }
        f.block_mut(b).instrs = rewritten;
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn propagates_within_a_block() {
        let mut f = parse_function(
            "fn p {
             entry:
               t = x
               y = t + 1
               obs t
               ret
             }",
        )
        .unwrap();
        assert_eq!(copy_propagation(&mut f), 2);
        let text = f.to_string();
        assert!(text.contains("y = x + 1"));
        assert!(text.contains("obs x"));
    }

    #[test]
    fn propagates_across_blocks() {
        let mut f = parse_function(
            "fn g {
             entry:
               t = x
               jmp mid
             mid:
               y = t + 1
               jmp last
             last:
               obs t
               ret
             }",
        )
        .unwrap();
        assert_eq!(copy_propagation(&mut f), 2);
        assert!(f.to_string().contains("y = x + 1"));
        assert!(f.to_string().contains("obs x"));
    }

    #[test]
    fn must_hold_on_all_paths() {
        // The copy exists on only one arm: the join must not propagate.
        let mut f = parse_function(
            "fn m {
             entry:
               br c, l, r
             l:
               t = x
               jmp j
             r:
               t = y
               jmp j
             j:
               obs t
               ret
             }",
        )
        .unwrap();
        assert_eq!(copy_propagation(&mut f), 0);
    }

    #[test]
    fn source_redefinition_blocks_propagation() {
        let mut f = parse_function(
            "fn s {
             entry:
               t = x
               jmp mid
             mid:
               x = 0
               obs t
               ret
             }",
        )
        .unwrap();
        assert_eq!(copy_propagation(&mut f), 0);
    }

    #[test]
    fn chains_collapse_globally() {
        let mut f = parse_function(
            "fn ch {
             entry:
               t = x
               u = t
               jmp mid
             mid:
               obs u
               ret
             }",
        )
        .unwrap();
        // u = t becomes u = x; obs u becomes obs x.
        assert!(copy_propagation(&mut f) >= 2);
        assert!(f.to_string().contains("obs x"));
    }

    #[test]
    fn branch_conditions_are_propagated() {
        let mut f = parse_function(
            "fn b {
             entry:
               t = c
               br t, l, r
             l:
               jmp r
             r:
               ret
             }",
        )
        .unwrap();
        assert_eq!(copy_propagation(&mut f), 1);
        assert!(f.to_string().contains("br c, l, r"));
    }

    #[test]
    fn copies_survive_loops_when_untouched() {
        let mut f = parse_function(
            "fn l {
             entry:
               t = x
               i = 3
               jmp head
             head:
               br i, body, done
             body:
               y = t + 1
               obs y
               i = i - 1
               jmp head
             done:
               obs t
               ret
             }",
        )
        .unwrap();
        assert_eq!(copy_propagation(&mut f), 2);
        assert!(f.to_string().contains("y = x + 1"));
    }

    #[test]
    fn loop_carried_redefinition_blocks() {
        let mut f = parse_function(
            "fn lc {
             entry:
               t = x
               i = 3
               jmp head
             head:
               br i, body, done
             body:
               obs t
               x = x + 1
               i = i - 1
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        // x changes inside the loop, so `t = x` is not available at the
        // loop head (around the back edge) and `obs t` must stay.
        assert_eq!(copy_propagation(&mut f), 0);
    }

    #[test]
    fn propagates_into_memory_operands() {
        let mut f = parse_function(
            "fn m {
             entry:
               t = p
               x = load t
               store t, x
               y = call bump(t, x)
               obs y
               ret
             }",
        )
        .unwrap();
        // t → p in the load address, the store address, and the call
        // argument.
        assert_eq!(copy_propagation(&mut f), 3);
        let text = f.to_string();
        assert!(text.contains("x = load p"));
        assert!(text.contains("store p, x"));
        assert!(text.contains("call bump(p, x)"));
    }

    #[test]
    fn call_destination_kills_copies() {
        let mut f = parse_function(
            "fn k {
             entry:
               t = x
               t = call bump(q, 1)
               obs t
               ret
             }",
        )
        .unwrap();
        // The call redefines t, so `obs t` must not become `obs x`.
        assert_eq!(copy_propagation(&mut f), 0);
    }

    #[test]
    fn self_copy_is_ignored() {
        let mut f = parse_function("fn s {\nentry:\n  x = x\n  obs x\n  ret\n}").unwrap();
        assert_eq!(copy_propagation(&mut f), 0);
    }
}
