//! Supporting scalar optimisations.
//!
//! The paper assumes local common-subexpression elimination has run before
//! code motion ([`lcse`]); [`copy_propagation`] and [`dce`] are the
//! clean-up passes production compilers schedule after PRE to dissolve the
//! copies and dead temporaries the rewriting leaves behind. Together they
//! form the pipeline exposed by [`crate::optimize`].

mod copyprop;
mod dce;
mod lcse;

pub use copyprop::copy_propagation;
pub use dce::dce;
pub use lcse::lcse;
