//! Dead-code elimination.
//!
//! Removes assignments whose destination is never subsequently read
//! (observations and branch conditions are the liveness roots). This is
//! what dissolves the useless temporaries that a non-isolation-aware PRE
//! (the paper's ALCM strawman) leaves behind.

use lcm_dataflow::{analyses, BitSet};
use lcm_ir::{Function, Instr};

/// Repeatedly removes dead assignments until a fixpoint; returns the total
/// number of instructions removed.
///
/// All assignments are pure in this IR, so removal is always sound for
/// dead destinations.
///
/// ```
/// use lcm_core::passes::dce;
/// let mut f = lcm_ir::parse_function(
///     "fn d {\nentry:\n  a = 1\n  b = a + 2\n  obs a\n  ret\n}",
/// )?;
/// assert_eq!(dce(&mut f), 1); // b is never read
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn dce(f: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let removed = dce_round(f);
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

fn dce_round(f: &mut Function) -> usize {
    if f.symbols.is_empty() {
        return 0;
    }
    let liveness = analyses::var_liveness(f);

    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut live: BitSet = liveness.outs.row_set(b.index());
        if let Some(c) = f.block(b).term.use_var() {
            live.insert(c.index());
        }
        let instrs = f.block(b).instrs.clone();
        let mut kept_rev = Vec::with_capacity(instrs.len());
        for instr in instrs.iter().rev() {
            let dead = match instr {
                Instr::Assign { dst, .. } => !live.contains(dst.index()),
                // Stores and impure calls are liveness roots; a pure call
                // whose result is unread (or discarded) computes nothing
                // observable.
                Instr::Call { dst, callee, .. } => {
                    callee.is_pure() && dst.is_none_or(|d| !live.contains(d.index()))
                }
                Instr::Store { .. } | Instr::Observe(_) => false,
            };
            if dead {
                removed += 1;
                continue;
            }
            kept_rev.push(*instr);
            if let Some(dst) = instr.def() {
                live.remove(dst.index());
            }
            for u in instr.uses() {
                live.insert(u.index());
            }
        }
        kept_rev.reverse();
        f.block_mut(b).instrs = kept_rev;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    #[test]
    fn removes_dead_chains() {
        let mut f = parse_function(
            "fn d {
             entry:
               a = 1
               b = a + 2
               c = b + 3
               obs a
               ret
             }",
        )
        .unwrap();
        // c is dead; after removing c, b is dead; a stays (observed).
        assert_eq!(dce(&mut f), 2);
        assert_eq!(f.num_instrs(), 2);
    }

    #[test]
    fn keeps_branch_condition_roots() {
        let mut f = parse_function(
            "fn b {
             entry:
               c = x < 5
               br c, l, r
             l:
               jmp r
             r:
               ret
             }",
        )
        .unwrap();
        assert_eq!(dce(&mut f), 0);
    }

    #[test]
    fn keeps_loop_carried_variables() {
        let mut f = parse_function(
            "fn l {
             entry:
               i = 3
               jmp head
             head:
               br i, body, done
             body:
               i = i - 1
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        assert_eq!(dce(&mut f), 0);
    }

    #[test]
    fn memory_roots_and_dead_loads() {
        let mut f = parse_function(
            "fn m {
             entry:
               x = load p
               store q, 3
               call poke(q, 4)
               m = call min(a, b)
               n = call max(a, b)
               call bump(q, 1)
               obs n
               ret
             }",
        )
        .unwrap();
        // Dead: the load `x` and the pure `min` with unread result. The
        // store, both impure calls, and the observed `max` all stay.
        assert_eq!(dce(&mut f), 2);
        let text = f.to_string();
        assert!(!text.contains("load"));
        assert!(!text.contains("min"));
        assert!(text.contains("store q, 3"));
        assert!(text.contains("call poke(q, 4)"));
        assert!(text.contains("call bump(q, 1)"));
        assert!(text.contains("max"));
    }

    #[test]
    fn removes_redefined_before_use() {
        let mut f = parse_function(
            "fn r {
             entry:
               x = 1
               x = 2
               obs x
               ret
             }",
        )
        .unwrap();
        assert_eq!(dce(&mut f), 1);
        assert!(f.to_string().contains("x = 2"));
        assert!(!f.to_string().contains("x = 1"));
    }
}
