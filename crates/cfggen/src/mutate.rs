//! Seeded single-step mutations of existing functions — the edit-stream
//! generator behind the incremental re-optimization corpus.
//!
//! A *content* edit changes what a block computes (replace an assignment's
//! right-hand side, insert or delete an instruction, append a kill) while
//! leaving the CFG shape — block count and successor lists — untouched, so
//! the delta path of `lcm_core::optimize_incremental` stays applicable. A
//! *shape* edit adds a block (edge split) or an edge (a jump rewritten as
//! a two-way branch with coinciding targets), exercising the full-solve
//! fallback contract. Every edit keeps the function well-formed
//! ([`lcm_ir::verify`]-clean) and is deterministic in the RNG stream.

use lcm_ir::{BinOp, BlockId, Expr, Function, Instr, Operand, Rvalue, Terminator, Var};

use crate::rng::Rng;

/// What a [`mutate_function`] step did to the CFG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// Block contents changed; the shape (blocks + successor lists) is
    /// identical, so delta re-solving applies.
    Content,
    /// A block or edge was added; incremental callers must fall back to a
    /// full solve.
    Shape,
}

/// Applies one random edit to `f`, drawing from the rng stream; with
/// probability `shape_prob` the edit changes the CFG shape. Returns what
/// kind of edit was made.
pub fn mutate_function(f: &mut Function, rng: &mut Rng, shape_prob: f64) -> MutationKind {
    if rng.gen_bool(shape_prob) {
        shape_edit(f, rng)
    } else {
        content_edit(f, rng)
    }
}

/// Every variable the function currently mentions, in first-seen order.
fn pool_vars(f: &Function) -> Vec<Var> {
    let mut vars = Vec::new();
    let seen = |vars: &mut Vec<Var>, v: Var| {
        if !vars.contains(&v) {
            vars.push(v);
        }
    };
    for b in f.block_ids() {
        for instr in &f.block(b).instrs {
            if let Some(d) = instr.def() {
                seen(&mut vars, d);
            }
            for u in instr.uses() {
                seen(&mut vars, u);
            }
        }
        if let Some(u) = f.block(b).term.use_var() {
            seen(&mut vars, u);
        }
    }
    vars
}

fn content_edit(f: &mut Function, rng: &mut Rng) -> MutationKind {
    let vars = pool_vars(f);
    let exprs = f.expr_universe();
    let blocks: Vec<BlockId> = f.block_ids().collect();
    for _ in 0..16 {
        let b = blocks[rng.gen_range(0..blocks.len())];
        let n = f.block(b).instrs.len();
        match rng.gen_range(0..5usize) {
            // Insert `v = <existing expr>` at a random position.
            0 if !exprs.is_empty() && !vars.is_empty() => {
                let e = exprs[rng.gen_range(0..exprs.len())];
                let dst = vars[rng.gen_range(0..vars.len())];
                let at = rng.gen_range(0..=n);
                f.block_mut(b).instrs.insert(
                    at,
                    Instr::Assign {
                        dst,
                        rv: Rvalue::Expr(e),
                    },
                );
                return MutationKind::Content;
            }
            // Delete a random instruction.
            1 if n > 0 => {
                let at = rng.gen_range(0..n);
                f.block_mut(b).instrs.remove(at);
                return MutationKind::Content;
            }
            // Append a kill: `v = const`.
            2 if !vars.is_empty() => {
                let dst = vars[rng.gen_range(0..vars.len())];
                let c = rng.gen_range(-8..=8);
                f.block_mut(b).instrs.push(Instr::Assign {
                    dst,
                    rv: Rvalue::Operand(Operand::Const(c)),
                });
                return MutationKind::Content;
            }
            // Compose `v = x <op> y` from pooled variables with a random
            // operator — often a *brand-new* expression, growing the
            // universe and exercising the incremental widening path. No
            // new variables, so existing interning indices are stable.
            3 if vars.len() >= 2 => {
                let op = BinOp::ALL[rng.gen_range(0..BinOp::ALL.len())];
                let x = vars[rng.gen_range(0..vars.len())];
                let y = vars[rng.gen_range(0..vars.len())];
                let dst = vars[rng.gen_range(0..vars.len())];
                let at = rng.gen_range(0..=n);
                f.block_mut(b).instrs.insert(
                    at,
                    Instr::Assign {
                        dst,
                        rv: Rvalue::Expr(Expr::Bin(op, Operand::Var(x), Operand::Var(y))),
                    },
                );
                return MutationKind::Content;
            }
            // Replace a random assignment's right-hand side.
            _ if n > 0 && !exprs.is_empty() => {
                let at = rng.gen_range(0..n);
                if let Instr::Assign { dst, .. } = f.block(b).instrs[at] {
                    let e = exprs[rng.gen_range(0..exprs.len())];
                    f.block_mut(b).instrs[at] = Instr::Assign {
                        dst,
                        rv: Rvalue::Expr(e),
                    };
                    return MutationKind::Content;
                }
            }
            _ => {}
        }
    }
    // Pathological function (no instructions, no expressions): append a
    // constant assignment to the entry block so the step still edits.
    let dst = f.var("mutant");
    let entry = f.entry();
    f.block_mut(entry).instrs.push(Instr::Assign {
        dst,
        rv: Rvalue::Operand(Operand::Const(1)),
    });
    MutationKind::Content
}

fn shape_edit(f: &mut Function, rng: &mut Rng) -> MutationKind {
    // Every (block, successor-slot) pair is a splittable edge.
    let mut edges: Vec<(BlockId, u8)> = Vec::new();
    let mut jumps: Vec<BlockId> = Vec::new();
    for b in f.block_ids() {
        let term = f.block(b).term;
        for i in 0..term.successors().count() {
            edges.push((b, i as u8));
        }
        if matches!(term, Terminator::Jump(_)) {
            jumps.push(b);
        }
    }
    if edges.is_empty() {
        // Single-block function: no edge to split, no jump to widen.
        return content_edit(f, rng);
    }
    if !jumps.is_empty() && rng.gen_bool(0.3) {
        // Jump → branch with coinciding targets: semantics preserved (the
        // condition is a constant), but the CFG gains a parallel edge.
        let b = jumps[rng.gen_range(0..jumps.len())];
        if let Terminator::Jump(t) = f.block(b).term {
            f.block_mut(b).term = Terminator::Branch {
                cond: Operand::Const(1),
                then_to: t,
                else_to: t,
            };
            return MutationKind::Shape;
        }
    }
    let (from, i) = edges[rng.gen_range(0..edges.len())];
    f.split_edge(from, i);
    MutationKind::Shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{structured, GenOptions};

    #[test]
    fn mutations_keep_functions_wellformed_and_deterministic() {
        let opts = GenOptions::default();
        for seed in 0..10u64 {
            let mut f = structured(seed, &opts);
            let mut g = f.clone();
            let mut r1 = Rng::seed_from_u64(seed ^ 0x5eed);
            let mut r2 = Rng::seed_from_u64(seed ^ 0x5eed);
            for _ in 0..25 {
                let k1 = mutate_function(&mut f, &mut r1, 0.25);
                let k2 = mutate_function(&mut g, &mut r2, 0.25);
                assert_eq!(k1, k2);
                assert_eq!(f.to_string(), g.to_string());
                lcm_ir::verify(&f).unwrap();
            }
        }
    }

    #[test]
    fn content_edits_preserve_cfg_shape() {
        let opts = GenOptions::default();
        for seed in 0..10u64 {
            let mut f = structured(seed, &opts);
            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..20 {
                let before: Vec<Vec<_>> = f
                    .block_ids()
                    .map(|b| f.block(b).term.successors().collect())
                    .collect();
                let kind = mutate_function(&mut f, &mut rng, 0.0);
                assert_eq!(kind, MutationKind::Content);
                let after: Vec<Vec<_>> = f
                    .block_ids()
                    .map(|b| f.block(b).term.successors().collect())
                    .collect();
                assert_eq!(before, after, "content edit moved an edge");
            }
        }
    }

    #[test]
    fn shape_edits_change_the_shape() {
        let opts = GenOptions::default();
        let mut f = structured(3, &opts);
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10 {
            let blocks = f.num_blocks();
            let edges: usize = f.block_ids().map(|b| f.succs(b).count()).sum();
            let kind = mutate_function(&mut f, &mut rng, 1.0);
            assert_eq!(kind, MutationKind::Shape);
            let blocks2 = f.num_blocks();
            let edges2: usize = f.block_ids().map(|b| f.succs(b).count()).sum();
            assert!(
                blocks2 > blocks || edges2 > edges,
                "shape edit changed nothing"
            );
            lcm_ir::verify(&f).unwrap();
        }
    }
}
