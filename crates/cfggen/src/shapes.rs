//! Deterministic workload shapes used by benchmarks and examples.
//!
//! Each shape isolates one phenomenon from the paper:
//!
//! * [`diamond_chain`] — repeated one-armed diamonds: the canonical partial
//!   redundancy (an expression computed on one branch arm and again after
//!   the join).
//! * [`pressure_chain`] — like `diamond_chain` but with a fresh expression
//!   per diamond: the register-pressure stressor separating busy from lazy.
//! * [`one_armed_chain`] — the redundancy sits behind **critical edges**:
//!   the shape Morel–Renvoise cannot serve but edge/node placement can.
//! * [`loop_invariant`] — nested do-while counter loops with an invariant
//!   expression in the innermost body: LCM subsumes loop-invariant code
//!   motion (where hoisting is safe).
//! * [`ladder`] — alternating compute/kill rungs: stresses transparency
//!   handling and re-insertion.
//! * [`wide_expression_soup`] — a single huge block pair with many distinct
//!   expressions: stresses bit-vector width rather than CFG shape.

use lcm_ir::{BinOp, Function, FunctionBuilder};

/// `n` consecutive one-armed diamonds, each computing `a + b` on the then
/// arm and unconditionally after the join. Every join computation is
/// partially redundant; LCM inserts on each empty arm and deletes `n`
/// computations.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn diamond_chain(n: usize) -> Function {
    assert!(n > 0, "need at least one diamond");
    let mut b = FunctionBuilder::new(format!("diamond_chain_{n}"));
    b.var("a");
    b.var("b");
    for i in 0..n {
        let then_bb = b.create_block(format!("then{i}"));
        let else_bb = b.create_block(format!("else{i}"));
        let join_bb = b.create_block(format!("join{i}"));
        b.branch("c", then_bb, else_bb);
        b.switch_to(then_bb);
        b.bin(format!("x{i}"), BinOp::Add, "a", "b");
        b.jump(join_bb);
        b.switch_to(else_bb);
        b.jump(join_bb);
        b.switch_to(join_bb);
        b.bin(format!("y{i}"), BinOp::Add, "a", "b");
        b.observe(format!("y{i}").as_str());
    }
    b.jump_exit();
    b.finish()
}

/// `depth` nested **do-while** loops (each running `trips` iterations)
/// with the loop-invariant `a * b` computed in the innermost body. The
/// bodies always execute, so the invariant is anticipated at the function
/// entry and LCM hoists it in front of the outermost loop. (A zero-trip
/// `while` nest would — correctly — see no hoisting at all: classic PRE's
/// safety requirement forbids evaluating the expression on executions that
/// skip the loop.)
///
/// # Panics
///
/// Panics if `depth == 0` or `trips == 0`.
pub fn loop_invariant(depth: usize, trips: i64) -> Function {
    assert!(depth > 0 && trips > 0, "need a real loop nest");
    let mut b = FunctionBuilder::new(format!("loop_invariant_{depth}x{trips}"));
    b.var("a");
    b.var("b");
    // Open the do-while nest outside-in.
    let mut bodies = Vec::new();
    let mut dones = Vec::new();
    for d in 0..depth {
        let body = b.create_block(format!("body{d}"));
        let done = b.create_block(format!("done{d}"));
        b.assign(format!("i{d}"), trips);
        b.jump(body);
        b.switch_to(body);
        bodies.push(body);
        dones.push(done);
    }
    // Innermost body: the invariant computation plus observable effect.
    b.bin("inv", BinOp::Mul, "a", "b");
    b.bin("acc", BinOp::Add, "acc", "inv");
    b.observe("acc");
    // Close the loops inside-out: decrement, test, loop back.
    for d in (0..depth).rev() {
        b.bin(format!("i{d}"), BinOp::Sub, format!("i{d}").as_str(), 1);
        b.branch(format!("i{d}").as_str(), bodies[d], dones[d]);
        b.switch_to(dones[d]);
    }
    b.observe("acc");
    b.jump_exit();
    b.finish()
}

/// `n` consecutive diamonds, each with its **own** expression
/// (`s(i) + s(i+1)`) computed on the then arm and after the join. Busy code
/// motion hoists every one of them to the top of the function, so all `n`
/// temporaries are live simultaneously; lazy code motion keeps each local
/// to its diamond. The canonical register-pressure stressor.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn pressure_chain(n: usize) -> Function {
    assert!(n > 0, "need at least one diamond");
    let mut b = FunctionBuilder::new(format!("pressure_chain_{n}"));
    for i in 0..=n {
        b.var(format!("s{i}"));
    }
    for i in 0..n {
        let then_bb = b.create_block(format!("then{i}"));
        let else_bb = b.create_block(format!("else{i}"));
        let join_bb = b.create_block(format!("join{i}"));
        b.branch("c", then_bb, else_bb);
        b.switch_to(then_bb);
        b.bin(
            format!("x{i}"),
            BinOp::Add,
            format!("s{i}").as_str(),
            format!("s{}", i + 1).as_str(),
        );
        b.jump(join_bb);
        b.switch_to(else_bb);
        b.jump(join_bb);
        b.switch_to(join_bb);
        b.bin(
            format!("y{i}"),
            BinOp::Add,
            format!("s{i}").as_str(),
            format!("s{}", i + 1).as_str(),
        );
        b.observe(format!("y{i}").as_str());
        // Kill the expression so the next diamond cannot reuse it.
        b.assign(format!("s{i}"), 0);
    }
    b.jump_exit();
    b.finish()
}

/// `n` chained one-armed diamonds built from **critical edges**: each stage
/// is `br c, work, join` with `work` computing `a + b` and `join` computing
/// it again. Every insertion that could cover the join lies on the critical
/// `branch → join` edge, so Morel–Renvoise (block-end insertion only)
/// eliminates nothing here while edge/node LCM eliminates all `n` join
/// computations. The paper's headline advantage over the 1979 baseline.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn one_armed_chain(n: usize) -> Function {
    assert!(n > 0, "need at least one stage");
    let mut b = FunctionBuilder::new(format!("one_armed_chain_{n}"));
    b.var("a");
    b.var("b");
    for i in 0..n {
        let work = b.create_block(format!("work{i}"));
        let join = b.create_block(format!("join{i}"));
        b.branch("c", work, join);
        b.switch_to(work);
        b.bin(format!("x{i}"), BinOp::Add, "a", "b");
        b.observe(format!("x{i}").as_str());
        b.jump(join);
        b.switch_to(join);
        b.bin(format!("y{i}"), BinOp::Add, "a", "b");
        b.observe(format!("y{i}").as_str());
        // Kill so each stage is independent.
        b.bin("a", BinOp::Add, "a", 1);
    }
    b.jump_exit();
    b.finish()
}

/// A ladder of `n` rungs alternating between computing `a + b` and killing
/// it (`a = a + 1`), connected by diamonds. Exercises transparency and
/// repeated re-insertion.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ladder(n: usize) -> Function {
    assert!(n > 0, "need at least one rung");
    let mut b = FunctionBuilder::new(format!("ladder_{n}"));
    b.var("a");
    b.var("b");
    for i in 0..n {
        let l = b.create_block(format!("l{i}"));
        let r = b.create_block(format!("r{i}"));
        let j = b.create_block(format!("j{i}"));
        b.branch("c", l, r);
        b.switch_to(l);
        b.bin(format!("x{i}"), BinOp::Add, "a", "b");
        b.jump(j);
        b.switch_to(r);
        if i % 2 == 0 {
            b.bin("a", BinOp::Add, "a", 1); // kill a + b
        }
        b.jump(j);
        b.switch_to(j);
        b.bin(format!("y{i}"), BinOp::Add, "a", "b");
        b.observe(format!("y{i}").as_str());
    }
    b.jump_exit();
    b.finish()
}

/// Two blocks computing `width` distinct expressions each, the second block
/// recomputing all of the first block's expressions (fully redundant).
/// CFG-trivial but bit-vector-wide.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn wide_expression_soup(width: usize) -> Function {
    assert!(width > 0, "need at least one expression");
    let mut b = FunctionBuilder::new(format!("soup_{width}"));
    let second = b.create_block("second");
    for i in 0..width {
        b.var(format!("s{i}"));
    }
    for i in 0..width {
        b.bin(
            format!("p{i}"),
            BinOp::Add,
            format!("s{i}").as_str(),
            format!("s{}", (i + 1) % width).as_str(),
        );
    }
    b.jump(second);
    b.switch_to(second);
    for i in 0..width {
        b.bin(
            format!("q{i}"),
            BinOp::Add,
            format!("s{i}").as_str(),
            format!("s{}", (i + 1) % width).as_str(),
        );
    }
    b.observe(format!("q{}", width - 1).as_str());
    b.jump_exit();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_chain_shape() {
        let f = diamond_chain(3);
        lcm_ir::verify(&f).unwrap();
        assert_eq!(f.num_blocks(), 2 + 3 * 3);
        assert_eq!(f.expr_universe().len(), 1); // only a + b
        assert_eq!(f.expr_occurrences().count(), 6);
    }

    #[test]
    fn loop_invariant_runs_and_hoists_target_exists() {
        let f = loop_invariant(2, 3);
        lcm_ir::verify(&f).unwrap();
        let out = lcm_interp::run(
            &f,
            &lcm_interp::Inputs::new().set("a", 2).set("b", 5),
            100_000,
        );
        assert!(out.completed());
        // 3 × 3 iterations, acc += 10 each: final observation is 90.
        assert_eq!(*out.trace.last().unwrap(), 90);
    }

    #[test]
    fn pressure_chain_has_one_expression_per_diamond() {
        let f = pressure_chain(4);
        lcm_ir::verify(&f).unwrap();
        assert_eq!(f.expr_universe().len(), 4);
        assert_eq!(f.expr_occurrences().count(), 8);
    }

    #[test]
    fn one_armed_chain_has_critical_edges() {
        let f = one_armed_chain(3);
        lcm_ir::verify(&f).unwrap();
        assert_eq!(lcm_ir::graph::critical_edges(&f).len(), 3);
    }

    #[test]
    fn ladder_kills_alternate() {
        let f = ladder(4);
        lcm_ir::verify(&f).unwrap();
        let out = lcm_interp::run(&f, &lcm_interp::Inputs::new().set("b", 1), 10_000);
        assert!(out.completed());
    }

    #[test]
    fn soup_width() {
        let f = wide_expression_soup(100);
        lcm_ir::verify(&f).unwrap();
        assert_eq!(f.expr_universe().len(), 100);
        assert_eq!(f.expr_occurrences().count(), 200);
    }
}
