//! A small, in-tree seeded pseudo-random number generator.
//!
//! The generators in this crate only need reproducible, reasonably
//! well-mixed streams — not cryptographic quality — so instead of an
//! external dependency the workspace carries its own splitmix64-seeded
//! xoshiro256++ generator. Everything downstream (corpora, benchmarks,
//! property tests) stays deterministic in the seed and builds fully
//! offline.
//!
//! ```
//! use lcm_cfggen::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.gen_range(0usize..10);
//! assert!(x < 10);
//! ```

/// A seeded xoshiro256++ PRNG (Blackman & Vigna), state-initialised with
/// splitmix64 so that nearby seeds produce unrelated streams.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of splitmix64: used to expand a 64-bit seed into the 256-bit
/// xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 raw bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in `range` (half-open or inclusive, `usize` or
    /// `i64`), via rejection-free multiply-shift on the span.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform value in `0..span` (`span > 0`), using Lemire's
    /// multiply-shift reduction (bias is negligible at these span sizes and
    /// determinism is all the generators need).
    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Ranges [`Rng::gen_range`] can sample from. The type parameter is the
/// element type, so call sites can drive inference from how the result is
/// used (e.g. `Operand::Const(rng.gen_range(-4..=4))` samples an `i64`).
pub trait SampleRange<T> {
    /// Draws a uniform element of the range from `rng`.
    fn sample(self, rng: &mut Rng) -> T;
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange<i64> for std::ops::Range<i64> {
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range");
        self.start
            .wrapping_add(rng.below(self.end.abs_diff(self.start)) as i64)
    }
}

impl SampleRange<i64> for std::ops::RangeInclusive<i64> {
    fn sample(self, rng: &mut Rng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo.wrapping_add(rng.below(hi.abs_diff(lo) + 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&y));
            let z = rng.gen_range(5usize..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values within 1000 draws");
    }

    #[test]
    fn floats_are_unit_interval_and_varied() {
        let mut rng = Rng::seed_from_u64(2);
        let mut below_half = 0;
        for _ in 0..1_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                below_half += 1;
            }
        }
        // Crude uniformity check: roughly half the mass on each side.
        assert!((350..=650).contains(&below_half), "{below_half}");
    }

    #[test]
    fn gen_bool_respects_probability_edges() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..1_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((150..=350).contains(&heads), "{heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(4usize..4);
    }
}
