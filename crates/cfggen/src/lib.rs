//! Seeded random program generators for testing and benchmarking.
//!
//! The Lazy Code Motion paper proves its theorems over *all* flow graphs;
//! validating them empirically needs a corpus far larger than hand-written
//! examples. This crate generates three families of programs, all
//! deterministic in their seed:
//!
//! * [`structured`] — reducible, **always-terminating** programs built from
//!   sequences, if/else and counter-bounded loops. Safe for exact
//!   observational-equivalence checks.
//! * [`arbitrary`] — free-form CFGs (possibly irreducible, possibly
//!   divergent) for stress-testing analyses and transformations under fuel.
//! * [`random_dag`] — acyclic CFGs whose entry→exit paths can be enumerated
//!   exhaustively, for path-by-path optimality checks.
//!
//! Plus deterministic workload [`shapes`] used by the benchmarks, and
//! [`synthetic_profile`] — seeded, flow-conserving edge profiles for the
//! speculative-PRE corpora.
//!
//! Generated programs intentionally draw their expressions from a small
//! per-function *menu* so that partial redundancies actually occur.
//!
//! ```
//! use lcm_cfggen::{structured, GenOptions};
//!
//! let f = structured(42, &GenOptions::default());
//! lcm_ir::verify(&f)?;
//! // Same seed, same program.
//! assert_eq!(f.to_string(), structured(42, &GenOptions::default()).to_string());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod arbitrary;
mod mutate;
mod profile;
mod rng;
pub mod shapes;
mod structured;

pub use arbitrary::{arbitrary, random_dag};
pub use mutate::{mutate_function, MutationKind};
pub use profile::{synthetic_profile, PROFILE_WALKS};
pub use rng::{Rng, SampleRange};
pub use structured::structured;

use lcm_ir::{BinOp, Expr, Function, Operand, Var};

/// Tuning knobs shared by the generators.
#[derive(Clone, PartialEq, Debug)]
pub struct GenOptions {
    /// Approximate number of statements (structured) or exact number of
    /// interior blocks (arbitrary/dag).
    pub size: usize,
    /// Number of named variables in the pool (`a`, `b`, `c`, …).
    pub num_vars: usize,
    /// Number of distinct candidate expressions in the per-function menu.
    /// Small menus create many partial redundancies.
    pub menu: usize,
    /// Probability that a generated assignment draws from the menu rather
    /// than inventing a fresh expression or a copy.
    pub menu_bias: f64,
    /// Probability of emitting an observation after a statement.
    pub obs_prob: f64,
    /// Maximum nesting depth for the structured generator.
    pub max_depth: usize,
    /// Probability that a statement is a memory write (`store` or an
    /// impure `call`); additionally, when nonzero, a slice of the
    /// expression menu becomes `load`s. Zero (the default) generates no
    /// memory operations **and consumes no extra RNG draws**, so every
    /// pre-existing seeded corpus stays byte-identical.
    pub mem_prob: f64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            size: 30,
            num_vars: 6,
            menu: 5,
            menu_bias: 0.7,
            obs_prob: 0.3,
            max_depth: 4,
            mem_prob: 0.0,
        }
    }
}

impl GenOptions {
    /// Options scaled for benchmark-sized programs with `blocks` blocks.
    pub fn sized(size: usize) -> Self {
        GenOptions {
            size,
            ..Self::default()
        }
    }

    /// Default options with memory operations enabled: `mem_prob` of the
    /// statements write memory and the menu mixes in `load` expressions.
    pub fn with_memory(mem_prob: f64) -> Self {
        GenOptions {
            mem_prob,
            ..Self::default()
        }
    }
}

/// Operators the generators draw from. Comparisons and divisions included:
/// totality of the semantics makes them as safe to hoist as additions.
const OP_POOL: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Lt,
    BinOp::Eq,
    BinOp::Div,
    BinOp::Shl,
];

/// Shared generator state: the variable pool and expression menu.
pub(crate) struct Pool {
    vars: Vec<Var>,
    menu: Vec<Expr>,
}

impl Pool {
    /// Builds a pool from pre-interned variables (see [`Pool::for_function`]).
    pub(crate) fn from_vars(vars: Vec<Var>, rng: &mut Rng, opts: &GenOptions) -> Pool {
        let mut menu = Vec::with_capacity(opts.menu);
        for _ in 0..opts.menu {
            // Memory menu entries sit behind a short-circuit so the RNG
            // stream (and thus every existing corpus) is untouched when
            // mem_prob is zero.
            if opts.mem_prob > 0.0 && rng.gen_bool(0.3) {
                menu.push(Expr::Mem(Self::random_addr(&vars, rng)));
                continue;
            }
            let a = Operand::Var(vars[rng.gen_range(0..vars.len())]);
            // A slice of the menu is multiplication-by-constant, so the
            // strength-reduction extension has material to work on.
            if rng.gen_bool(0.2) {
                menu.push(Expr::Bin(
                    BinOp::Mul,
                    a,
                    Operand::Const(rng.gen_range(2..=9)),
                ));
                continue;
            }
            let op = OP_POOL[rng.gen_range(0..OP_POOL.len())];
            let b = if rng.gen_bool(0.8) {
                Operand::Var(vars[rng.gen_range(0..vars.len())])
            } else {
                Operand::Const(rng.gen_range(-4..=4))
            };
            menu.push(Expr::Bin(op, a, b));
        }
        Pool { vars, menu }
    }

    /// Interns the variable pool into `f` and builds the expression menu.
    pub(crate) fn for_function(f: &mut Function, rng: &mut Rng, opts: &GenOptions) -> Pool {
        let vars: Vec<Var> = (0..opts.num_vars.max(2))
            .map(|i| f.var(var_name(i)))
            .collect();
        Pool::from_vars(vars, rng, opts)
    }

    pub(crate) fn random_var(&self, rng: &mut Rng) -> Var {
        self.vars[rng.gen_range(0..self.vars.len())]
    }

    /// A random address operand: usually a pool variable (so loads can be
    /// killed by ordinary assignments too), sometimes a small constant (so
    /// distinct functions collide on the same heap cells).
    fn random_addr(vars: &[Var], rng: &mut Rng) -> Operand {
        if rng.gen_bool(0.7) {
            Operand::Var(vars[rng.gen_range(0..vars.len())])
        } else {
            Operand::Const(rng.gen_range(0..=7))
        }
    }

    /// A random memory operation: mostly stores, with impure (and the odd
    /// pure) intrinsic calls mixed in. Only called when `mem_prob > 0`.
    pub(crate) fn random_memory_op(&self, rng: &mut Rng) -> lcm_ir::Instr {
        use lcm_ir::{Callee, Instr};
        let addr = Self::random_addr(&self.vars, rng);
        let val = if rng.gen_bool(0.6) {
            Operand::Var(self.random_var(rng))
        } else {
            Operand::Const(rng.gen_range(-4..=4))
        };
        match rng.gen_range(0..6usize) {
            0..=2 => Instr::Store { addr, val },
            3 => Instr::Call {
                dst: rng.gen_bool(0.5).then(|| self.random_var(rng)),
                callee: Callee::Poke,
                args: [addr, val],
            },
            4 => Instr::Call {
                dst: Some(self.random_var(rng)),
                callee: Callee::Bump,
                args: [addr, val],
            },
            _ => Instr::Call {
                dst: Some(self.random_var(rng)),
                callee: if rng.gen_bool(0.5) {
                    Callee::Min
                } else {
                    Callee::Max
                },
                args: [Operand::Var(self.random_var(rng)), val],
            },
        }
    }

    /// A random *injury*: `v = v ± d` for a pool variable — fodder for
    /// strength reduction.
    pub(crate) fn random_injury(&self, rng: &mut Rng) -> lcm_ir::Instr {
        let v = self.random_var(rng);
        let d = rng.gen_range(1..=5);
        let op = if rng.gen_bool(0.5) {
            BinOp::Add
        } else {
            BinOp::Sub
        };
        lcm_ir::Instr::Assign {
            dst: v,
            rv: lcm_ir::Rvalue::Expr(Expr::Bin(op, Operand::Var(v), Operand::Const(d))),
        }
    }

    /// A random assignment right-hand side, biased towards the menu.
    pub(crate) fn random_rvalue(&self, rng: &mut Rng, opts: &GenOptions) -> lcm_ir::Rvalue {
        if !self.menu.is_empty() && rng.gen_bool(opts.menu_bias) {
            lcm_ir::Rvalue::Expr(self.menu[rng.gen_range(0..self.menu.len())])
        } else if rng.gen_bool(0.5) {
            let op = OP_POOL[rng.gen_range(0..OP_POOL.len())];
            let a = Operand::Var(self.random_var(rng));
            let b = Operand::Var(self.random_var(rng));
            lcm_ir::Rvalue::Expr(Expr::Bin(op, a, b))
        } else if rng.gen_bool(0.5) {
            lcm_ir::Rvalue::Operand(Operand::Var(self.random_var(rng)))
        } else {
            lcm_ir::Rvalue::Operand(Operand::Const(rng.gen_range(-8..=8)))
        }
    }
}

pub(crate) fn var_name(i: usize) -> String {
    // a, b, …, z, v26, v27, …
    if i < 26 {
        char::from(b'a' + i as u8).to_string()
    } else {
        format!("v{i}")
    }
}

/// The generator stream for `seed` — also handy for writing your own
/// seeded tests and corpora without an external PRNG dependency.
pub fn seeded(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Convenience: a deterministic corpus of `count` terminating programs.
pub fn corpus(seed: u64, count: usize, opts: &GenOptions) -> Vec<Function> {
    (0..count)
        .map(|i| structured(seed.wrapping_add(i as u64), opts))
        .collect()
}

/// Convenience: a deterministic corpus of `count` acyclic programs.
pub fn corpus_dags(seed: u64, count: usize, opts: &GenOptions) -> Vec<Function> {
    (0..count)
        .map(|i| random_dag(seed.wrapping_add(i as u64), opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_wellformed() {
        let opts = GenOptions::default();
        let c1 = corpus(7, 10, &opts);
        let c2 = corpus(7, 10, &opts);
        for (a, b) in c1.iter().zip(&c2) {
            assert_eq!(a.to_string(), b.to_string());
            lcm_ir::verify(a).unwrap();
        }
        // Different seeds give different programs (overwhelmingly likely).
        assert_ne!(c1[0].to_string(), corpus(8, 1, &opts)[0].to_string());
    }

    #[test]
    fn zero_mem_prob_leaves_existing_corpora_byte_identical() {
        // The memory knob must be a pure extension: with mem_prob == 0 the
        // RNG stream is untouched, so programs from before the knob existed
        // regenerate exactly.
        let defaults = GenOptions::default();
        let explicit = GenOptions {
            mem_prob: 0.0,
            ..GenOptions::default()
        };
        for seed in 0..20u64 {
            assert_eq!(
                structured(seed, &defaults).to_string(),
                structured(seed, &explicit).to_string()
            );
        }
    }

    #[test]
    fn memory_corpus_exercises_loads_and_stores() {
        let opts = GenOptions::with_memory(0.2);
        let c = corpus(3, 40, &opts);
        let mut loads = 0usize;
        let mut writers = 0usize;
        for f in &c {
            lcm_ir::verify(f).unwrap();
            loads += f
                .expr_universe()
                .iter()
                .filter(|e| matches!(e, Expr::Mem(_)))
                .count();
            writers += f
                .block_ids()
                .flat_map(|b| f.block(b).instrs.iter())
                .filter(|i| i.kills_memory())
                .count();
        }
        assert!(loads > 20, "only {loads} loads in 40 functions");
        assert!(
            writers > 40,
            "only {writers} memory writers in 40 functions"
        );
        // Deterministic in the seed, and still terminating.
        let again = corpus(3, 40, &opts);
        for (a, b) in c.iter().zip(&again) {
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn var_names_extend_past_alphabet() {
        assert_eq!(var_name(0), "a");
        assert_eq!(var_name(25), "z");
        assert_eq!(var_name(26), "v26");
    }
}
