//! Reducible, always-terminating program generation.

use lcm_ir::{Function, FunctionBuilder, Instr, Operand, Rvalue};

use crate::{GenOptions, Pool, Rng};

/// Generates a structured, **terminating** program: straight-line code,
/// if/else regions and counter-bounded loops (each loop decrements its own
/// fresh counter from a small constant, so every execution finishes).
///
/// The result is verified well-formed and reducible by construction.
pub fn structured(seed: u64, opts: &GenOptions) -> Function {
    let mut rng = crate::seeded(seed);
    let mut b = FunctionBuilder::new(format!("gen{seed}"));
    let vars = (0..opts.num_vars.max(2))
        .map(|i| b.var(crate::var_name(i)))
        .collect();
    let mut pool = Pool::from_vars(vars, &mut rng, opts);
    let mut budget = opts.size as i64;
    let mut loop_count = 0usize;
    emit_seq(
        &mut b,
        &mut pool,
        &mut rng,
        opts,
        opts.max_depth,
        &mut budget,
        &mut loop_count,
    );
    // Observe a handful of pool variables at the end so the whole
    // computation is live and transformations cannot cheat via dead code.
    for i in 0..3.min(opts.num_vars) {
        let v = b.var(crate::var_name(i));
        b.observe(v);
    }
    b.jump_exit();
    let f = b.finish();
    debug_assert!(lcm_ir::verify(&f).is_ok());
    f
}

#[allow(clippy::too_many_arguments)]
fn emit_seq(
    b: &mut FunctionBuilder,
    pool: &mut Pool,
    rng: &mut Rng,
    opts: &GenOptions,
    depth: usize,
    budget: &mut i64,
    loop_count: &mut usize,
) {
    while *budget > 0 {
        *budget -= 1;
        let roll = rng.gen_f64();
        if roll < 0.55 || depth == 0 {
            emit_assign(b, pool, rng, opts);
        } else if roll < 0.75 {
            emit_if(b, pool, rng, opts, depth, budget, loop_count);
        } else {
            emit_loop(b, pool, rng, opts, depth, budget, loop_count);
        }
        if rng.gen_bool(opts.obs_prob) {
            let v = pool.random_var(rng);
            b.observe(v);
        }
        // Occasionally stop early so sequence lengths vary.
        if rng.gen_bool(0.08) {
            break;
        }
    }
}

fn emit_assign(b: &mut FunctionBuilder, pool: &mut Pool, rng: &mut Rng, opts: &GenOptions) {
    // Short-circuit keeps the RNG stream identical when mem_prob is zero.
    if opts.mem_prob > 0.0 && rng.gen_bool(opts.mem_prob) {
        let instr = pool.random_memory_op(rng);
        b.push(instr);
        return;
    }
    if rng.gen_bool(0.12) {
        // An injury (`v = v ± d`): transparent-with-update for strength
        // reduction, an ordinary kill for plain code motion.
        let instr = pool.random_injury(rng);
        b.push(instr);
        return;
    }
    let dst = pool.random_var(rng);
    let rv = pool.random_rvalue(rng, opts);
    b.push(Instr::Assign { dst, rv });
}

#[allow(clippy::too_many_arguments)]
fn emit_if(
    b: &mut FunctionBuilder,
    pool: &mut Pool,
    rng: &mut Rng,
    opts: &GenOptions,
    depth: usize,
    budget: &mut i64,
    loop_count: &mut usize,
) {
    let then_bb = b.create_block("then");
    let join_bb = b.create_block("join");
    let cond = pool.random_var(rng);
    if rng.gen_bool(0.35) {
        // One-armed if: branch straight to the join, creating a critical
        // edge — the shape Morel–Renvoise cannot serve but edge/node
        // placement can.
        b.branch(cond, then_bb, join_bb);
        b.switch_to(then_bb);
        emit_seq(b, pool, rng, opts, depth - 1, budget, loop_count);
        b.jump(join_bb);
    } else {
        let else_bb = b.create_block("else");
        b.branch(cond, then_bb, else_bb);

        b.switch_to(then_bb);
        emit_seq(b, pool, rng, opts, depth - 1, budget, loop_count);
        b.jump(join_bb);

        b.switch_to(else_bb);
        // Sometimes an empty else arm (pure diamond with one-sided
        // computation: the canonical partial redundancy shape).
        if rng.gen_bool(0.6) {
            emit_seq(b, pool, rng, opts, depth - 1, budget, loop_count);
        }
        b.jump(join_bb);
    }

    b.switch_to(join_bb);
}

#[allow(clippy::too_many_arguments)]
fn emit_loop(
    b: &mut FunctionBuilder,
    pool: &mut Pool,
    rng: &mut Rng,
    opts: &GenOptions,
    depth: usize,
    budget: &mut i64,
    loop_count: &mut usize,
) {
    let id = *loop_count;
    *loop_count += 1;
    let ctr = b.var(format!("ctr{id}"));
    let head = b.create_block(format!("head{id}"));
    let body = b.create_block(format!("body{id}"));
    let done = b.create_block(format!("done{id}"));

    let bound = rng.gen_range(1..=3);
    b.push(Instr::Assign {
        dst: ctr,
        rv: Rvalue::Operand(Operand::Const(bound)),
    });
    b.jump(head);

    b.switch_to(head);
    b.branch(ctr, body, done);

    b.switch_to(body);
    emit_seq(b, pool, rng, opts, depth - 1, budget, loop_count);
    let dec = lcm_ir::Expr::Bin(lcm_ir::BinOp::Sub, Operand::Var(ctr), Operand::Const(1));
    b.push(Instr::Assign {
        dst: ctr,
        rv: Rvalue::Expr(dec),
    });
    b.jump(head);

    b.switch_to(done);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_terminates() {
        for seed in 0..30 {
            let f = structured(seed, &GenOptions::default());
            lcm_ir::verify(&f).unwrap();
            let out = lcm_interp::run(&f, &lcm_interp::Inputs::new(), 2_000_000);
            assert!(out.completed(), "seed {seed} did not terminate");
        }
    }

    #[test]
    fn produces_partial_redundancies() {
        // At least some generated programs must contain repeated menu
        // expressions (the whole point of the menu bias).
        let mut any_repeat = false;
        for seed in 0..10 {
            let f = structured(seed, &GenOptions::default());
            let occurrences = f.expr_occurrences().count();
            let distinct = f.expr_universe().len();
            if occurrences > distinct {
                any_repeat = true;
            }
        }
        assert!(any_repeat);
    }

    #[test]
    fn size_knob_scales_output() {
        let small = structured(1, &GenOptions::sized(5));
        let large = structured(1, &GenOptions::sized(200));
        assert!(large.num_instrs() > small.num_instrs());
    }
}
