//! Free-form CFG generation: arbitrary (possibly irreducible, possibly
//! divergent) graphs and acyclic DAGs.

use lcm_ir::{BlockData, Function, Instr, Operand, Terminator};

use crate::{GenOptions, Pool};

/// Generates an arbitrary CFG with `opts.size` interior blocks.
///
/// The skeleton is a chain `entry → b0 → … → b(n-1) → exit`, which
/// guarantees that every block is reachable and reaches the exit; on top of
/// that, blocks randomly become branches whose second target is *any*
/// interior block or the exit — so the result may contain loops (including
/// irreducible ones) and executions that diverge. Use with fuel-bounded
/// interpretation.
pub fn arbitrary(seed: u64, opts: &GenOptions) -> Function {
    build(seed, opts, /* dag: */ false)
}

/// Generates an **acyclic** CFG with `opts.size` interior blocks: the same
/// chain skeleton, but extra branch targets only point forward. Every
/// entry→exit path can be enumerated, so the optimality theorems can be
/// checked path by path.
pub fn random_dag(seed: u64, opts: &GenOptions) -> Function {
    build(seed, opts, /* dag: */ true)
}

fn build(seed: u64, opts: &GenOptions, dag: bool) -> Function {
    let mut rng = crate::seeded(seed);
    let kind = if dag { "dag" } else { "arb" };
    let mut f = Function::new(format!("{kind}{seed}"));
    let pool = Pool::for_function(&mut f, &mut rng, opts);
    let n = opts.size.max(1);
    let interior: Vec<_> = (0..n)
        .map(|i| f.add_block(BlockData::new(format!("b{i}"))))
        .collect();
    let exit = f.exit();
    let entry = f.entry();
    f.block_mut(entry).term = Terminator::Jump(interior[0]);

    for (i, &b) in interior.iter().enumerate() {
        // Straight-line contents.
        let instr_count = rng.gen_range(0..4usize);
        for _ in 0..instr_count {
            // Short-circuit: zero mem_prob draws nothing from the stream.
            if opts.mem_prob > 0.0 && rng.gen_bool(opts.mem_prob) {
                let instr = pool.random_memory_op(&mut rng);
                f.block_mut(b).instrs.push(instr);
                continue;
            }
            let dst = pool.random_var(&mut rng);
            let rv = pool.random_rvalue(&mut rng, opts);
            f.block_mut(b).instrs.push(Instr::Assign { dst, rv });
        }
        if rng.gen_bool(opts.obs_prob) {
            let v = pool.random_var(&mut rng);
            f.block_mut(b).instrs.push(Instr::Observe(Operand::Var(v)));
        }
        // Terminator: continue the chain, possibly with an extra edge.
        let next = interior.get(i + 1).copied().unwrap_or(exit);
        let term = if rng.gen_bool(0.45) {
            let extra = if dag {
                // Forward targets only: i+1..n, or the exit.
                let lo = i + 1;
                let pick = rng.gen_range(lo..=n);
                interior.get(pick).copied().unwrap_or(exit)
            } else {
                let pick = rng.gen_range(0..=n);
                interior.get(pick).copied().unwrap_or(exit)
            };
            let cond = Operand::Var(pool.random_var(&mut rng));
            if rng.gen_bool(0.5) {
                Terminator::Branch {
                    cond,
                    then_to: next,
                    else_to: extra,
                }
            } else {
                Terminator::Branch {
                    cond,
                    then_to: extra,
                    else_to: next,
                }
            }
        } else {
            Terminator::Jump(next)
        };
        f.block_mut(b).term = term;
    }
    debug_assert!(lcm_ir::verify(&f).is_ok(), "generator produced invalid CFG");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::graph;

    #[test]
    fn arbitrary_is_wellformed_and_deterministic() {
        for seed in 0..30 {
            let f = arbitrary(seed, &GenOptions::sized(12));
            lcm_ir::verify(&f).unwrap();
            assert_eq!(
                f.to_string(),
                arbitrary(seed, &GenOptions::sized(12)).to_string()
            );
        }
    }

    #[test]
    fn dags_are_acyclic() {
        for seed in 0..30 {
            let f = random_dag(seed, &GenOptions::sized(10));
            lcm_ir::verify(&f).unwrap();
            // Path enumeration succeeds only on acyclic graphs.
            assert!(
                graph::for_each_path(&f, 1_000_000, |_| {}).is_some(),
                "seed {seed} produced a cycle"
            );
        }
    }

    #[test]
    fn arbitrary_sometimes_has_loops() {
        let any_loop = (0..20).any(|seed| {
            let f = arbitrary(seed, &GenOptions::sized(12));
            graph::for_each_path(&f, 1_000_000, |_| {}).is_none()
        });
        assert!(any_loop, "no loops in 20 arbitrary CFGs is implausible");
    }

    #[test]
    fn size_is_respected() {
        let f = arbitrary(3, &GenOptions::sized(25));
        assert_eq!(f.num_blocks(), 27); // entry + 25 + exit
    }
}
