//! Seeded synthetic edge profiles.
//!
//! [`synthetic_profile`] fabricates an edge-frequency
//! [`Profile`](lcm_ir::Profile) for a generated function by routing a fixed
//! number of random walks from entry to exit and counting edge traversals.
//! Because every unit of flow that enters a block also leaves it, the
//! resulting weights conserve flow *by construction* — they always pass
//! [`Profile::resolve`](lcm_ir::Profile::resolve) — while per-block branch
//! biases create the hot/cold path asymmetry speculative PRE feeds on.

use lcm_ir::{EdgeId, EdgeList, Function, Profile};

use crate::rng::Rng;

/// Number of entry-to-exit walks routed by [`synthetic_profile`].
pub const PROFILE_WALKS: u64 = 32;

/// Fabricates a flow-conserving edge profile for `f`, deterministic in
/// `seed`.
///
/// Each of [`PROFILE_WALKS`] walks starts at entry and follows successors
/// until it reaches exit; at a branch it takes the first successor with a
/// per-block probability drawn once from `seed` (between 0.1 and 0.9, so
/// most functions get clearly hot and clearly cold edges). After a step cap
/// the walk is steered along a shortest path to exit, so it terminates on
/// any function that passes [`verify`](lcm_ir::verify) — the contract this
/// generator assumes. Every traversal increments its edge's weight, so
/// incoming and outgoing weights agree at every internal block.
pub fn synthetic_profile(f: &Function, seed: u64) -> Profile {
    let edges = EdgeList::new(f);
    let mut weights = vec![0u64; edges.len()];

    // BFS distance to exit over reversed edges; finite everywhere on a
    // verified function.
    let mut dist = vec![usize::MAX; f.num_blocks()];
    dist[f.exit().index()] = 0;
    let mut queue = std::collections::VecDeque::from([f.exit()]);
    while let Some(b) = queue.pop_front() {
        for &id in edges.incoming(b) {
            let p = edges.edge(id).from;
            if dist[p.index()] == usize::MAX {
                dist[p.index()] = dist[b.index()] + 1;
                queue.push_back(p);
            }
        }
    }
    if dist[f.entry().index()] == usize::MAX {
        // Exit unreachable (unverified input): an all-cold profile is the
        // only consistent answer.
        return Profile::from_weights(f, &weights);
    }

    let mut rng = Rng::seed_from_u64(seed);
    let bias: Vec<f64> = (0..f.num_blocks())
        .map(|_| rng.gen_range(1usize..=9) as f64 / 10.0)
        .collect();
    let cap = 8 * f.num_blocks().max(4);

    for _ in 0..PROFILE_WALKS {
        let mut b = f.entry();
        let mut steps = 0usize;
        while b != f.exit() {
            let out = edges.outgoing(b);
            // Never walk into a region that cannot reach exit.
            let viable = |&id: &EdgeId| dist[edges.edge(id).to.index()] != usize::MAX;
            let chosen = if steps >= cap {
                // Past the cap, steer along a shortest path to exit.
                out.iter()
                    .copied()
                    .filter(viable)
                    .min_by_key(|&id| dist[edges.edge(id).to.index()])
            } else if out.len() >= 2 && viable(&out[0]) && viable(&out[1]) {
                let first = rng.gen_bool(bias[b.index()]);
                Some(out[usize::from(!first)])
            } else {
                out.iter().copied().find(viable)
            };
            let Some(id) = chosen else { break };
            weights[id.index()] += 1;
            b = edges.edge(id).to;
            steps += 1;
        }
    }
    Profile::from_weights(f, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenOptions;

    #[test]
    fn synthetic_profiles_conserve_flow_across_a_corpus() {
        for f in crate::corpus(0xF10, 40, &GenOptions::default()) {
            lcm_ir::verify(&f).unwrap();
            let p = synthetic_profile(&f, 7);
            let weights = p.resolve(&f).unwrap();
            // All flow routed: the entry block (which verify guarantees has
            // no predecessors) emits exactly one unit per walk.
            let edges = lcm_ir::EdgeList::new(&f);
            let out_entry: u64 = edges
                .outgoing(f.entry())
                .iter()
                .map(|id| weights[id.index()])
                .sum();
            if !edges.outgoing(f.entry()).is_empty() {
                assert_eq!(out_entry, PROFILE_WALKS);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let opts = GenOptions::default();
        let f = crate::structured(3, &opts);
        assert_eq!(synthetic_profile(&f, 11), synthetic_profile(&f, 11));
        // Different seeds give different flows on nontrivial CFGs (not
        // guaranteed per function, but it holds somewhere in a sample).
        let differs = (0..8).any(|s| {
            let f = crate::structured(s, &opts);
            synthetic_profile(&f, 1) != synthetic_profile(&f, 2)
        });
        assert!(differs);
    }

    #[test]
    fn profiles_round_trip_through_the_module_format() {
        let f = crate::structured(5, &GenOptions::default());
        let p = synthetic_profile(&f, 9);
        let mut m = lcm_ir::Module::new(vec![f]);
        m.push_profile(p.clone()).unwrap();
        // Variable interning order differs between a generated function and
        // its reparse, so compare the printed normal form and the profile.
        let again = lcm_ir::parse_module(&m.to_string()).unwrap();
        assert_eq!(m.to_string(), again.to_string());
        assert_eq!(again.profile("gen5"), Some(&p));
    }
}
