//! Functions: control-flow graphs of basic blocks.

use std::collections::HashMap;
use std::fmt;

use crate::entity_id;
use crate::expr::{Expr, Operand, Rvalue, Var};
use crate::instr::{Instr, Terminator};

entity_id! {
    /// A basic-block id, indexing into [`Function`]'s block table.
    pub struct BlockId, "bb"
}

entity_id! {
    /// A dense control-flow-edge id, valid for one [`EdgeList`].
    pub struct EdgeId, "e"
}

/// A basic block: a label, straight-line instructions and a terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockData {
    /// Human-readable label (unique within the function).
    pub name: String,
    /// Straight-line instructions, executed in order.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl BlockData {
    /// Creates an empty block with the given label, terminated by `Exit`.
    pub fn new(name: impl Into<String>) -> Self {
        BlockData {
            name: name.into(),
            instrs: Vec::new(),
            term: Terminator::Exit,
        }
    }

    /// Iterates over the candidate expressions computed in this block, in
    /// instruction order.
    pub fn exprs(&self) -> impl Iterator<Item = Expr> + '_ {
        self.instrs.iter().filter_map(|i| match i {
            Instr::Assign {
                rv: Rvalue::Expr(e),
                ..
            } => Some(*e),
            _ => None,
        })
    }
}

/// Interns variable names to dense [`Var`] indices.
///
/// ```
/// use lcm_ir::SymbolTable;
///
/// let mut syms = SymbolTable::new();
/// let a = syms.intern("a");
/// assert_eq!(syms.intern("a"), a);
/// assert_eq!(syms.name(a), "a");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Var>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its variable (existing or fresh).
    pub fn intern(&mut self, name: impl AsRef<str>) -> Var {
        let name = name.as_ref();
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = Var(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), v);
        v
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: impl AsRef<str>) -> Option<Var> {
        self.index.get(name.as_ref()).copied()
    }

    /// Returns the textual name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not interned in this table.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no variables are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Creates a fresh variable whose name starts with `prefix` and collides
    /// with no existing name.
    pub fn fresh(&mut self, prefix: &str) -> Var {
        let mut n = self.names.len();
        loop {
            let candidate = format!("{prefix}{n}");
            if !self.index.contains_key(&candidate) {
                return self.intern(candidate);
            }
            n += 1;
        }
    }

    /// Iterates over `(var, name)` pairs in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Var(i as u32), n.as_str()))
    }
}

/// A control-flow edge `from → to`.
///
/// `succ_index` identifies which successor slot of `from` the edge occupies
/// (0 for a jump or the then-target, 1 for the else-target), so parallel
/// edges between the same pair of blocks are distinct.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// Successor slot in `from`'s terminator occupied by this edge.
    pub succ_index: u8,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.from, self.to)
    }
}

/// A dense numbering of a function's control-flow edges.
///
/// Edge-valued analyses (EARLIEST, LATER, INSERT) index their bit vectors by
/// [`EdgeId`]. The list is a snapshot: it is invalidated by any mutation of
/// the function's control flow.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EdgeList {
    edges: Vec<Edge>,
    /// Outgoing edge ids per block, in successor order.
    out: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per block.
    into: Vec<Vec<EdgeId>>,
}

impl EdgeList {
    /// Snapshots the edges of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut edges = Vec::new();
        let mut out = vec![Vec::new(); n];
        let mut into = vec![Vec::new(); n];
        for b in f.block_ids() {
            for (i, to) in f.block(b).term.successors().enumerate() {
                let id = EdgeId::from_index(edges.len());
                edges.push(Edge {
                    from: b,
                    to,
                    succ_index: i as u8,
                });
                out[b.index()].push(id);
                into[to.index()].push(id);
            }
        }
        EdgeList { edges, out, into }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the function has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Ids of edges leaving `b`, in successor order.
    pub fn outgoing(&self, b: BlockId) -> &[EdgeId] {
        &self.out[b.index()]
    }

    /// Ids of edges entering `b`.
    pub fn incoming(&self, b: BlockId) -> &[EdgeId] {
        &self.into[b.index()]
    }

    /// Iterates over `(id, edge)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId::from_index(i), e))
    }
}

/// A function: a CFG with a unique entry block and a unique exit block.
///
/// Blocks are stored densely and identified by [`BlockId`]. The structure
/// deliberately allows transient ill-formedness while being built or
/// transformed; [`verify`](crate::verify) checks the invariants
/// (entry has no predecessors, exactly the exit block carries
/// [`Terminator::Exit`], everything is reachable from entry and reaches
/// exit).
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    pub(crate) blocks: Vec<BlockData>,
    pub(crate) entry: BlockId,
    pub(crate) exit: BlockId,
    /// Variable names.
    pub symbols: SymbolTable,
}

impl Function {
    /// Creates a function with empty `entry` and `exit` blocks, with the
    /// entry jumping to the exit.
    pub fn new(name: impl Into<String>) -> Self {
        let mut f = Function {
            name: name.into(),
            blocks: Vec::new(),
            entry: BlockId(0),
            exit: BlockId(1),
            symbols: SymbolTable::new(),
        };
        let entry = f.add_block(BlockData::new("entry"));
        let exit = f.add_block(BlockData::new("exit"));
        f.blocks[entry.index()].term = Terminator::Jump(exit);
        f.entry = entry;
        f.exit = exit;
        f
    }

    /// The entry block (no predecessors).
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The exit block (terminated by [`Terminator::Exit`]).
    #[inline]
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of instructions across all blocks.
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Iterates over all block ids in dense order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Borrows a block.
    #[inline]
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Mutably borrows a block.
    #[inline]
    pub fn block_mut(&mut self, b: BlockId) -> &mut BlockData {
        &mut self.blocks[b.index()]
    }

    /// Appends a block, uniquifying its label if necessary.
    pub fn add_block(&mut self, mut data: BlockData) -> BlockId {
        if self.blocks.iter().any(|b| b.name == data.name) {
            let base = data.name.clone();
            let mut i = self.blocks.len();
            loop {
                let candidate = format!("{base}.{i}");
                if !self.blocks.iter().any(|b| b.name == candidate) {
                    data.name = candidate;
                    break;
                }
                i += 1;
            }
        }
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(data);
        id
    }

    /// Finds a block by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(BlockId::from_index)
    }

    /// Successors of `b`, in terminator order (then possibly duplicated).
    pub fn succs(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.block(b).term.successors()
    }

    /// Computes the predecessor table (one `Vec` per block, with duplicates
    /// for parallel edges). O(blocks + edges); recompute after mutation.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.succs(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Interns a variable name.
    pub fn var(&mut self, name: impl AsRef<str>) -> Var {
        self.symbols.intern(name)
    }

    /// Returns the textual name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not interned in this function.
    pub fn var_name(&self, v: Var) -> &str {
        self.symbols.name(v)
    }

    /// Creates a fresh temporary (named `t0`, `t1`, … avoiding collisions).
    pub fn fresh_temp(&mut self) -> Var {
        self.symbols.fresh("t")
    }

    /// Iterates over every candidate expression occurrence in the function
    /// as `(block, instr index, expr)`.
    pub fn expr_occurrences(&self) -> impl Iterator<Item = (BlockId, usize, Expr)> + '_ {
        self.block_ids().flat_map(move |b| {
            self.block(b)
                .instrs
                .iter()
                .enumerate()
                .filter_map(move |(i, instr)| match instr {
                    Instr::Assign {
                        rv: Rvalue::Expr(e),
                        ..
                    } => Some((b, i, *e)),
                    _ => None,
                })
        })
    }

    /// The deduplicated, deterministically ordered set of candidate
    /// expressions occurring in the function (the PRE *universe*).
    pub fn expr_universe(&self) -> Vec<Expr> {
        let mut seen = std::collections::HashSet::new();
        let mut universe = Vec::new();
        for (_, _, e) in self.expr_occurrences() {
            if seen.insert(e) {
                universe.push(e);
            }
        }
        universe
    }

    /// Splits the control-flow edge described by (`from`, `succ_index`),
    /// inserting a fresh empty block between the two endpoints, and returns
    /// the new block's id.
    ///
    /// The new block is named `from.name_to.name.split`. Existing [`EdgeList`]
    /// snapshots are invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `succ_index` is not a successor slot of `from`.
    pub fn split_edge(&mut self, from: BlockId, succ_index: u8) -> BlockId {
        let to = self
            .block(from)
            .term
            .successors()
            .nth(succ_index as usize)
            .expect("invalid successor slot");
        let name = format!("{}_{}.split", self.block(from).name, self.block(to).name);
        let mut data = BlockData::new(name);
        data.term = Terminator::Jump(to);
        let mid = self.add_block(data);
        match &mut self.blocks[from.index()].term {
            Terminator::Jump(t) => *t = mid,
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                if succ_index == 0 {
                    *then_to = mid;
                } else {
                    *else_to = mid;
                }
            }
            Terminator::Exit => unreachable!("exit has no successors"),
        }
        mid
    }

    /// Inserts instruction(s) "on" the edge (`from`, `succ_index`):
    /// at the end of `from` if it has a single successor, at the start of
    /// `to` if it has a single predecessor, and otherwise by splitting the
    /// edge. Returns the block that received the instructions.
    ///
    /// `preds` must be the current predecessor table (see [`Function::preds`]);
    /// it is **not** updated when the edge is split, so batch insertions on
    /// distinct critical edges are safe but `preds` must be recomputed
    /// afterwards.
    pub fn insert_on_edge(
        &mut self,
        preds: &[Vec<BlockId>],
        from: BlockId,
        succ_index: u8,
        instrs: &[Instr],
    ) -> BlockId {
        let to = self
            .block(from)
            .term
            .successors()
            .nth(succ_index as usize)
            .expect("invalid successor slot");
        if self.succs(from).count() == 1 {
            self.blocks[from.index()].instrs.extend_from_slice(instrs);
            from
        } else if preds[to.index()].len() == 1 {
            let dst = &mut self.blocks[to.index()].instrs;
            dst.splice(0..0, instrs.iter().copied());
            to
        } else {
            let mid = self.split_edge(from, succ_index);
            self.blocks[mid.index()].instrs.extend_from_slice(instrs);
            mid
        }
    }

    /// Convenience: pushes `dst = rv` at the end of `b` (before the
    /// terminator).
    pub fn push_assign(&mut self, b: BlockId, dst: Var, rv: impl Into<Rvalue>) {
        self.blocks[b.index()]
            .instrs
            .push(Instr::Assign { dst, rv: rv.into() });
    }

    /// Convenience: pushes `obs op` at the end of `b`.
    pub fn push_observe(&mut self, b: BlockId, op: impl Into<Operand>) {
        self.blocks[b.index()]
            .instrs
            .push(Instr::Observe(op.into()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Function {
        // entry -> a, b; a -> join; b -> join; join -> exit
        let mut f = Function::new("d");
        let a = f.add_block(BlockData::new("a"));
        let b = f.add_block(BlockData::new("b"));
        let join = f.add_block(BlockData::new("join"));
        let c = f.var("c");
        let (entry, exit) = (f.entry(), f.exit());
        f.block_mut(entry).term = Terminator::Branch {
            cond: Operand::Var(c),
            then_to: a,
            else_to: b,
        };
        f.block_mut(a).term = Terminator::Jump(join);
        f.block_mut(b).term = Terminator::Jump(join);
        f.block_mut(join).term = Terminator::Jump(exit);
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let join = f.block_by_name("join").unwrap();
        let a = f.block_by_name("a").unwrap();
        let b = f.block_by_name("b").unwrap();
        let preds = f.preds();
        assert_eq!(preds[join.index()], vec![a, b]);
        assert_eq!(f.succs(f.entry()).collect::<Vec<_>>(), vec![a, b]);
        assert!(preds[f.entry().index()].is_empty());
    }

    #[test]
    fn edge_list_parallel_edges() {
        let mut f = Function::new("p");
        let (entry, exit) = (f.entry(), f.exit());
        let c = f.var("c");
        // Branch with both targets the same block: two parallel edges.
        f.block_mut(entry).term = Terminator::Branch {
            cond: Operand::Var(c),
            then_to: exit,
            else_to: exit,
        };
        let edges = EdgeList::new(&f);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges.incoming(exit).len(), 2);
        assert_eq!(edges.outgoing(entry).len(), 2);
        let (id0, e0) = edges.iter().next().unwrap();
        assert_eq!(edges.edge(id0), e0);
        assert_eq!(e0.succ_index, 0);
    }

    #[test]
    fn split_edge_rewires() {
        let mut f = diamond();
        let a = f.block_by_name("a").unwrap();
        let mid = f.split_edge(f.entry(), 0);
        assert_eq!(f.succs(f.entry()).next(), Some(mid));
        assert_eq!(f.succs(mid).next(), Some(a));
        crate::verify(&f).unwrap();
    }

    #[test]
    fn insert_on_edge_prefers_endpoints() {
        let mut f = diamond();
        let a = f.block_by_name("a").unwrap();
        let x = f.var("x");
        let instr = Instr::Assign {
            dst: x,
            rv: Rvalue::Operand(Operand::Const(1)),
        };
        let preds = f.preds();
        // entry has two succs but `a` has a single pred: prepend to `a`.
        let placed = f.insert_on_edge(&preds, f.entry(), 0, &[instr]);
        assert_eq!(placed, a);
        assert_eq!(f.block(a).instrs.len(), 1);
        // a -> join: a has single successor: append to `a`.
        let preds = f.preds();
        let placed = f.insert_on_edge(&preds, a, 0, &[instr]);
        assert_eq!(placed, a);
        assert_eq!(f.block(a).instrs.len(), 2);
    }

    #[test]
    fn insert_on_edge_splits_critical() {
        // Build a critical edge: entry branches to {x, join}, and join also
        // has a second predecessor.
        let mut f = Function::new("crit");
        let xb = f.add_block(BlockData::new("x"));
        let join = f.add_block(BlockData::new("join"));
        let c = f.var("c");
        let (entry, exit) = (f.entry(), f.exit());
        f.block_mut(entry).term = Terminator::Branch {
            cond: Operand::Var(c),
            then_to: xb,
            else_to: join,
        };
        f.block_mut(xb).term = Terminator::Jump(join);
        f.block_mut(join).term = Terminator::Jump(exit);
        let v = f.var("v");
        let instr = Instr::Assign {
            dst: v,
            rv: Rvalue::Operand(Operand::Const(7)),
        };
        let preds = f.preds();
        let placed = f.insert_on_edge(&preds, entry, 1, &[instr]);
        assert_ne!(placed, entry);
        assert_ne!(placed, join);
        assert_eq!(f.succs(placed).collect::<Vec<_>>(), vec![join]);
        crate::verify(&f).unwrap();
    }

    #[test]
    fn expr_universe_dedups_in_order() {
        let mut f = Function::new("u");
        let a = f.var("a");
        let b = f.var("b");
        let x = f.var("x");
        let e1 = Expr::Bin(crate::BinOp::Add, Operand::Var(a), Operand::Var(b));
        let e2 = Expr::Bin(crate::BinOp::Mul, Operand::Var(a), Operand::Var(b));
        let entry = f.entry();
        f.push_assign(entry, x, e1);
        f.push_assign(entry, x, e2);
        f.push_assign(entry, x, e1);
        assert_eq!(f.expr_universe(), vec![e1, e2]);
        assert_eq!(f.expr_occurrences().count(), 3);
    }

    #[test]
    fn fresh_temp_avoids_collisions() {
        let mut f = Function::new("t");
        f.var("t2");
        let t = f.fresh_temp();
        assert_ne!(f.var_name(t), "t2");
    }

    #[test]
    fn add_block_uniquifies_names() {
        let mut f = Function::new("n");
        let b1 = f.add_block(BlockData::new("loop"));
        let b2 = f.add_block(BlockData::new("loop"));
        assert_ne!(f.block(b1).name, f.block(b2).name);
    }
}
