//! Modules: ordered collections of functions from one source.
//!
//! A [`Module`] is the unit the batch driver operates on — every `fn` of
//! one `.lcm` file, in source order. Function names are unique within a
//! module so per-function results can be reported unambiguously.

use std::fmt;

use crate::function::Function;
use crate::profile::Profile;

/// An ordered collection of functions with unique names, plus optional
/// per-function edge [`Profile`]s.
///
/// Round-trips through the textual format: `Display` prints each function
/// separated by a blank line, followed by the profile sections, and
/// [`parse_module`](crate::parse_module) reads the same shape back.
///
/// # Example
///
/// ```
/// let m = lcm_ir::parse_module(
///     "fn a {\nentry:\n  x = p + q\n  ret\n}\n\nfn b {\nentry:\n  ret\n}",
/// )?;
/// assert_eq!(m.len(), 2);
/// let reparsed = lcm_ir::parse_module(&m.to_string())?;
/// assert_eq!(m, reparsed);
/// # Ok::<(), lcm_ir::ParseError>(())
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    functions: Vec<Function>,
    profiles: Vec<Profile>,
}

impl Module {
    /// Creates a module from `functions`.
    ///
    /// # Panics
    ///
    /// Panics if two functions share a name; use [`Module::push`] to handle
    /// clashes gracefully.
    pub fn new(functions: Vec<Function>) -> Self {
        let mut m = Module::default();
        for f in functions {
            let name = f.name.clone();
            assert!(m.push(f).is_ok(), "duplicate function `{name}` in module");
        }
        m
    }

    /// Appends `f`, rejecting it (returned unchanged, boxed to keep the
    /// error small) if a function with the same name is already present.
    pub fn push(&mut self, f: Function) -> Result<(), Box<Function>> {
        if self.get(&f.name).is_some() {
            return Err(Box::new(f));
        }
        self.functions.push(f);
        Ok(())
    }

    /// Attaches an edge profile, rejecting it (returned unchanged, boxed to
    /// keep the error small) if the module has no function with the
    /// profile's name or that function already has a profile. The profile's
    /// consistency against the function is *not* checked here; see
    /// [`Profile::resolve`].
    pub fn push_profile(&mut self, p: Profile) -> Result<(), Box<Profile>> {
        if self.get(&p.function).is_none() || self.profile(&p.function).is_some() {
            return Err(Box::new(p));
        }
        self.profiles.push(p);
        Ok(())
    }

    /// The functions in source order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The profiles in source order.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Looks up the profile attached to function `name`, if any.
    pub fn profile(&self, name: &str) -> Option<&Profile> {
        self.profiles.iter().find(|p| p.function == name)
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Iterates over the functions in source order.
    pub fn iter(&self) -> std::slice::Iter<'_, Function> {
        self.functions.iter()
    }
}

impl<'a> IntoIterator for &'a Module {
    type Item = &'a Function;
    type IntoIter = std::slice::Iter<'a, Function>;

    fn into_iter(self) -> Self::IntoIter {
        self.functions.iter()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                write!(f, "\n\n")?;
            }
            write!(f, "{func}")?;
        }
        for p in &self.profiles {
            write!(f, "\n\n{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    const TWO: &str = "fn first {
entry:
  x = a + b
  br x, l, r
l:
  jmp r
r:
  obs x
  ret
}

fn second {
entry:
  y = a * 2
  obs y
  ret
}";

    #[test]
    fn round_trips_two_functions() {
        let m = parse_module(TWO).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.functions()[0].name, "first");
        assert_eq!(m.get("second").unwrap().num_blocks(), 1);
        let printed = m.to_string();
        let again = parse_module(&printed).unwrap();
        assert_eq!(m, again);
        assert_eq!(printed, again.to_string());
    }

    #[test]
    fn single_function_module_matches_parse_function() {
        let one = "fn solo {\nentry:\n  x = a + b\n  ret\n}";
        let m = parse_module(one).unwrap();
        let f = crate::parse_function(one).unwrap();
        assert_eq!(m.functions(), std::slice::from_ref(&f));
    }

    #[test]
    fn rejects_duplicate_function_names() {
        let text = format!("{TWO}\n\nfn first {{\nentry:\n  ret\n}}");
        let e = parse_module(&text).unwrap_err();
        assert!(e.message.contains("duplicate function `first`"), "{e}");
        // Anchored at the offending header, file-relative.
        assert_eq!(e.line, 19);
    }

    #[test]
    fn module_errors_are_file_relative() {
        // Error inside the second function reports absolute positions.
        let text = "fn a {\nentry:\n  ret\n}\nfn b {\nentry:\n  x = a +\n  ret\n}";
        let e = parse_module(text).unwrap_err();
        assert_eq!((e.line, e.col), (7, 10));
    }

    #[test]
    fn rejects_empty_module() {
        assert!(parse_module("  # only a comment\n").is_err());
    }

    #[test]
    fn profiles_attach_and_round_trip() {
        let mut m = parse_module(TWO).unwrap();
        let f = m.get("first").unwrap();
        // Edges of `first`: entry->l, entry->r, l->r; flow conserves at `l`.
        let p = crate::Profile::from_weights(f, &[5, 3, 5]);
        assert!(m.push_profile(p.clone()).is_ok());
        // One profile per function, and only for functions that exist.
        assert!(m.push_profile(p.clone()).is_err());
        let mut stray = p.clone();
        stray.function = "nonexistent".into();
        assert!(m.push_profile(stray).is_err());
        assert_eq!(m.profile("first"), Some(&p));
        assert_eq!(m.profile("second"), None);
        let printed = m.to_string();
        let again = parse_module(&printed).unwrap();
        assert_eq!(m, again);
        assert_eq!(printed, again.to_string());
    }

    #[test]
    fn push_rejects_name_clash() {
        let one = "fn solo {\nentry:\n  ret\n}";
        let f = crate::parse_function(one).unwrap();
        let mut m = Module::default();
        assert!(m.push(f.clone()).is_ok());
        assert_eq!(
            m.push(f),
            Err(Box::new(crate::parse_function(one).unwrap()))
        );
    }
}
