//! Depth-first block orderings.

use crate::function::{BlockId, Function};

/// Computes a postorder of the blocks reachable from the entry.
///
/// Successors are visited in terminator order, so the result is
/// deterministic. Unreachable blocks are absent.
pub fn postorder(f: &Function) -> Vec<BlockId> {
    let n = f.num_blocks();
    let mut out = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // (block, next successor slot to visit)
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    visited[f.entry().index()] = true;
    while let Some(&mut (b, ref mut slot)) = stack.last_mut() {
        match f.succs(b).nth(*slot) {
            Some(s) => {
                *slot += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            }
            None => {
                out.push(b);
                stack.pop();
            }
        }
    }
    out
}

/// Computes a reverse postorder (RPO) of the blocks reachable from the
/// entry. The entry is always first.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut po = postorder(f);
    po.reverse();
    po
}

/// Builds the inverse map of an ordering: `index[b] = position of b`, or
/// `usize::MAX` for blocks absent from the ordering.
pub fn rpo_index(f: &Function, order: &[BlockId]) -> Vec<usize> {
    let mut index = vec![usize::MAX; f.num_blocks()];
    for (i, &b) in order.iter().enumerate() {
        index[b.index()] = i;
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    #[test]
    fn rpo_starts_at_entry_and_respects_structure() {
        let f = parse_function(
            "fn o {
             entry:
               br c, a, b
             a:
               jmp join
             b:
               jmp join
             join:
               ret
             }",
        )
        .unwrap();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
        // join must come after both a and b.
        let idx = rpo_index(&f, &rpo);
        let join = f.block_by_name("join").unwrap();
        let a = f.block_by_name("a").unwrap();
        let b = f.block_by_name("b").unwrap();
        assert!(idx[join.index()] > idx[a.index()]);
        assert!(idx[join.index()] > idx[b.index()]);
    }

    #[test]
    fn postorder_handles_loops() {
        let f = parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        let po = postorder(&f);
        assert_eq!(po.len(), 4);
        assert_eq!(*po.last().unwrap(), f.entry());
    }
}
